//! Regularity detection and group matching (paper §5).
//!
//! "Lists of classads representing resources and customers exhibit a high
//! degree of regularity ... **structural regularity** [entities publish
//! attributes with the same names] and **value regularity** [groups of
//! entities publish attributes with similar values]. We are currently
//! investigating techniques for exploiting this regularity, and
//! automatically aggregating classads so that matches may be performed in
//! groups."
//!
//! This module implements that proposal: ads are clustered by structural
//! signature, then by value template (identical attribute bindings,
//! ignoring identity attributes like `Name`). A pool of `n` ads with `t`
//! distinct templates matches in `O(t)` constraint evaluations instead of
//! `O(n)` — the paper's hypothesized throughput boost, benchmarked in
//! `bench/benches/aggregate_bench.rs`.

use classad::{ClassAd, EvalPolicy, MatchConventions};
use matchmaker::matcher::{Candidate, MatchEngine};
use std::collections::HashMap;
use std::sync::Arc;

/// Attributes that identify an individual rather than describe it; they
/// are excluded from value templates (every machine has a unique `Name`,
/// which would otherwise defeat aggregation).
const IDENTITY_ATTRS: &[&str] = &["name", "currenttime", "daytime", "keyboardidle", "loadavg"];

/// A structural signature: the sorted canonical attribute names of an ad.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructSig(Vec<String>);

impl StructSig {
    /// Compute the structural signature of an ad.
    pub fn of(ad: &ClassAd) -> StructSig {
        let mut names: Vec<String> = ad.names().map(|n| n.canonical().to_string()).collect();
        names.sort();
        StructSig(names)
    }

    /// Number of attributes in the signature.
    pub fn arity(&self) -> usize {
        self.0.len()
    }
}

/// A value template: a representative ad plus the indices of all ads that
/// are identical to it (up to identity attributes).
#[derive(Debug, Clone)]
pub struct Template {
    /// A representative ad (the first member encountered).
    pub representative: Arc<ClassAd>,
    /// Indices (into the original pool) of all member ads.
    pub members: Vec<usize>,
}

impl Template {
    /// How many concrete ads this template stands for.
    pub fn multiplicity(&self) -> usize {
        self.members.len()
    }
}

/// A pool aggregated into value templates.
#[derive(Debug)]
pub struct AggregatedPool {
    /// The templates, in first-seen order.
    pub templates: Vec<Template>,
    /// Total ads aggregated.
    pub total: usize,
    /// Remaining capacity per template (members not yet handed out).
    capacity: Vec<usize>,
}

/// The value key of an ad: its printed form with identity attributes
/// removed. Printing is canonical enough because attribute order is
/// preserved per template class and expressions print deterministically.
fn value_key(ad: &ClassAd) -> String {
    let mut parts: Vec<String> = ad
        .iter()
        .filter(|(n, _)| !IDENTITY_ATTRS.contains(&n.canonical()))
        .map(|(n, e)| format!("{}={}", n.canonical(), e))
        .collect();
    parts.sort();
    parts.join(";")
}

impl AggregatedPool {
    /// Aggregate a pool of ads into templates.
    pub fn build(ads: &[Arc<ClassAd>]) -> AggregatedPool {
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut templates: Vec<Template> = Vec::new();
        for (i, ad) in ads.iter().enumerate() {
            let key = value_key(ad);
            match index.get(&key) {
                Some(&t) => templates[t].members.push(i),
                None => {
                    index.insert(key, templates.len());
                    templates.push(Template {
                        representative: ad.clone(),
                        members: vec![i],
                    });
                }
            }
        }
        let capacity = templates.iter().map(|t| t.members.len()).collect();
        AggregatedPool {
            templates,
            total: ads.len(),
            capacity,
        }
    }

    /// The aggregation (deduplication) ratio: ads per template.
    pub fn dedup_ratio(&self) -> f64 {
        if self.templates.is_empty() {
            0.0
        } else {
            self.total as f64 / self.templates.len() as f64
        }
    }

    /// Remaining total capacity.
    pub fn remaining(&self) -> usize {
        self.capacity.iter().sum()
    }

    /// Find the best match for `request` by scanning **templates** instead
    /// of individual ads, and allocate one member from the winning
    /// template. Returns `(pool_index, candidate)`.
    ///
    /// Exactness: when members of a template are genuinely identical on
    /// every attribute the match evaluates, the representative's
    /// constraint/rank outcome holds for every member, so this returns a
    /// rank-optimal match exactly as the bilateral scan would.
    pub fn allocate_best(
        &mut self,
        request: &ClassAd,
        engine: &MatchEngine,
    ) -> Option<(usize, Candidate)> {
        let mut best: Option<(usize, Candidate)> = None;
        for (t, tmpl) in self.templates.iter().enumerate() {
            if self.capacity[t] == 0 {
                continue;
            }
            if let Some(c) = engine.score(request, &tmpl.representative, t) {
                let better = match &best {
                    None => true,
                    Some((_, b)) => (c.request_rank, c.offer_rank) > (b.request_rank, b.offer_rank),
                };
                if better {
                    best = Some((t, c));
                }
            }
        }
        let (t, c) = best?;
        // Hand out the next unused member of the winning template.
        let used = self.templates[t].members.len() - self.capacity[t];
        let member = self.templates[t].members[used];
        self.capacity[t] -= 1;
        Some((member, c))
    }
}

/// A report on a pool's regularity (the measurable phenomenon §5 builds
/// on).
#[derive(Debug, Clone, PartialEq)]
pub struct RegularityReport {
    /// Number of ads examined.
    pub total: usize,
    /// Distinct structural signatures.
    pub structural_classes: usize,
    /// Distinct value templates.
    pub value_templates: usize,
    /// total / value_templates.
    pub dedup_ratio: f64,
}

/// Measure structural and value regularity of a pool.
pub fn regularity(ads: &[Arc<ClassAd>]) -> RegularityReport {
    let mut sigs: HashMap<StructSig, usize> = HashMap::new();
    for ad in ads {
        *sigs.entry(StructSig::of(ad)).or_insert(0) += 1;
    }
    let pool = AggregatedPool::build(ads);
    RegularityReport {
        total: ads.len(),
        structural_classes: sigs.len(),
        value_templates: pool.templates.len(),
        dedup_ratio: pool.dedup_ratio(),
    }
}

/// Convenience: group-match a batch of requests against a pool, returning
/// `(request_index, pool_index)` pairs. Each pool member is granted once.
pub fn group_match_batch(
    requests: &[Arc<ClassAd>],
    offers: &[Arc<ClassAd>],
    policy: &EvalPolicy,
    conv: &MatchConventions,
) -> Vec<(usize, usize)> {
    let engine = MatchEngine {
        policy: policy.clone(),
        conventions: conv.clone(),
    };
    let mut pool = AggregatedPool::build(offers);
    let mut out = Vec::new();
    for (r, req) in requests.iter().enumerate() {
        if let Some((member, _)) = pool.allocate_best(req, &engine) {
            out.push((r, member));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn machine(name: &str, mips: i64, mem: i64) -> Arc<ClassAd> {
        Arc::new(
            parse_classad(&format!(
                r#"[ Name = "{name}"; Type = "Machine"; Mips = {mips}; Memory = {mem};
                     Constraint = other.Type == "Job"; Rank = 0 ]"#
            ))
            .unwrap(),
        )
    }

    fn job(mem: i64) -> Arc<ClassAd> {
        Arc::new(
            parse_classad(&format!(
                r#"[ Name = "j"; Type = "Job"; Owner = "u"; Memory = {mem};
                     Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
                     Rank = other.Mips ]"#
            ))
            .unwrap(),
        )
    }

    fn regular_pool(n: usize) -> Vec<Arc<ClassAd>> {
        // Two hardware classes, unique names.
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    machine(&format!("a{i}"), 100, 64)
                } else {
                    machine(&format!("b{i}"), 50, 128)
                }
            })
            .collect()
    }

    #[test]
    fn aggregation_collapses_identical_ads() {
        let pool = AggregatedPool::build(&regular_pool(100));
        assert_eq!(pool.templates.len(), 2);
        assert_eq!(pool.total, 100);
        assert!((pool.dedup_ratio() - 50.0).abs() < 1e-9);
        assert_eq!(pool.remaining(), 100);
    }

    #[test]
    fn regularity_report() {
        let r = regularity(&regular_pool(10));
        assert_eq!(r.total, 10);
        assert_eq!(r.structural_classes, 1, "same attribute sets");
        assert_eq!(r.value_templates, 2);
        assert!((r.dedup_ratio - 5.0).abs() < 1e-9);
    }

    #[test]
    fn irregular_pool_does_not_aggregate() {
        let ads: Vec<Arc<ClassAd>> = (0..10)
            .map(|i| machine(&format!("m{i}"), 50 + i, 64))
            .collect();
        let r = regularity(&ads);
        assert_eq!(r.value_templates, 10);
    }

    #[test]
    fn group_match_equals_bilateral_on_regular_pool() {
        let offers = regular_pool(20);
        let engine = MatchEngine::new();
        let req = job(31);
        // Bilateral scan best.
        let bilateral = engine.best_match(&req, &offers, |_| true).unwrap();
        // Group scan best.
        let mut pool = AggregatedPool::build(&offers);
        let (member, cand) = pool.allocate_best(&req, &engine).unwrap();
        assert_eq!(
            cand.request_rank, bilateral.request_rank,
            "same rank outcome"
        );
        // The member granted belongs to the winning (100-mips) class.
        let policy = EvalPolicy::default();
        assert_eq!(
            offers[member].eval_attr("Mips", &policy).as_int(),
            Some(100)
        );
    }

    #[test]
    fn allocation_consumes_capacity() {
        let offers = regular_pool(4); // 2 fast (mips 100), 2 slow
        let engine = MatchEngine::new();
        let mut pool = AggregatedPool::build(&offers);
        let req = job(31);
        let mut granted = Vec::new();
        while let Some((member, _)) = pool.allocate_best(&req, &engine) {
            granted.push(member);
        }
        assert_eq!(granted.len(), 4, "all members eventually granted");
        assert_eq!(pool.remaining(), 0);
        // No duplicates.
        let mut sorted = granted.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        // Fast class exhausted before slow class is touched.
        let policy = EvalPolicy::default();
        let mips: Vec<i64> = granted
            .iter()
            .map(|&m| offers[m].eval_attr("Mips", &policy).as_int().unwrap())
            .collect();
        assert_eq!(mips, vec![100, 100, 50, 50]);
    }

    #[test]
    fn constraints_respected_per_template() {
        // Jobs needing 128 MB can only use the big-memory class.
        let offers = regular_pool(10);
        let engine = MatchEngine::new();
        let mut pool = AggregatedPool::build(&offers);
        let req = job(100);
        let policy = EvalPolicy::default();
        let (member, _) = pool.allocate_best(&req, &engine).unwrap();
        assert_eq!(
            offers[member].eval_attr("Memory", &policy).as_int(),
            Some(128)
        );
    }

    #[test]
    fn batch_matching_grants_each_member_once() {
        let offers = regular_pool(6);
        let requests: Vec<Arc<ClassAd>> = (0..10).map(|_| job(31)).collect();
        let pairs = group_match_batch(
            &requests,
            &offers,
            &EvalPolicy::default(),
            &MatchConventions::default(),
        );
        assert_eq!(pairs.len(), 6, "pool capacity bounds grants");
        let mut members: Vec<usize> = pairs.iter().map(|(_, m)| *m).collect();
        members.sort();
        members.dedup();
        assert_eq!(members.len(), 6);
    }

    #[test]
    fn empty_pool_and_no_match() {
        let engine = MatchEngine::new();
        let mut pool = AggregatedPool::build(&[]);
        assert!(pool.allocate_best(&job(31), &engine).is_none());
        let offers = regular_pool(2);
        let mut pool = AggregatedPool::build(&offers);
        let req = job(4096); // nothing has 4 GB
        assert!(pool.allocate_best(&req, &engine).is_none());
    }

    #[test]
    fn struct_sig_distinguishes_attribute_sets() {
        let a = parse_classad("[x = 1; y = 2]").unwrap();
        let b = parse_classad("[y = 5; X = 9]").unwrap(); // same set, case/order differ
        let c = parse_classad("[x = 1; z = 2]").unwrap();
        assert_eq!(StructSig::of(&a), StructSig::of(&b));
        assert_ne!(StructSig::of(&a), StructSig::of(&c));
        assert_eq!(StructSig::of(&a).arity(), 2);
    }
}
