//! Gang-aware negotiation: serving co-allocation requests from a live ad
//! store.
//!
//! Gang requests are ordinary customer advertisements whose ad carries a
//! `Ports` list (see [`crate::coalloc`]). This pass runs *after* (or
//! instead of) the bilateral negotiation cycle: it snapshots the provider
//! pool, solves each gang atomically against the offers that are still
//! free, and emits one grant per gang with the provider contact/ticket
//! details a customer needs to claim every port.

use crate::coalloc::{GangRequest, GangSolver};
use classad::ClassAd;
use matchmaker::admanager::{AdStore, StoredAd};
use matchmaker::protocol::{EntityKind, Timestamp};
use matchmaker::ticket::Ticket;
use std::collections::HashSet;
use std::sync::Arc;

/// One granted port of a gang.
#[derive(Debug, Clone)]
pub struct PortGrant {
    /// Index of the port in the gang request.
    pub port: usize,
    /// The granted provider's ad name.
    pub offer_name: String,
    /// The granted provider's ad.
    pub offer_ad: Arc<ClassAd>,
    /// Provider contact for claiming.
    pub provider_contact: String,
    /// Provider's authorization ticket.
    pub ticket: Option<Ticket>,
}

/// A fully granted gang.
#[derive(Debug, Clone)]
pub struct GangGrant {
    /// The gang request's ad name.
    pub gang_name: String,
    /// The requesting user.
    pub owner: String,
    /// Customer contact.
    pub customer_contact: String,
    /// One grant per port, in port order.
    pub ports: Vec<PortGrant>,
    /// The solver's greedy objective (sum of port request-ranks).
    pub total_rank: f64,
}

/// Outcome of a gang negotiation pass.
#[derive(Debug, Clone, Default)]
pub struct GangCycleOutcome {
    /// Gangs granted, in service order.
    pub granted: Vec<GangGrant>,
    /// Gangs that could not be completely allocated (all-or-nothing).
    pub failed: Vec<String>,
    /// Gang ads that were malformed (no/invalid `Ports`).
    pub malformed: Vec<String>,
}

/// Serve every gang request in `store` against the providers in `store`.
///
/// Offers already granted to an earlier gang in the same pass are not
/// reused; gangs are served freshest-advertisement-last (FIFO by
/// sequence), mirroring the bilateral negotiator's within-user order.
pub fn negotiate_gangs(store: &AdStore, now: Timestamp, solver: &GangSolver) -> GangCycleOutcome {
    let offers: Vec<StoredAd> = store.snapshot(EntityKind::Provider, now);
    let offer_ads: Vec<Arc<ClassAd>> = offers.iter().map(|o| o.ad.clone()).collect();

    let mut gangs: Vec<StoredAd> = store
        .snapshot(EntityKind::Customer, now)
        .into_iter()
        .filter(|s| s.ad.contains("Ports"))
        .collect();
    gangs.sort_by_key(|g| g.seq);

    let mut outcome = GangCycleOutcome::default();
    let mut taken: HashSet<usize> = HashSet::new();

    for gang_ad in gangs {
        let gang = match GangRequest::from_ad(&gang_ad.ad) {
            Ok(g) => g,
            Err(_) => {
                outcome.malformed.push(gang_ad.name.clone());
                continue;
            }
        };
        // Offers consumed by earlier gangs are masked out by substituting
        // a never-matching placeholder (indices must stay stable so port
        // assignments map back to the pool).
        let masked: Vec<Arc<ClassAd>> = offer_ads
            .iter()
            .enumerate()
            .map(|(i, ad)| {
                if taken.contains(&i) {
                    Arc::new(ClassAd::from_pairs([(
                        "Constraint",
                        classad::Expr::bool(false),
                    )]))
                } else {
                    ad.clone()
                }
            })
            .collect();
        match solver.solve(&gang, &masked) {
            None => outcome.failed.push(gang_ad.name.clone()),
            Some(m) => {
                let owner = gang_ad
                    .ad
                    .eval_attr("Owner", &solver.engine.policy)
                    .as_str()
                    .map(str::to_string)
                    .unwrap_or_default();
                let ports = m
                    .assignment
                    .iter()
                    .enumerate()
                    .map(|(port, &idx)| {
                        taken.insert(idx);
                        let offer = &offers[idx];
                        PortGrant {
                            port,
                            offer_name: offer.name.clone(),
                            offer_ad: offer.ad.clone(),
                            provider_contact: offer.contact.clone(),
                            ticket: offer.ticket,
                        }
                    })
                    .collect();
                outcome.granted.push(GangGrant {
                    gang_name: gang_ad.name.clone(),
                    owner,
                    customer_contact: gang_ad.contact.clone(),
                    ports,
                    total_rank: m.total_rank,
                });
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::protocol::{Advertisement, AdvertisingProtocol};

    fn provider(name: &str, kind: &str, extra: &str) -> Advertisement {
        Advertisement {
            kind: EntityKind::Provider,
            ad: classad::parse_classad(&format!(
                r#"[ Name = "{name}"; Type = "{kind}"; {extra}
                     Constraint = true; Rank = 0 ]"#
            ))
            .unwrap(),
            contact: format!("{name}:9614"),
            ticket: Some(Ticket::from_raw(name.len() as u128)),
            expires_at: 10_000,
        }
    }

    fn gang(name: &str, owner: &str, ports: &[&str]) -> Advertisement {
        let ports_src = ports.join(", ");
        Advertisement {
            kind: EntityKind::Customer,
            ad: classad::parse_classad(&format!(
                r#"[ Name = "{name}"; Type = "Gang"; Owner = "{owner}";
                     Constraint = true;
                     Ports = {{ {ports_src} }} ]"#
            ))
            .unwrap(),
            contact: format!("{owner}-ca:1"),
            ticket: None,
            expires_at: 10_000,
        }
    }

    fn store_with(ads: Vec<Advertisement>) -> AdStore {
        let proto = AdvertisingProtocol::default();
        let mut store = AdStore::new();
        for a in ads {
            store.advertise(a, 0, &proto).unwrap();
        }
        store
    }

    const CPU_PORT: &str = r#"[ Constraint = other.Type == "Machine"; Rank = other.Mips ]"#;
    const LIC_PORT: &str = r#"[ Constraint = other.Type == "License" ]"#;

    #[test]
    fn single_gang_granted_with_claim_details() {
        let store = store_with(vec![
            provider("cpu1", "Machine", "Mips = 100;"),
            provider("lic1", "License", ""),
            gang("g1", "raman", &[CPU_PORT, LIC_PORT]),
        ]);
        let out = negotiate_gangs(&store, 0, &GangSolver::default());
        assert_eq!(out.granted.len(), 1);
        assert!(out.failed.is_empty());
        let g = &out.granted[0];
        assert_eq!(g.gang_name, "g1");
        assert_eq!(g.owner, "raman");
        assert_eq!(g.ports.len(), 2);
        assert_eq!(g.ports[0].offer_name, "cpu1");
        assert_eq!(g.ports[1].offer_name, "lic1");
        assert!(g.ports[0].ticket.is_some(), "tickets relayed per port");
        assert_eq!(g.ports[0].provider_contact, "cpu1:9614");
    }

    #[test]
    fn gangs_compete_for_offers_fifo() {
        // Two gangs both need the single license; only the first wins.
        let store = store_with(vec![
            provider("cpu1", "Machine", "Mips = 100;"),
            provider("cpu2", "Machine", "Mips = 50;"),
            provider("lic1", "License", ""),
            gang("first", "a", &[CPU_PORT, LIC_PORT]),
            gang("second", "b", &[CPU_PORT, LIC_PORT]),
        ]);
        let out = negotiate_gangs(&store, 0, &GangSolver::default());
        assert_eq!(out.granted.len(), 1);
        assert_eq!(out.granted[0].gang_name, "first");
        assert_eq!(out.failed, vec!["second".to_string()]);
    }

    #[test]
    fn non_gang_customers_ignored() {
        let store = store_with(vec![
            provider("cpu1", "Machine", "Mips = 100;"),
            Advertisement {
                kind: EntityKind::Customer,
                ad: classad::parse_classad(
                    r#"[ Name = "plain"; Type = "Job"; Owner = "x"; Constraint = true ]"#,
                )
                .unwrap(),
                contact: "x:1".into(),
                ticket: None,
                expires_at: 10_000,
            },
            gang("g1", "raman", &[CPU_PORT]),
        ]);
        let out = negotiate_gangs(&store, 0, &GangSolver::default());
        assert_eq!(out.granted.len(), 1);
        assert_eq!(out.granted[0].gang_name, "g1");
    }

    #[test]
    fn malformed_gangs_reported() {
        let store = store_with(vec![
            provider("cpu1", "Machine", "Mips = 100;"),
            Advertisement {
                kind: EntityKind::Customer,
                ad: classad::parse_classad(
                    r#"[ Name = "bad"; Type = "Gang"; Owner = "x"; Ports = 42;
                         Constraint = true ]"#,
                )
                .unwrap(),
                contact: "x:1".into(),
                ticket: None,
                expires_at: 10_000,
            },
        ]);
        let out = negotiate_gangs(&store, 0, &GangSolver::default());
        assert_eq!(out.malformed, vec!["bad".to_string()]);
    }

    #[test]
    fn expired_offers_excluded() {
        let mut short = provider("cpu1", "Machine", "Mips = 100;");
        short.expires_at = 5;
        let store = store_with(vec![short, gang("g1", "raman", &[CPU_PORT])]);
        let out = negotiate_gangs(&store, 100, &GangSolver::default());
        assert_eq!(out.failed, vec!["g1".to_string()]);
    }
}
