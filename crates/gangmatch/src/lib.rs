//! # gangmatch — aggregation, co-allocation, and diagnosis
//!
//! The paper's §5 sketches three research directions beyond the core
//! framework; this crate implements all three:
//!
//! * [`aggregate`] — detect the structural/value **regularity** of real
//!   pools and match against aggregated templates ("group matching"),
//!   trading `O(pool)` constraint evaluations for `O(templates)`;
//! * [`coalloc`] — **gang matching**: atomic co-allocation of several
//!   resources to one multi-port request expressed with nested classads;
//! * [`diagnosis`] — explain **why a request cannot match**: per-conjunct
//!   elimination statistics, offer-side veto attribution, and pool-profile
//!   hints for never-satisfiable constraints.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod coalloc;
pub mod diagnosis;
pub mod service;

pub use aggregate::{group_match_batch, regularity, AggregatedPool, RegularityReport, Template};
pub use coalloc::{GangError, GangMatch, GangRequest, GangSolver};
pub use diagnosis::{conjuncts_of, diagnose, profile_attr, AttrProfile, ConjunctReport, Diagnosis};
pub use service::{negotiate_gangs, GangCycleOutcome, GangGrant, PortGrant};
