//! Unsatisfiable-constraint diagnosis (paper §5).
//!
//! "The complexity of constraints imposed by resources and customers may
//! hinder the diagnostic capability of administrators and customers who
//! may wonder why certain requests are unable to find resources with
//! particular characteristics. To alleviate this problem, we are
//! researching methods for identifying constraints which can never be
//! satisfied by the pool."
//!
//! The analysis splits a request's constraint into its top-level
//! conjuncts, evaluates each conjunct separately against every offer, and
//! reports which conjuncts eliminate which fraction of the pool. For
//! conjuncts comparing an `other.X` attribute against a number, the pool's
//! observed range of `X` is profiled to produce an actionable suggestion
//! ("no machine has Memory >= 1024; pool maximum is 512"). The same pass
//! also attributes failures to the *offer side* (machines whose own
//! policies reject this customer), which the paper notes is the other half
//! of bilateral matching.

use classad::ast::{BinOp, Expr, Scope};
use classad::{
    traced_symmetric_match, ClassAd, EvalPolicy, Evaluator, MatchConventions, RejectReason,
    RejectSide, Side, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Split an expression into its top-level `&&` conjuncts. Re-exported from
/// [`classad::analyze`]: diagnosis and the tracing evaluator share one
/// notion of "conjunct" so their clause attributions agree.
pub use classad::conjuncts_of;

/// One top-level conjunct of a constraint, with its elimination stats.
#[derive(Debug, Clone)]
pub struct ConjunctReport {
    /// The conjunct's source text.
    pub text: String,
    /// Offers for which the conjunct evaluated to `false`.
    pub false_count: usize,
    /// Offers for which it evaluated to `undefined` (missing attribute).
    pub undefined_count: usize,
    /// Offers for which it evaluated to `error`.
    pub error_count: usize,
    /// Offers that satisfied it.
    pub true_count: usize,
}

impl ConjunctReport {
    /// Offers eliminated by this conjunct.
    pub fn eliminated(&self) -> usize {
        self.false_count + self.undefined_count + self.error_count
    }

    /// Does this conjunct alone eliminate the whole pool?
    pub fn kills_pool(&self) -> bool {
        self.true_count == 0
    }
}

/// The diagnosis of a request against a pool.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Offers examined.
    pub pool_size: usize,
    /// Offers fully matching (both constraints).
    pub matches: usize,
    /// Per-conjunct elimination stats for the request's constraint.
    pub conjuncts: Vec<ConjunctReport>,
    /// Offers that satisfied the request's constraint but whose own
    /// constraint rejected the request (the provider's veto).
    pub rejected_by_offer: usize,
    /// Per-offer rejection reasons from the shared tracing evaluator
    /// ([`classad::traced_symmetric_match`]), ranked by frequency
    /// (descending, ties broken by reason order). Uses the same
    /// [`RejectReason`] taxonomy the negotiator's rejection tables and the
    /// `Analyze` wire query report, so a gangmatch diagnosis and a live
    /// `Analyze` reply name failures identically.
    pub reasons: Vec<(RejectReason, usize)>,
    /// Human-readable suggestions for never-satisfiable conjuncts.
    pub suggestions: Vec<String>,
}

impl Diagnosis {
    /// `true` when the request can match nothing in this pool.
    pub fn unsatisfiable(&self) -> bool {
        self.matches == 0
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pool of {}: {} match(es); {} offer-side rejection(s)",
            self.pool_size, self.matches, self.rejected_by_offer
        )?;
        for c in &self.conjuncts {
            writeln!(
                f,
                "  [{}/{} eliminated] {}",
                c.eliminated(),
                self.pool_size,
                c.text
            )?;
        }
        for (reason, n) in &self.reasons {
            writeln!(f, "  reason: {} x{n}", reason.label())?;
        }
        for s in &self.suggestions {
            writeln!(f, "  hint: {s}")?;
        }
        Ok(())
    }
}

/// Diagnose why `request` does (not) match the pool.
pub fn diagnose(
    request: &ClassAd,
    offers: &[Arc<ClassAd>],
    policy: &EvalPolicy,
    conv: &MatchConventions,
) -> Diagnosis {
    let constraint_attr = conv.constraint_attr_of(request);
    let conj_exprs: Vec<Expr> = match constraint_attr.and_then(|a| request.get(a)) {
        Some(e) => conjuncts_of(e).into_iter().cloned().collect(),
        None => Vec::new(),
    };

    let mut conjuncts: Vec<ConjunctReport> = conj_exprs
        .iter()
        .map(|e| ConjunctReport {
            text: e.to_string(),
            false_count: 0,
            undefined_count: 0,
            error_count: 0,
            true_count: 0,
        })
        .collect();

    let mut matches = 0;
    let mut rejected_by_offer = 0;
    let mut reason_counts: BTreeMap<RejectReason, usize> = BTreeMap::new();
    for offer in offers {
        // Conjunct-level accounting.
        for (i, ce) in conj_exprs.iter().enumerate() {
            let mut ev = Evaluator::pair(request, offer, policy);
            match ev.eval(ce, Side::Left) {
                Value::Bool(true) => conjuncts[i].true_count += 1,
                Value::Bool(false) => conjuncts[i].false_count += 1,
                Value::Undefined => conjuncts[i].undefined_count += 1,
                _ => conjuncts[i].error_count += 1,
            }
        }
        // Whole-match accounting via the shared tracing evaluator: the
        // verdict equals `symmetric_match`, and a rejection carries the
        // same RejectReason the negotiator's tables would record.
        let trace = traced_symmetric_match(request, offer, policy, conv);
        if trace.verdict {
            matches += 1;
        } else {
            let reason = trace.reason.unwrap_or(RejectReason::EvalError {
                side: RejectSide::Request,
            });
            if reason_side(&reason) == Some(RejectSide::Offer) {
                rejected_by_offer += 1;
            }
            *reason_counts.entry(reason).or_insert(0) += 1;
        }
    }
    let mut reasons: Vec<(RejectReason, usize)> = reason_counts.into_iter().collect();
    reasons.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let mut suggestions = Vec::new();
    for (i, rep) in conjuncts.iter().enumerate() {
        if rep.kills_pool() && !offers.is_empty() {
            if let Some(s) = suggest(&conj_exprs[i], offers, policy) {
                suggestions.push(s);
            } else {
                suggestions.push(format!("no offer in the pool satisfies `{}`", rep.text));
            }
        }
    }

    Diagnosis {
        pool_size: offers.len(),
        matches,
        conjuncts,
        rejected_by_offer,
        reasons,
        suggestions,
    }
}

/// Which side a constraint-level reason blames (`None` for the
/// scheduler-level `Busy`/`LostRank`, which diagnosis never produces).
fn reason_side(reason: &RejectReason) -> Option<RejectSide> {
    match reason {
        RejectReason::RequirementsFalse { side, .. }
        | RejectReason::UndefinedAttr { side, .. }
        | RejectReason::EvalError { side } => Some(*side),
        RejectReason::Busy | RejectReason::LostRank => None,
    }
}

/// Numeric/string profile of one attribute across the pool.
#[derive(Debug, Clone, Default)]
pub struct AttrProfile {
    /// Offers defining the attribute.
    pub defined: usize,
    /// Minimum numeric value observed.
    pub min: Option<f64>,
    /// Maximum numeric value observed.
    pub max: Option<f64>,
    /// Distinct string values observed (capped).
    pub strings: BTreeSet<String>,
}

/// Profile attribute `name` across the pool.
pub fn profile_attr(offers: &[Arc<ClassAd>], name: &str, policy: &EvalPolicy) -> AttrProfile {
    let mut p = AttrProfile::default();
    for offer in offers {
        let v = offer.eval_attr(name, policy);
        match v {
            Value::Undefined => continue,
            Value::Int(_) | Value::Real(_) => {
                let x = v.as_f64().unwrap();
                p.defined += 1;
                p.min = Some(p.min.map_or(x, |m| m.min(x)));
                p.max = Some(p.max.map_or(x, |m| m.max(x)));
            }
            Value::Str(s) => {
                p.defined += 1;
                if p.strings.len() < 16 {
                    p.strings.insert(s.to_string());
                }
            }
            _ => {
                p.defined += 1;
            }
        }
    }
    p
}

/// If the conjunct is a simple comparison against the other ad's
/// attribute, produce a pool-aware hint.
fn suggest(e: &Expr, offers: &[Arc<ClassAd>], policy: &EvalPolicy) -> Option<String> {
    let (attr, op, bound) = simple_comparison(e)?;
    let prof = profile_attr(offers, &attr, policy);
    if prof.defined == 0 {
        return Some(format!(
            "no offer defines `{attr}` at all (referenced by `{e}`)"
        ));
    }
    match bound {
        Bound::Num(b) => {
            let (min, max) = (prof.min?, prof.max?);
            let relation = match op {
                BinOp::Ge | BinOp::Gt => format!("pool maximum is {max}"),
                BinOp::Le | BinOp::Lt => format!("pool minimum is {min}"),
                BinOp::Eq => format!("pool range is [{min}, {max}]"),
                _ => return None,
            };
            Some(format!(
                "`{e}` is unsatisfiable: requires {attr} {} {b}, but {relation}",
                op.symbol()
            ))
        }
        Bound::Str(s) => {
            let observed: Vec<String> = prof.strings.iter().cloned().collect();
            Some(format!(
                "`{e}` is unsatisfiable: no offer has {attr} == \"{s}\"; observed values: {observed:?}"
            ))
        }
    }
}

enum Bound {
    Num(f64),
    Str(String),
}

/// Recognise `other.X <op> literal` / `X <op> literal` (either side).
fn simple_comparison(e: &Expr) -> Option<(String, BinOp, Bound)> {
    let Expr::Binary(op, l, r) = e else {
        return None;
    };
    if !matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq
    ) {
        return None;
    }
    let attr_of = |x: &Expr| -> Option<String> {
        match x {
            Expr::ScopedAttr(Scope::Target, n) => Some(n.canonical().to_string()),
            Expr::Attr(n) => Some(n.canonical().to_string()),
            _ => None,
        }
    };
    let bound_of = |x: &Expr| -> Option<Bound> {
        match x {
            Expr::Lit(classad::Literal::Int(i)) => Some(Bound::Num(*i as f64)),
            Expr::Lit(classad::Literal::Real(rv)) => Some(Bound::Num(*rv)),
            Expr::Lit(classad::Literal::Str(s)) => Some(Bound::Str(s.to_string())),
            _ => None,
        }
    };
    if let (Some(a), Some(b)) = (attr_of(l), bound_of(r)) {
        return Some((a, *op, b));
    }
    if let (Some(b), Some(a)) = (bound_of(l), attr_of(r)) {
        // Flip the operator: `10 <= other.X` means `other.X >= 10`.
        let flipped = match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => *other,
        };
        return Some((a, flipped, b));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn pool() -> Vec<Arc<ClassAd>> {
        (0..8)
            .map(|i| {
                Arc::new(
                    parse_classad(&format!(
                        r#"[ Name = "m{i}"; Type = "Machine";
                             Arch = "{arch}"; Memory = {mem}; Mips = {mips};
                             Constraint = other.Owner != "banned" ]"#,
                        arch = if i % 2 == 0 { "INTEL" } else { "SPARC" },
                        mem = 32 << (i % 3),
                        mips = 50 + 10 * i,
                    ))
                    .unwrap(),
                )
            })
            .collect()
    }

    fn req(constraint: &str, owner: &str) -> ClassAd {
        parse_classad(&format!(
            r#"[ Name = "j"; Type = "Job"; Owner = "{owner}";
                 Constraint = {constraint} ]"#
        ))
        .unwrap()
    }

    fn run(constraint: &str) -> Diagnosis {
        diagnose(
            &req(constraint, "alice"),
            &pool(),
            &EvalPolicy::default(),
            &MatchConventions::default(),
        )
    }

    #[test]
    fn conjunct_splitting() {
        let e = classad::parse_expr("a && b && (c || d) && e > 1").unwrap();
        let cs = conjuncts_of(&e);
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[2].to_string(), "c || d");
    }

    #[test]
    fn satisfiable_request_reports_matches() {
        let d = run(r#"other.Type == "Machine" && other.Memory >= 64"#);
        assert!(!d.unsatisfiable());
        assert!(d.matches > 0);
        assert!(d.suggestions.is_empty());
        assert_eq!(d.pool_size, 8);
    }

    #[test]
    fn numeric_bound_unsatisfiable_with_hint() {
        let d = run(r#"other.Type == "Machine" && other.Memory >= 1024"#);
        assert!(d.unsatisfiable());
        // The memory conjunct kills the pool; the type conjunct does not.
        let killer = d
            .conjuncts
            .iter()
            .find(|c| c.text.contains("Memory"))
            .unwrap();
        assert!(killer.kills_pool());
        assert_eq!(killer.false_count, 8);
        let typer = d
            .conjuncts
            .iter()
            .find(|c| c.text.contains("Type"))
            .unwrap();
        assert!(!typer.kills_pool());
        assert_eq!(d.suggestions.len(), 1);
        assert!(
            d.suggestions[0].contains("pool maximum is 128"),
            "{}",
            d.suggestions[0]
        );
    }

    #[test]
    fn string_equality_unsatisfiable_lists_observed() {
        let d = run(r#"other.Arch == "ALPHA""#);
        assert!(d.unsatisfiable());
        assert_eq!(d.suggestions.len(), 1);
        let s = &d.suggestions[0];
        assert!(s.contains("INTEL") && s.contains("SPARC"), "{s}");
    }

    #[test]
    fn missing_attribute_detected() {
        let d = run("other.GPUs >= 1");
        assert!(d.unsatisfiable());
        assert_eq!(d.conjuncts[0].undefined_count, 8);
        assert!(
            d.suggestions[0].contains("no offer defines `gpus`"),
            "{}",
            d.suggestions[0]
        );
    }

    #[test]
    fn offer_side_rejection_attributed() {
        let d = diagnose(
            &req(r#"other.Type == "Machine""#, "banned"),
            &pool(),
            &EvalPolicy::default(),
            &MatchConventions::default(),
        );
        assert!(d.unsatisfiable());
        assert_eq!(d.rejected_by_offer, 8, "machines veto the banned user");
        // Request-side conjuncts are all satisfied.
        assert!(d.conjuncts.iter().all(|c| !c.kills_pool()));
    }

    #[test]
    fn flipped_comparison_recognised() {
        let d = run(r#"1024 <= other.Memory"#);
        assert!(d.unsatisfiable());
        assert!(
            d.suggestions[0].contains("pool maximum is 128"),
            "{}",
            d.suggestions[0]
        );
    }

    #[test]
    fn profile_attr_ranges() {
        let p = profile_attr(&pool(), "Mips", &EvalPolicy::default());
        assert_eq!(p.defined, 8);
        assert_eq!(p.min, Some(50.0));
        assert_eq!(p.max, Some(120.0));
        let p = profile_attr(&pool(), "Arch", &EvalPolicy::default());
        assert_eq!(p.strings.len(), 2);
        let p = profile_attr(&pool(), "NoSuch", &EvalPolicy::default());
        assert_eq!(p.defined, 0);
    }

    #[test]
    fn reasons_use_the_shared_taxonomy() {
        let d = run(r#"other.Type == "Machine" && other.Memory >= 1024"#);
        assert!(d.unsatisfiable());
        // Every offer fails the memory clause: one ranked reason, counted 8
        // times, labelled exactly as the negotiator's tables would label it.
        assert_eq!(d.reasons.len(), 1);
        let (reason, n) = &d.reasons[0];
        assert_eq!(*n, 8);
        assert_eq!(reason.label(), "ReqFalse(request): other.Memory >= 1024");
        assert_eq!(reason.kind(), "RequirementsFalse");
    }

    #[test]
    fn offer_veto_reasons_blame_the_offer_side() {
        let d = diagnose(
            &req(r#"other.Type == "Machine""#, "banned"),
            &pool(),
            &EvalPolicy::default(),
            &MatchConventions::default(),
        );
        assert_eq!(d.rejected_by_offer, 8);
        assert_eq!(d.reasons.len(), 1);
        match &d.reasons[0].0 {
            RejectReason::RequirementsFalse { side, clause } => {
                assert_eq!(*side, RejectSide::Offer);
                assert!(clause.contains("banned"), "{clause}");
            }
            other => panic!("wrong reason: {other}"),
        }
    }

    #[test]
    fn display_renders_report() {
        let d = run(r#"other.Memory >= 1024"#);
        let text = d.to_string();
        assert!(text.contains("0 match(es)"), "{text}");
        assert!(text.contains("hint:"), "{text}");
    }

    #[test]
    fn empty_pool_no_spurious_suggestions() {
        let d = diagnose(
            &req("other.Memory >= 1024", "alice"),
            &[],
            &EvalPolicy::default(),
            &MatchConventions::default(),
        );
        assert_eq!(d.pool_size, 0);
        assert!(d.suggestions.is_empty());
    }

    #[test]
    fn constraintless_request() {
        let ad = parse_classad(r#"[ Name = "q" ]"#).unwrap();
        let d = diagnose(
            &ad,
            &pool(),
            &EvalPolicy::default(),
            &MatchConventions::default(),
        );
        assert!(d.conjuncts.is_empty());
        // A constraint-less query accepts anything, but the machines'
        // own constraints still apply bilaterally: this ad has no Owner,
        // so `other.Owner != "banned"` is undefined and every offer
        // vetoes it.
        assert_eq!(d.matches, 0);
        assert_eq!(d.rejected_by_offer, 8);
    }
}
