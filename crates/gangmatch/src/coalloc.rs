//! Gang matching: atomic co-allocation of multiple resources (paper §5).
//!
//! "Classads are first-class objects in the model. They can be arbitrarily
//! nested, leading to a natural language for expressing resource
//! aggregates or co-allocation requests" (§3.1), and §5 proposes group
//! matching to "service co-allocation requests".
//!
//! A gang request is a classad whose `Ports` attribute is a list of nested
//! request ads — e.g. a job that needs a workstation *and* a software
//! license *and* a tape drive. A gang matches only if **every** port can
//! be matched to a **distinct** offer (all-or-nothing).
//!
//! The solver is a rank-greedy backtracking search: ports are ordered by
//! candidate-set size (most-constrained first), each port tries its
//! candidates in descending request-rank order, and a node budget bounds
//! worst-case behaviour. This finds a feasible gang whenever one exists
//! (within budget) and is rank-greedy, not globally rank-optimal — the
//! classic trade-off for NP-hard assignment with preferences.

use classad::ast::Expr;
use classad::{ClassAd, EvalPolicy, MatchConventions};
use matchmaker::matcher::MatchEngine;
use std::fmt;
use std::sync::Arc;

/// Errors extracting a gang request from a classad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GangError {
    /// The ad has no `Ports` attribute.
    NoPorts,
    /// `Ports` is not a list of record constructors.
    BadPorts(String),
    /// A gang must have at least one port.
    Empty,
}

impl fmt::Display for GangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GangError::NoPorts => f.write_str("gang request has no Ports attribute"),
            GangError::BadPorts(m) => write!(f, "malformed Ports: {m}"),
            GangError::Empty => f.write_str("gang request has zero ports"),
        }
    }
}

impl std::error::Error for GangError {}

/// A parsed gang request: the shared envelope ad plus one request ad per
/// port.
#[derive(Debug, Clone)]
pub struct GangRequest {
    /// The envelope ad (common attributes like `Owner`).
    pub envelope: ClassAd,
    /// Per-port request ads. Envelope attributes are folded into each port
    /// (port attributes win) so port constraints can reference them.
    pub ports: Vec<ClassAd>,
}

impl GangRequest {
    /// Extract a gang request from an ad with a `Ports = { [..], [..] }`
    /// attribute.
    ///
    /// The nested records are lifted from the **AST** (not evaluated), so
    /// port `Constraint`/`Rank` expressions stay symbolic.
    pub fn from_ad(ad: &ClassAd) -> Result<GangRequest, GangError> {
        let ports_expr = ad.get("Ports").ok_or(GangError::NoPorts)?;
        let Expr::List(items) = ports_expr.as_ref() else {
            return Err(GangError::BadPorts(format!(
                "expected a list, found `{ports_expr}`"
            )));
        };
        if items.is_empty() {
            return Err(GangError::Empty);
        }
        let mut envelope = ad.clone();
        envelope.remove("Ports");
        let mut ports = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let Expr::Record(fields) = item else {
                return Err(GangError::BadPorts(format!(
                    "port {i} is not a record: `{item}`"
                )));
            };
            let mut port = envelope.clone();
            for (n, e) in fields {
                port.set(n.canonical(), e.clone());
            }
            ports.push(port);
        }
        Ok(GangRequest { envelope, ports })
    }
}

/// Result of a gang match: one offer index per port.
#[derive(Debug, Clone, PartialEq)]
pub struct GangMatch {
    /// `assignment[p]` is the offer index granted to port `p`.
    pub assignment: Vec<usize>,
    /// Sum of per-port request ranks (the greedy objective).
    pub total_rank: f64,
}

/// Gang solver configuration.
#[derive(Debug, Clone)]
pub struct GangSolver {
    /// The match engine used for port/offer scoring.
    pub engine: MatchEngine,
    /// Backtracking node budget (guards worst-case blowup).
    pub node_budget: usize,
}

impl Default for GangSolver {
    fn default() -> Self {
        GangSolver {
            engine: MatchEngine::new(),
            node_budget: 100_000,
        }
    }
}

impl GangSolver {
    /// Create a solver with the given evaluation policy/conventions.
    pub fn new(policy: EvalPolicy, conventions: MatchConventions) -> Self {
        GangSolver {
            engine: MatchEngine {
                policy,
                conventions,
            },
            node_budget: 100_000,
        }
    }

    /// Match every port of `gang` to a distinct offer, or `None` if no
    /// complete assignment is found (within budget).
    pub fn solve(&self, gang: &GangRequest, offers: &[Arc<ClassAd>]) -> Option<GangMatch> {
        // Candidate lists per port, sorted by descending request rank.
        let mut candidates: Vec<Vec<(usize, f64)>> = gang
            .ports
            .iter()
            .map(|port| {
                let mut c: Vec<(usize, f64)> = offers
                    .iter()
                    .enumerate()
                    .filter_map(|(i, o)| {
                        self.engine
                            .score(port, o, i)
                            .map(|cand| (i, cand.request_rank))
                    })
                    .collect();
                c.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                c
            })
            .collect();

        // All-or-nothing: a port with zero candidates fails the gang.
        if candidates.iter().any(|c| c.is_empty()) {
            return None;
        }

        // Most-constrained port first.
        let mut order: Vec<usize> = (0..gang.ports.len()).collect();
        order.sort_by_key(|&p| candidates[p].len());

        let mut used = vec![false; offers.len()];
        let mut assignment = vec![usize::MAX; gang.ports.len()];
        let mut total_rank = 0.0;
        let mut budget = self.node_budget;
        if self.dfs(
            &order,
            0,
            &mut candidates,
            &mut used,
            &mut assignment,
            &mut total_rank,
            &mut budget,
        ) {
            Some(GangMatch {
                assignment,
                total_rank,
            })
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        order: &[usize],
        depth: usize,
        candidates: &mut [Vec<(usize, f64)>],
        used: &mut [bool],
        assignment: &mut [usize],
        total_rank: &mut f64,
        budget: &mut usize,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let port = order[depth];
        let cands = candidates[port].clone();
        for (offer, rank) in cands {
            if used[offer] {
                continue;
            }
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            used[offer] = true;
            assignment[port] = offer;
            *total_rank += rank;
            if self.dfs(
                order,
                depth + 1,
                candidates,
                used,
                assignment,
                total_rank,
                budget,
            ) {
                return true;
            }
            used[offer] = false;
            assignment[port] = usize::MAX;
            *total_rank -= rank;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn offer(name: &str, kind: &str, extra: &str) -> Arc<ClassAd> {
        Arc::new(
            parse_classad(&format!(
                r#"[ Name = "{name}"; Type = "{kind}"; {extra}
                     Constraint = true; Rank = 0 ]"#
            ))
            .unwrap(),
        )
    }

    fn pool() -> Vec<Arc<ClassAd>> {
        vec![
            offer("cpu1", "Machine", "Mips = 100; Memory = 64;"),
            offer("cpu2", "Machine", "Mips = 50; Memory = 128;"),
            offer("lic1", "License", r#"Product = "matlab";"#),
            offer("tape1", "TapeDrive", "CapacityGB = 40;"),
        ]
    }

    fn gang_ad(src: &str) -> GangRequest {
        GangRequest::from_ad(&parse_classad(src).unwrap()).unwrap()
    }

    #[test]
    fn parse_gang_request() {
        let g = gang_ad(
            r#"[ Name = "g"; Owner = "raman";
                 Ports = {
                     [ Constraint = other.Type == "Machine"; Rank = other.Mips ],
                     [ Constraint = other.Type == "License" ]
                 } ]"#,
        );
        assert_eq!(g.ports.len(), 2);
        // Envelope attributes are visible in each port.
        assert_eq!(g.ports[0].get_string("Owner"), Some("raman"));
        assert!(!g.envelope.contains("Ports"));
    }

    #[test]
    fn parse_errors() {
        let no_ports = parse_classad("[ a = 1 ]").unwrap();
        assert_eq!(
            GangRequest::from_ad(&no_ports).unwrap_err(),
            GangError::NoPorts
        );
        let bad = parse_classad("[ Ports = 42 ]").unwrap();
        assert!(matches!(
            GangRequest::from_ad(&bad).unwrap_err(),
            GangError::BadPorts(_)
        ));
        let empty = parse_classad("[ Ports = {} ]").unwrap();
        assert_eq!(GangRequest::from_ad(&empty).unwrap_err(), GangError::Empty);
        let bad_item = parse_classad("[ Ports = { 1 } ]").unwrap();
        assert!(matches!(
            GangRequest::from_ad(&bad_item).unwrap_err(),
            GangError::BadPorts(_)
        ));
    }

    #[test]
    fn three_way_coallocation() {
        let g = gang_ad(
            r#"[ Name = "g"; Owner = "raman";
                 Ports = {
                     [ Constraint = other.Type == "Machine" && other.Memory >= 32;
                       Rank = other.Mips ],
                     [ Constraint = other.Type == "License" && other.Product == "matlab" ],
                     [ Constraint = other.Type == "TapeDrive" && other.CapacityGB >= 20 ]
                 } ]"#,
        );
        let offers = pool();
        let m = GangSolver::default().solve(&g, &offers).unwrap();
        assert_eq!(m.assignment.len(), 3);
        // Port 0 got the fast machine (rank-greedy).
        assert_eq!(m.assignment[0], 0);
        assert_eq!(m.assignment[1], 2);
        assert_eq!(m.assignment[2], 3);
    }

    #[test]
    fn all_or_nothing() {
        // Second port is unsatisfiable: the whole gang fails even though
        // port 0 has candidates.
        let g = gang_ad(
            r#"[ Ports = {
                     [ Constraint = other.Type == "Machine" ],
                     [ Constraint = other.Type == "Hologram" ]
                 } ]"#,
        );
        assert!(GangSolver::default().solve(&g, &pool()).is_none());
    }

    #[test]
    fn distinct_offers_enforced() {
        // Two ports both need a machine; there are exactly two machines.
        let g = gang_ad(
            r#"[ Ports = {
                     [ Constraint = other.Type == "Machine" ],
                     [ Constraint = other.Type == "Machine" ]
                 } ]"#,
        );
        let m = GangSolver::default().solve(&g, &pool()).unwrap();
        assert_ne!(m.assignment[0], m.assignment[1]);
    }

    #[test]
    fn backtracking_resolves_contention() {
        // Port A can use cpu1 or cpu2; port B can only use cpu1. Greedy
        // would hand cpu1 (higher mips) to A first; backtracking must
        // reassign.
        let g = gang_ad(
            r#"[ Ports = {
                     [ Constraint = other.Type == "Machine"; Rank = other.Mips ],
                     [ Constraint = other.Type == "Machine" && other.Memory < 100 ]
                 } ]"#,
        );
        let m = GangSolver::default().solve(&g, &pool()).unwrap();
        // Port 1 (most constrained: only cpu1 has Memory < 100) is placed
        // first; port 0 falls back to cpu2.
        assert_eq!(m.assignment[1], 0);
        assert_eq!(m.assignment[0], 1);
    }

    #[test]
    fn offers_can_veto_ports() {
        // Bilateral matching holds per port: a license that refuses the
        // gang's owner blocks the gang.
        let offers = vec![
            offer("cpu1", "Machine", "Mips = 100; Memory = 64;"),
            Arc::new(
                parse_classad(
                    r#"[ Name = "lic"; Type = "License";
                         Constraint = other.Owner != "rival"; Rank = 0 ]"#,
                )
                .unwrap(),
            ),
        ];
        let good = gang_ad(
            r#"[ Owner = "raman";
                 Ports = { [ Constraint = other.Type == "License" ] } ]"#,
        );
        let bad = gang_ad(
            r#"[ Owner = "rival";
                 Ports = { [ Constraint = other.Type == "License" ] } ]"#,
        );
        let solver = GangSolver::default();
        assert!(solver.solve(&good, &offers).is_some());
        assert!(solver.solve(&bad, &offers).is_none());
    }

    #[test]
    fn single_port_gang_reduces_to_best_match_feasibility() {
        let g = gang_ad(r#"[ Ports = { [ Constraint = other.Type == "TapeDrive"; Rank = 0 ] } ]"#);
        let m = GangSolver::default().solve(&g, &pool()).unwrap();
        assert_eq!(m.assignment, vec![3]);
    }

    #[test]
    fn node_budget_bounds_search() {
        // A pathological gang with many interchangeable ports still
        // terminates under a tiny budget (result may be None).
        let ports: Vec<String> = (0..8)
            .map(|_| "[ Constraint = other.Type == \"Machine\" ]".to_string())
            .collect();
        let src = format!("[ Ports = {{ {} }} ]", ports.join(", "));
        let g = gang_ad(&src);
        let offers = pool();
        let solver = GangSolver {
            node_budget: 3,
            ..Default::default()
        };
        // 8 ports, 2 machines: infeasible; must return quickly.
        assert!(solver.solve(&g, &offers).is_none());
    }
}
