//! E9 + E10 — whole-system throughput under opportunistic scheduling, and
//! the cost of weak consistency.
//!
//! * The E10 table sweeps pool size against a fixed job load and reports
//!   the high-throughput metrics (jobs/hour, mean turnaround,
//!   utilization) on a diurnal, owner-occupied fleet.
//! * The E9 table sweeps the advertisement refresh period: longer leases
//!   mean staler ads at match time, which the claiming protocol converts
//!   into claim rejections rather than wrong allocations — the paper's
//!   weak-consistency argument made measurable.
//! * The criterion group benchmarks simulator throughput itself
//!   (events/second), the substrate's own headline number.

use condor_sim::scenario::{NegotiatorSettings, PolicyConfig, Scenario};
use condor_sim::workload::{FleetSpec, OwnerActivity, UserSpec};
use criterion::{criterion_group, BenchmarkId, Criterion};

fn scenario(machines: usize, jobs_per_user: usize) -> Scenario {
    Scenario {
        seed: 31337,
        fleet: FleetSpec {
            count: machines,
            activity: OwnerActivity {
                mean_active_ms: 20.0 * 60_000.0,
                mean_away_ms: 40.0 * 60_000.0,
                initially_present_prob: 0.4,
                day_length_ms: 24 * 3_600 * 1000,
                night_away_factor: 3.0,
            },
            ..Default::default()
        },
        policy: PolicyConfig::OwnerIdle {
            min_keyboard_idle_s: 300,
        },
        users: (0..4)
            .map(|i| UserSpec {
                mean_interarrival_ms: 60_000.0,
                mean_duration_ms: 12.0 * 60_000.0,
                arch_constraint_prob: 0.0,
                ..UserSpec::standard(&format!("user{i}"), jobs_per_user)
            })
            .collect(),
        negotiator: NegotiatorSettings {
            charge_per_match: 120.0,
            ..Default::default()
        },
        advertise_period_ms: 60_000,
        negotiation_period_ms: 60_000,
        duration_ms: 12 * 3_600 * 1000,
        ..Default::default()
    }
}

fn print_e10_table() {
    println!("== E10: opportunistic throughput vs pool size (4 users x 25 jobs, 12 h) ==");
    println!(
        "  {:<10}{:>12}{:>14}{:>16}{:>14}{:>12}",
        "machines", "completed", "jobs/hour", "turnaround", "utilization", "vacated"
    );
    for machines in [8_usize, 16, 32, 64] {
        let s = scenario(machines, 25);
        let mut sim = s.build();
        sim.run_until(s.duration_ms);
        let summary = sim.metrics().summary(s.duration_ms, machines);
        println!(
            "  {:<10}{:>12}{:>14.1}{:>12.1} min{:>13.1}%{:>12}",
            machines,
            summary.jobs_completed,
            summary.throughput_per_hour,
            summary.mean_turnaround_ms / 60_000.0,
            summary.utilization * 100.0,
            sim.metrics().vacated_by_owner,
        );
    }
}

fn print_e9_table() {
    println!("\n== E9: weak consistency — ad refresh period vs claim failures ==");
    println!("  (16 machines, owner churn every ~6 min, 2 users x 20 jobs, 12 h)");
    println!(
        "  {:<18}{:>14}{:>16}{:>14}{:>12}",
        "refresh period", "matches", "claim rejects", "reject rate", "completed"
    );
    for period_s in [30_u64, 60, 120, 300, 600] {
        let mut s = scenario(16, 20);
        s.users.truncate(2);
        s.fleet.activity.mean_active_ms = 3.0 * 60_000.0;
        s.fleet.activity.mean_away_ms = 6.0 * 60_000.0;
        s.advertise_period_ms = period_s * 1000;
        s.negotiation_period_ms = period_s * 1000;
        // Periodic refresh only: staleness grows with the period, and the
        // claiming protocol turns it into rejections.
        s.push_ads_on_change = false;
        let mut sim = s.build();
        sim.run_until(s.duration_ms);
        let m = sim.metrics();
        let rejects = m.claims_rejected_total();
        let rate = if m.claim_attempts > 0 {
            rejects as f64 / m.claim_attempts as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "  {:<18}{:>14}{:>16}{:>13.1}%{:>12}",
            format!("{period_s} s"),
            m.matches,
            rejects,
            rate,
            m.jobs_completed,
        );
    }
}

fn bench_sim_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine");
    g.sample_size(10);
    for machines in [16_usize, 64] {
        g.bench_with_input(
            BenchmarkId::new("one_sim_hour", machines),
            &machines,
            |b, &machines| {
                b.iter(|| {
                    let s = scenario(machines, 10);
                    let mut sim = s.build();
                    sim.run_until(3_600_000);
                    sim.events_processed()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_sim_engine
);

fn main() {
    print_e10_table();
    print_e9_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
