//! E5 — fair matching from past usage (paper §4).
//!
//! Two parts:
//! * a micro-benchmark of the priority tracker (charge / effective
//!   priority / user ordering), which sits on the negotiation hot path;
//! * a printed experiment: competing users with skewed demand on a scarce
//!   simulated pool — the heavy user's decayed usage pushes their
//!   priority down and capacity splits fairly, including the half-life
//!   ablation called out in DESIGN.md §6.

use condor_sim::scenario::{NegotiatorSettings, PolicyConfig, Scenario};
use condor_sim::workload::{FleetSpec, UserSpec};
use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use matchmaker::priority::{PriorityConfig, PriorityTracker};

fn bench_tracker(c: &mut Criterion) {
    let mut g = c.benchmark_group("priority_tracker");
    g.bench_function("charge", |b| {
        let mut t = PriorityTracker::default();
        let mut now = 0u64;
        b.iter(|| {
            now += 60;
            t.charge(black_box("alice"), 300.0, now);
        })
    });
    g.bench_function("effective_priority", |b| {
        let mut t = PriorityTracker::default();
        for (i, u) in ["a", "b", "c", "d"].iter().enumerate() {
            t.charge(u, 1000.0 * (i + 1) as f64, 0);
        }
        b.iter(|| t.effective_priority(black_box("c"), 5000))
    });
    for users in [10_usize, 100, 1000] {
        let mut t = PriorityTracker::default();
        let names: Vec<String> = (0..users).map(|i| format!("user{i}")).collect();
        for (i, n) in names.iter().enumerate() {
            t.charge(n, (i * 37 % 991) as f64, 0);
        }
        g.bench_with_input(
            BenchmarkId::new("order_users", users),
            &names,
            |b, names| b.iter(|| t.order_users(names.iter().map(|s| s.as_str()), 1000)),
        );
    }
    g.finish();
}

fn fairshare_scenario(heavy_jobs: usize, light_jobs: usize) -> Scenario {
    Scenario {
        seed: 99,
        fleet: FleetSpec {
            count: 4,
            ..Default::default()
        },
        policy: PolicyConfig::Always,
        users: vec![
            UserSpec {
                mean_interarrival_ms: 0.0,
                mean_duration_ms: 10.0 * 60_000.0,
                arch_constraint_prob: 0.0,
                ..UserSpec::standard("heavy", heavy_jobs)
            },
            UserSpec {
                // The light user arrives two hours in, after `heavy` has
                // monopolized the pool and accumulated usage.
                mean_interarrival_ms: 2.0 * 3_600_000.0 / light_jobs.max(1) as f64,
                mean_duration_ms: 10.0 * 60_000.0,
                arch_constraint_prob: 0.0,
                ..UserSpec::standard("light", light_jobs)
            },
        ],
        negotiator: NegotiatorSettings {
            charge_per_match: 600.0,
            ..Default::default()
        },
        duration_ms: 24 * 3_600 * 1000,
        ..Default::default()
    }
}

fn print_e5_experiment() {
    // One machine, three users with identical demand. Each negotiation
    // cycle grants the single machine to the best-priority user; past
    // usage is what rotates service among them. With the usage memory
    // ablated (half-life ~0: charges decay instantly), every user ties at
    // the floor and the deterministic name tie-break starves the
    // late-alphabet user. With a real half-life, accumulated usage
    // handicaps whoever ran last and capacity rotates fairly.
    println!("== E5: fair matching from past usage (1 machine, 3 users x 10 jobs) ==");
    for (label, halflife_ms) in [("no usage memory", 1.0_f64), ("halflife 1 h", 3_600_000.0)] {
        let mut s = Scenario {
            seed: 99,
            fleet: FleetSpec {
                count: 1,
                ..Default::default()
            },
            policy: PolicyConfig::Always,
            users: ["alice", "mid", "zed"]
                .iter()
                .map(|u| UserSpec {
                    mean_interarrival_ms: 0.0,
                    mean_duration_ms: 10.0 * 60_000.0,
                    arch_constraint_prob: 0.0,
                    ..UserSpec::standard(u, 10)
                })
                .collect(),
            negotiator: NegotiatorSettings {
                charge_per_match: 600.0,
                ..Default::default()
            },
            duration_ms: 100 * 3_600 * 1000,
            ..Default::default()
        };
        s.negotiator.priority_halflife_ms = Some(halflife_ms);
        let mut sim = s.build();
        sim.run_until(s.duration_ms);
        let m = sim.metrics();
        let mean_wait = |user: &str| {
            let recs: Vec<_> = m.completed.iter().filter(|r| r.owner == user).collect();
            if recs.is_empty() {
                return f64::NAN;
            }
            recs.iter()
                .map(|r| (r.first_start.unwrap_or(r.completed_at) - r.submitted_at) as f64)
                .sum::<f64>()
                / recs.len() as f64
                / 3_600_000.0
        };
        println!(
            "  {label:<18} mean wait (h): alice {:>5.1}  mid {:>5.1}  zed {:>5.1}",
            mean_wait("alice"),
            mean_wait("mid"),
            mean_wait("zed"),
        );
    }
    // Priority-value evolution, shown directly on the tracker.
    println!("\n  priority decay (tracker-level, halflife = 1 h):");
    let mut t = PriorityTracker::new(PriorityConfig {
        halflife: 3_600_000.0,
        ..Default::default()
    });
    t.charge("heavy", 14_400.0, 0); // 4 machine-hours
    for hours in [0u64, 1, 2, 4, 8] {
        let now = hours * 3_600_000;
        println!(
            "    t+{hours}h  heavy priority = {:>10.1}   light priority = {:>6.1}",
            t.effective_priority("heavy", now),
            t.effective_priority("light", now),
        );
    }
}

fn bench_fairshare_cycle(c: &mut Criterion) {
    // One negotiation-heavy simulated hour as a macro-benchmark.
    let mut g = c.benchmark_group("fairshare_sim");
    g.sample_size(10);
    g.bench_function("one_hour_4mach_2users", |b| {
        b.iter(|| {
            let s = fairshare_scenario(10, 5);
            let mut sim = s.build();
            sim.run_until(3_600_000);
            sim.metrics().matches
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_tracker, bench_fairshare_cycle
);

fn main() {
    print_e5_experiment();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
