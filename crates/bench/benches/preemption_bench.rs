//! E6 — preemption: a claimed RA "is still interested in hearing from
//! higher priority customers" (paper §4).
//!
//! The printed experiment runs the same contended scenario with
//! preemption on and off, showing the high-rank user's turnaround improve
//! (and the displaced work's cost). The criterion series measures the
//! negotiator's preemption retry path against pools of claimed machines.

use condor_sim::scenario::{NegotiatorSettings, PolicyConfig, Scenario};
use condor_sim::workload::{FleetSpec, UserSpec};
use criterion::{criterion_group, BenchmarkId, Criterion};
use matchmaker::negotiate::{Negotiator, NegotiatorConfig};
use matchmaker::prelude::*;

/// Pool of machines that are all claimed at low rank; requests arrive at
/// a higher machine-rank and must displace.
fn claimed_store(machines: usize, requests: usize) -> AdStore {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for i in 0..machines {
        let ad = classad::parse_classad(&format!(
            r#"[ Name = "m{i}"; Type = "Machine"; Mips = 100;
                 State = "Claimed"; RemoteOwner = "olduser";
                 CurrentRank = 1;
                 Constraint = other.Type == "Job";
                 Rank = other.JobPrio ]"#
        ))
        .unwrap();
        store
            .advertise(
                Advertisement {
                    kind: EntityKind::Provider,
                    ad,
                    contact: format!("m{i}:9614"),
                    ticket: None,
                    expires_at: u64::MAX,
                },
                0,
                &proto,
            )
            .unwrap();
    }
    for i in 0..requests {
        let ad = classad::parse_classad(&format!(
            r#"[ Name = "j{i}"; Type = "Job"; Owner = "research"; JobPrio = 10;
                 Constraint = other.Type == "Machine"; Rank = 0 ]"#
        ))
        .unwrap();
        store
            .advertise(
                Advertisement {
                    kind: EntityKind::Customer,
                    ad,
                    contact: "ca:1".into(),
                    ticket: None,
                    expires_at: u64::MAX,
                },
                0,
                &proto,
            )
            .unwrap();
    }
    store
}

fn bench_preemption_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("preemption_cycle");
    g.sample_size(10);
    for machines in [128_usize, 1024] {
        let store = claimed_store(machines, 16);
        g.bench_with_input(
            BenchmarkId::new("preempting_claimed_pool", machines),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut neg = Negotiator::default();
                    let out = neg.negotiate(store, 0);
                    assert_eq!(out.stats.preemptions, out.stats.matches);
                    out.stats.matches
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("preemption_disabled", machines),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut neg = Negotiator::new(NegotiatorConfig {
                        preemption: false,
                        ..Default::default()
                    });
                    let out = neg.negotiate(store, 0);
                    assert_eq!(out.stats.matches, 0);
                    out.stats.unmatched_requests
                })
            },
        );
    }
    g.finish();
}

fn contended_scenario(preemption: bool) -> Scenario {
    // Owners permanently absent: contention comes purely from customers.
    let mut fleet = FleetSpec {
        count: 2,
        ..Default::default()
    };
    fleet.activity.initially_present_prob = 0.0;
    fleet.activity.mean_away_ms = 1e12;
    Scenario {
        seed: 4242,
        fleet,
        policy: PolicyConfig::Figure1 {
            research: vec!["vip".into()],
            friends: vec!["worker".into()],
            untrusted: vec![],
        },
        users: vec![
            UserSpec {
                mean_interarrival_ms: 0.0,
                mean_duration_ms: 60.0 * 60_000.0,
                arch_constraint_prob: 0.0,
                checkpoint_prob: 1.0,
                ..UserSpec::standard("worker", 2)
            },
            UserSpec {
                mean_interarrival_ms: 30.0 * 60_000.0,
                mean_duration_ms: 10.0 * 60_000.0,
                arch_constraint_prob: 0.0,
                ..UserSpec::standard("vip", 4)
            },
        ],
        negotiator: NegotiatorSettings {
            preemption,
            ..Default::default()
        },
        duration_ms: 12 * 3_600 * 1000,
        ..Default::default()
    }
}

fn print_e6_experiment() {
    println!("== E6: preemption on a contended 2-machine pool ==");
    println!(
        "  worker: two 60-min jobs at t=0 (rank 1); vip: four 10-min jobs from t~30min (rank 10)"
    );
    println!(
        "  {:<16}{:>12}{:>18}{:>16}{:>12}",
        "preemption", "preempted", "vip mean wait", "vip turnaround", "badput"
    );
    for preemption in [false, true] {
        let s = contended_scenario(preemption);
        let mut sim = s.build();
        sim.run_until(s.duration_ms);
        let m = sim.metrics();
        let vip: Vec<_> = m.completed.iter().filter(|r| r.owner == "vip").collect();
        let mean = |f: &dyn Fn(&&condor_sim::JobRecord) -> f64| {
            if vip.is_empty() {
                f64::NAN
            } else {
                vip.iter().map(f).sum::<f64>() / vip.len() as f64
            }
        };
        let wait =
            mean(&|r| (r.first_start.unwrap_or(r.completed_at) - r.submitted_at) as f64) / 60_000.0;
        let turn = mean(&|r| (r.completed_at - r.submitted_at) as f64) / 60_000.0;
        println!(
            "  {:<16}{:>12}{:>14.1} min{:>12.1} min{:>8.1} min",
            if preemption { "on" } else { "off" },
            m.preempted_by_rank,
            wait,
            turn,
            m.badput_ms as f64 / 60_000.0,
        );
    }
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_preemption_scan
);

fn main() {
    print_e6_experiment();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
