//! Pool-history collector throughput: what one collection pass costs.
//!
//! Two measurements against the in-memory `condor_view::Collector`:
//! ingesting a batch of daemon self-ads (one full sampling pass over a
//! large pool — the steady-state load of the matchmaker's `mm-view`
//! thread), and evaluating a `HistoryQuery` constraint across every
//! retained series. The headline number exported to `BENCH_view.json`
//! is self-ads ingested per second.

use classad::ClassAd;
use condor_view::{Collector, HistoryConfig, LOCAL_POOL};
use criterion::{criterion_group, Criterion};

/// Self-ads per simulated collection pass: one matchmaker plus a pool
/// of resource and customer agents.
const BATCH: usize = 512;

fn stats_ad(my_type: &str, name: &str, fill: &[(&str, i64)]) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.set_str("MyType", my_type);
    ad.set_str("Name", &format!("{name}#stats"));
    for (attr, v) in fill {
        ad.set_int(*attr, *v);
    }
    ad
}

/// One pass worth of self-ads at sample time `t` (counters advance with
/// `t` so the delta chain stays realistic).
fn pass_ads(t: u64) -> Vec<ClassAd> {
    let mut ads = vec![stats_ad(
        "MatchmakerStats",
        "mm",
        &[
            ("MatchesTotal", (t * 3) as i64),
            ("AdsExpiredTotal", t as i64),
            ("JobsFlocked", t as i64),
            ("LeaderEpoch", 1),
        ],
    )];
    for i in 0..(BATCH * 3 / 4) {
        ads.push(stats_ad(
            "ResourceAgentStats",
            &format!("m{i}"),
            &[("Claimed", ((t as usize + i) % 2) as i64)],
        ));
    }
    while ads.len() < BATCH {
        let i = ads.len();
        ads.push(stats_ad(
            "CustomerAgentStats",
            &format!("u{i}"),
            &[("JobsIdle", (i % 8) as i64)],
        ));
    }
    ads
}

/// Ingest rate: one full sampling pass over a `BATCH`-daemon pool.
fn bench_ingest_pass(c: &mut Criterion) {
    let collector = Collector::in_memory(HistoryConfig::default());
    let mut t = 1_000_000u64;
    let mut g = c.benchmark_group("view");
    g.sample_size(10);
    g.bench_function("ingest_pass_512ads", |b| {
        b.iter(|| {
            t += 10; // one bucket per pass in the fine tier
            collector.ingest(LOCAL_POOL, &pass_ads(t), t);
            collector.observations()
        })
    });
    g.finish();
}

/// Query cost: a classad constraint evaluated over every retained
/// series — the per-request price of a wire `HistoryQuery`.
fn bench_history_query(c: &mut Criterion) {
    let collector = Collector::in_memory(HistoryConfig::default());
    for t in 0..60u64 {
        collector.ingest(
            LOCAL_POOL,
            &pass_ads(1_000_000 + t * 10),
            1_000_000 + t * 10,
        );
    }
    let mut g = c.benchmark_group("view");
    g.sample_size(10);
    g.bench_function("history_query_all_series", |b| {
        b.iter(|| {
            let ads = collector
                .query(r#"other.Metric == "Claimed" && other.Tier == 0"#, 0)
                .unwrap();
            assert!(!ads.is_empty());
            ads.len()
        })
    });
    g.finish();
}

/// Export the measurements, with ads/second ingest as the headline.
fn write_bench_json(path: &str) {
    let results = criterion::take_results();
    let find = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.mean_ns);
    let pass = find("view/ingest_pass_512ads");
    let ads_per_sec = pass.map(|ns| BATCH as f64 * 1e9 / ns).unwrap_or(0.0);

    let mut json = String::from("{\n");
    json.push_str(&bench::provenance_fields());
    json.push_str("  \"benchmark\": \"view\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{}\n",
            r.id, r.mean_ns, r.iterations, comma
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"collector_ads_per_sec\": {:.0},\n  \"batch\": {}\n}}\n",
        ads_per_sec, BATCH
    ));
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} (collector ingest: {ads_per_sec:.0} ads/sec)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ingest_pass, bench_history_query
);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    // Anchor at the workspace root regardless of cargo's bench CWD.
    write_bench_json(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_view.json"
    ));
}
