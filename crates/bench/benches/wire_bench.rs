//! Live-wire throughput: what the TCP substrate adds on top of the
//! in-memory protocol stack.
//!
//! Three measurements against a real `MatchmakerDaemon` on loopback:
//! advertisement ingest rate when a resource agent streams ads down one
//! connection (the steady-state load of a large pool's heartbeats), the
//! full connect → query → reply round trip a status tool pays, and a
//! negotiation cycle driven end to end over sockets. The headline number
//! exported to `BENCH_wire.json` is ads/second through the daemon.

use condor_pool::wire::{self, IoConfig};
use condor_pool::{DaemonConfig, MatchmakerDaemon};
use criterion::{criterion_group, Criterion};
use matchmaker::framing::FrameDecoder;
use matchmaker::protocol::{Advertisement, EntityKind, Message};
use std::time::{Duration, Instant};

/// Ads streamed per connection in the ingest benchmark.
const BATCH: usize = 256;

fn machine_adv(i: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "m{i}"; Type = "Machine"; Mips = {mips}; Memory = {mem};
             Arch = "INTEL"; State = "Unclaimed";
             Constraint = other.Type == "Job" && other.Memory <= Memory;
             Rank = 0 ]"#,
        mips = 50 + (i * 13) % 100,
        mem = 32 << (i % 3),
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Provider,
        ad,
        contact: "127.0.0.1:9".into(),
        ticket: None,
        expires_at: wire::unix_now() + 3600,
    }
}

/// A daemon whose ticker stays out of the way (cycles are driven manually
/// where the benchmark wants them).
fn quiet_daemon() -> MatchmakerDaemon {
    MatchmakerDaemon::spawn(DaemonConfig {
        cycle_interval: Duration::from_secs(3600),
        ..DaemonConfig::default()
    })
    .expect("loopback daemon should start")
}

/// Send `msg` and wait for its reply on an open connection.
fn roundtrip(stream: &mut std::net::TcpStream, msg: &Message, io: &IoConfig) -> Message {
    wire::send(stream, msg).unwrap();
    let mut dec = FrameDecoder::new();
    wire::recv(stream, &mut dec, Instant::now() + io.read_timeout).unwrap()
}

/// Ingest rate: one connection streaming `BATCH` advertisements, closed by
/// a cheap query round trip so every ad is known to be processed (the
/// daemon serves a connection's frames in order).
fn bench_advertise_stream(c: &mut Criterion) {
    let daemon = quiet_daemon();
    let addr = daemon.addr().to_string();
    let io = IoConfig::default();
    let ads: Vec<Message> = (0..BATCH)
        .map(|i| Message::Advertise(machine_adv(i)))
        .collect();
    let sync = Message::Query {
        constraint: "false".into(),
        kind: None,
        projection: vec![],
    };

    let mut g = c.benchmark_group("wire_loopback");
    g.sample_size(10);
    g.bench_function("advertise_stream_256", |b| {
        b.iter(|| {
            let mut stream = wire::connect(&addr, &io).unwrap();
            for ad in &ads {
                wire::send(&mut stream, ad).unwrap();
            }
            roundtrip(&mut stream, &sync, &io)
        })
    });
    g.finish();
    drop(daemon);
}

/// The status-tool cost: connect, query 256 stored ads with a projection,
/// read the reply, disconnect — a fresh connection every time, as remote
/// tools do.
fn bench_query_roundtrip(c: &mut Criterion) {
    let daemon = quiet_daemon();
    let addr = daemon.addr().to_string();
    let io = IoConfig::default();
    let mut stream = wire::connect(&addr, &io).unwrap();
    for i in 0..BATCH {
        wire::send(&mut stream, &Message::Advertise(machine_adv(i))).unwrap();
    }
    let q = Message::Query {
        constraint: "other.Mips >= 100".into(),
        kind: Some(EntityKind::Provider),
        projection: vec!["Name".into(), "Mips".into()],
    };
    // Sync: make sure all ads are ingested before measuring.
    roundtrip(&mut stream, &q, &io);
    drop(stream);

    let mut g = c.benchmark_group("wire_loopback");
    g.sample_size(10);
    g.bench_function("query_roundtrip_256ads", |b| {
        b.iter(|| {
            let reply = wire::request_reply(&addr, &q, &io).unwrap();
            let Message::QueryReply { ads } = reply else {
                panic!("{reply:?}")
            };
            assert!(!ads.is_empty());
            ads.len()
        })
    });
    g.finish();
    drop(daemon);
}

/// A negotiation cycle over the wire: 64 machines + 16 jobs ingested via
/// TCP, one cycle run on the service. Notification dials go to dead
/// contacts and fail fast — the measured path is ingest + match.
fn bench_cycle_over_sockets(c: &mut Criterion) {
    let io = IoConfig::default();
    let job = |i: usize| {
        let ad = classad::parse_classad(&format!(
            r#"[ Name = "j{i}"; Type = "Job"; Owner = "user{}"; Memory = 16;
                 Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
                 Rank = other.Mips ]"#,
            i % 4,
        ))
        .unwrap();
        Message::Advertise(Advertisement {
            kind: EntityKind::Customer,
            ad,
            contact: "127.0.0.1:9".into(),
            ticket: None,
            expires_at: wire::unix_now() + 3600,
        })
    };
    let sync = Message::Query {
        constraint: "false".into(),
        kind: None,
        projection: vec![],
    };

    let mut g = c.benchmark_group("wire_loopback");
    g.sample_size(10);
    g.bench_function("negotiate_64x16_over_tcp", |b| {
        b.iter(|| {
            let daemon = quiet_daemon();
            let addr = daemon.addr().to_string();
            let mut stream = wire::connect(&addr, &io).unwrap();
            for i in 0..64 {
                wire::send(&mut stream, &Message::Advertise(machine_adv(i))).unwrap();
            }
            for i in 0..16 {
                wire::send(&mut stream, &job(i)).unwrap();
            }
            roundtrip(&mut stream, &sync, &io);
            let out = daemon.service().negotiate(wire::unix_now());
            assert_eq!(out.matches.len(), 16);
            out.matches.len()
        })
    });
    g.finish();
}

/// Export the measurements, with ads/second as the headline figure.
fn write_bench_json(path: &str) {
    let results = criterion::take_results();
    let find = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.mean_ns);
    let stream = find("wire_loopback/advertise_stream_256");
    let ads_per_sec = stream.map(|ns| BATCH as f64 * 1e9 / ns).unwrap_or(0.0);

    let mut json = String::from("{\n");
    json.push_str(&bench::provenance_fields());
    json.push_str("  \"benchmark\": \"wire\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{}\n",
            r.id, r.mean_ns, r.iterations, comma
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"loopback_ads_per_sec\": {:.0},\n  \"batch\": {}\n}}\n",
        ads_per_sec, BATCH
    ));
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} (loopback ingest: {ads_per_sec:.0} ads/sec)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_advertise_stream, bench_query_roundtrip, bench_cycle_over_sockets
);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    // Anchor at the workspace root regardless of cargo's bench CWD.
    write_bench_json(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_wire.json"
    ));
}
