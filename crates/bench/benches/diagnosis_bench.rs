//! E8 — identifying constraints "which can never be satisfied by the
//! pool" (paper §5): diagnosis cost vs pool size and constraint width.

use classad::{ClassAd, EvalPolicy, MatchConventions};
use criterion::{criterion_group, BenchmarkId, Criterion};
use gangmatch::diagnosis::diagnose;
use std::sync::Arc;

fn pool(n: usize) -> Vec<Arc<ClassAd>> {
    (0..n)
        .map(|i| {
            Arc::new(
                classad::parse_classad(&format!(
                    r#"[ Name = "m{i}"; Type = "Machine";
                         Arch = "{arch}"; Memory = {mem}; Mips = {mips};
                         Disk = {disk};
                         Constraint = other.Owner != "banned" ]"#,
                    arch = if i % 3 == 0 { "SPARC" } else { "INTEL" },
                    mem = 32 << (i % 3),
                    mips = 50 + (i % 10) as i64 * 9,
                    disk = 100_000 + 1000 * i,
                ))
                .unwrap(),
            )
        })
        .collect()
}

fn request(constraint: &str) -> ClassAd {
    classad::parse_classad(&format!(
        r#"[ Name = "j"; Type = "Job"; Owner = "alice"; Constraint = {constraint} ]"#
    ))
    .unwrap()
}

const SATISFIABLE: &str =
    r#"other.Type == "Machine" && other.Arch == "INTEL" && other.Memory >= 64"#;
const IMPOSSIBLE: &str =
    r#"other.Type == "Machine" && other.Memory >= 8192 && other.Arch == "INTEL""#;
const WIDE: &str = r#"other.Type == "Machine" && other.Arch == "INTEL" && other.Memory >= 64
    && other.Mips >= 60 && other.Disk >= 150000 && other.KFlops is undefined
    && other.Name != "m0""#;

fn bench_diagnosis(c: &mut Criterion) {
    let mut g = c.benchmark_group("diagnosis");
    g.sample_size(20);
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    for n in [128_usize, 1024, 4096] {
        let offers = pool(n);
        for (label, constraint) in [
            ("satisfiable", SATISFIABLE),
            ("impossible", IMPOSSIBLE),
            ("wide", WIDE),
        ] {
            let req = request(constraint);
            g.bench_with_input(
                BenchmarkId::new(label, n),
                &(req, offers.clone()),
                |b, (req, offers)| b.iter(|| diagnose(req, offers, &policy, &conv)),
            );
        }
    }
    g.finish();
}

fn print_e8_table() {
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    let offers = pool(1024);
    println!("== E8: diagnosing an impossible request against 1024 machines ==");
    let d = diagnose(&request(IMPOSSIBLE), &offers, &policy, &conv);
    print!("{d}");
    println!(
        "  unsatisfiable: {} (the Memory conjunct kills {}/{} offers)",
        d.unsatisfiable(),
        d.conjuncts
            .iter()
            .find(|c| c.text.contains("Memory"))
            .map(|c| c.eliminated())
            .unwrap_or(0),
        d.pool_size,
    );
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_diagnosis
);

fn main() {
    print_e8_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
