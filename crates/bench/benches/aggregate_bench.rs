//! E7 — exploiting regularity: group matching vs the bilateral scan
//! (paper §5).
//!
//! "Group matching may be used to both boost matchmaking throughput and
//! service co-allocation requests." The series sweeps the pool's value
//! regularity (few templates → highly regular, unique ads → irregular)
//! and compares a per-request bilateral scan with the aggregated-template
//! scan. The crossover the paper hypothesizes — big wins on regular
//! pools, no win on irregular ones — falls out directly. A second group
//! measures gang (co-allocation) solving.

use classad::{ClassAd, EvalPolicy, MatchConventions};
use criterion::{criterion_group, BenchmarkId, Criterion};
use gangmatch::aggregate::{regularity, AggregatedPool};
use gangmatch::coalloc::{GangRequest, GangSolver};
use matchmaker::matcher::MatchEngine;
use std::sync::Arc;

/// A pool of `n` machines drawn from `templates` hardware classes.
fn pool(n: usize, templates: usize) -> Vec<Arc<ClassAd>> {
    (0..n)
        .map(|i| {
            let t = i % templates.max(1);
            Arc::new(
                classad::parse_classad(&format!(
                    r#"[ Name = "m{i}"; Type = "Machine";
                         Mips = {mips}; Memory = {mem};
                         Arch = "{arch}";
                         Constraint = (other.Type == "Job" || other.Type == "Gang")
                                      && other.Memory <= Memory;
                         Rank = 0 ]"#,
                    // `t` feeds Mips directly so `templates` distinct
                    // hardware classes really exist (2048 templates means
                    // 2048 unique ads).
                    mips = 50 + t as i64,
                    mem = 32 << (t % 3),
                    arch = if t.is_multiple_of(2) {
                        "INTEL"
                    } else {
                        "SPARC"
                    },
                ))
                .unwrap(),
            )
        })
        .collect()
}

fn request() -> ClassAd {
    classad::parse_classad(
        r#"[ Name = "j"; Type = "Job"; Owner = "u"; Memory = 31;
             Constraint = other.Type == "Machine" && other.Arch == "INTEL";
             Rank = other.Mips ]"#,
    )
    .unwrap()
}

fn bench_group_vs_bilateral(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_vs_bilateral");
    g.sample_size(20);
    let engine = MatchEngine::new();
    let req = request();
    let n = 2048;
    for templates in [4_usize, 64, 2048] {
        let offers = pool(n, templates);
        g.bench_with_input(
            BenchmarkId::new("bilateral_scan", templates),
            &offers,
            |b, offers| b.iter(|| engine.best_match(&req, offers, |_| true).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("group_scan_incl_build", templates),
            &offers,
            |b, offers| {
                b.iter(|| {
                    let mut agg = AggregatedPool::build(offers);
                    agg.allocate_best(&req, &engine).unwrap()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("group_scan_prebuilt", templates),
            &offers,
            |b, offers| {
                // Amortized regime: the matchmaker re-aggregates once per
                // cycle and serves many requests from it.
                b.iter_batched(
                    || AggregatedPool::build(offers),
                    |mut agg| agg.allocate_best(&req, &engine).unwrap(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

fn bench_gang_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("gang_coalloc");
    g.sample_size(20);
    let mut offers = pool(512, 16);
    // Add licenses and tape drives.
    for i in 0..8 {
        offers.push(Arc::new(
            classad::parse_classad(&format!(
                r#"[ Name = "lic{i}"; Type = "License"; Product = "matlab";
                     Constraint = true; Rank = 0 ]"#
            ))
            .unwrap(),
        ));
        offers.push(Arc::new(
            classad::parse_classad(&format!(
                r#"[ Name = "tape{i}"; Type = "TapeDrive"; CapacityGB = {cap};
                     Constraint = true; Rank = 0 ]"#,
                cap = 20 * (i + 1),
            ))
            .unwrap(),
        ));
    }
    for ports in [2_usize, 3, 5] {
        let mut port_srcs = vec![
            r#"[ Constraint = other.Type == "Machine" && other.Memory >= 32; Rank = other.Mips ]"#
                .to_string(),
            r#"[ Constraint = other.Type == "License" && other.Product == "matlab" ]"#.to_string(),
            r#"[ Constraint = other.Type == "TapeDrive" && other.CapacityGB >= 100 ]"#.to_string(),
            r#"[ Constraint = other.Type == "Machine" && other.Arch == "SPARC" ]"#.to_string(),
            r#"[ Constraint = other.Type == "Machine"; Rank = -other.Mips ]"#.to_string(),
        ];
        port_srcs.truncate(ports);
        let src = format!(
            r#"[ Name = "gang"; Type = "Gang"; Owner = "u"; Memory = 31;
                 Ports = {{ {} }} ]"#,
            port_srcs.join(", ")
        );
        let gang = GangRequest::from_ad(&classad::parse_classad(&src).unwrap()).unwrap();
        let solver = GangSolver::default();
        g.bench_with_input(BenchmarkId::new("ports", ports), &gang, |b, gang| {
            b.iter(|| solver.solve(gang, &offers).unwrap())
        });
    }
    g.finish();
}

fn print_e7_table() {
    println!("== E7: pool regularity and group-matching leverage (n = 2048) ==");
    println!(
        "  {:<12}{:>18}{:>14}",
        "templates", "value templates", "dedup ratio"
    );
    for templates in [4_usize, 64, 2048] {
        let offers = pool(2048, templates);
        let r = regularity(&offers);
        println!(
            "  {:<12}{:>18}{:>14.1}",
            templates, r.value_templates, r.dedup_ratio
        );
    }
    // Exactness check: group scan must reproduce the bilateral rank.
    let engine = MatchEngine::new();
    let req = request();
    let offers = pool(2048, 4);
    let bilateral = engine.best_match(&req, &offers, |_| true).unwrap();
    let mut agg = AggregatedPool::build(&offers);
    let (_, cand) = agg.allocate_best(&req, &engine).unwrap();
    println!(
        "  exactness: bilateral rank {} == group rank {} : {}",
        bilateral.request_rank,
        cand.request_rank,
        bilateral.request_rank == cand.request_rank
    );
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    let _ = (policy, conv);
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_group_vs_bilateral, bench_gang_solver
);

fn main() {
    print_e7_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
