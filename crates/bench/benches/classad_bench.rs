//! E1 + E4 — the ClassAd language on the paper's own artifacts.
//!
//! * `fig_ads/*`: parse, evaluate, match, and serialize the verbatim
//!   Figure 1 (machine) and Figure 2 (job) ads.
//! * `undefined_logic/*`: three-valued evaluation over ads with randomly
//!   missing attributes — the heterogeneity mechanism of §3.1 (E4).

use classad::fixtures::{FIGURE1_MACHINE, FIGURE2_JOB};
use classad::{evaluate_match, parse_classad, parse_expr, ClassAd, EvalPolicy, MatchConventions};
use criterion::{black_box, criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_figure_ads(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_ads");
    g.bench_function("parse_figure1_machine", |b| {
        b.iter(|| parse_classad(black_box(FIGURE1_MACHINE)).unwrap())
    });
    g.bench_function("parse_figure2_job", |b| {
        b.iter(|| parse_classad(black_box(FIGURE2_JOB)).unwrap())
    });

    let machine = parse_classad(FIGURE1_MACHINE).unwrap();
    let job = parse_classad(FIGURE2_JOB).unwrap();
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();

    g.bench_function("evaluate_match_fig1_x_fig2", |b| {
        b.iter(|| evaluate_match(black_box(&job), black_box(&machine), &policy, &conv))
    });
    g.bench_function("machine_constraint_only", |b| {
        b.iter(|| classad::constraint_holds(black_box(&machine), black_box(&job), &policy, &conv))
    });
    g.bench_function("job_rank_of_machine", |b| {
        b.iter(|| classad::rank_of(black_box(&job), black_box(&machine), &policy, &conv))
    });
    g.bench_function("pretty_print_figure1", |b| {
        b.iter(|| black_box(&machine).to_string())
    });
    g.bench_function("json_export_figure1", |b| {
        b.iter(|| classad::json::to_json(black_box(&machine)))
    });
    let js = classad::json::to_json(&machine);
    g.bench_function("json_import_figure1", |b| {
        b.iter(|| classad::json::from_json(black_box(&js)).unwrap())
    });
    g.finish();
}

/// Build a machine ad that defines each optional attribute with
/// probability `density` — sparse ads exercise the undefined paths.
fn sparse_ad(rng: &mut StdRng, density: f64) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.set_str("Type", "Machine");
    for (name, val) in [
        ("Mips", 104),
        ("KFlops", 21893),
        ("Memory", 64),
        ("Disk", 323496),
        ("KeyboardIdle", 1432),
    ] {
        if rng.gen_bool(density) {
            ad.set_int(name, val);
        }
    }
    if rng.gen_bool(density) {
        ad.set_str("Arch", "INTEL");
    }
    ad
}

fn bench_undefined_logic(c: &mut Criterion) {
    let mut g = c.benchmark_group("undefined_logic");
    // The paper's canonical non-strict expression.
    let nonstrict = parse_expr("Mips >= 10 || KFlops >= 1000").unwrap();
    let strict =
        parse_expr(r#"Arch == "INTEL" && Memory >= 32 && Disk >= 10000 && KeyboardIdle > 900"#)
            .unwrap();
    let guarded = parse_expr("Memory is undefined || Memory >= 32 ? true : false").unwrap();
    let policy = EvalPolicy::default();

    for density in [0.25_f64, 0.75] {
        let mut rng = StdRng::seed_from_u64(42);
        let ads: Vec<ClassAd> = (0..256).map(|_| sparse_ad(&mut rng, density)).collect();
        let label = format!("density_{:02}", (density * 100.0) as u32);
        g.bench_function(format!("nonstrict_or/{label}"), |b| {
            b.iter(|| {
                for ad in &ads {
                    black_box(ad.eval_expr(black_box(&nonstrict), &policy));
                }
            })
        });
        g.bench_function(format!("strict_and/{label}"), |b| {
            b.iter(|| {
                for ad in &ads {
                    black_box(ad.eval_expr(black_box(&strict), &policy));
                }
            })
        });
        g.bench_function(format!("is_undefined_guard/{label}"), |b| {
            b.iter(|| {
                for ad in &ads {
                    black_box(ad.eval_expr(black_box(&guarded), &policy));
                }
            })
        });
    }
    g.finish();
}

/// Print the E1 reproduction row (paper-vs-measured) once per bench run.
fn print_e1_table() {
    let machine = parse_classad(FIGURE1_MACHINE).unwrap();
    let mut job = parse_classad(FIGURE2_JOB).unwrap();
    job.set_str("Name", "raman.sim2.0");
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    let r = evaluate_match(&job, &machine, &policy, &conv);
    println!("== E1: paper Figure 1 x Figure 2 ==");
    println!(
        "  job constraint accepts machine : {} (paper: true)",
        r.left_constraint
    );
    println!(
        "  machine constraint accepts job : {} (paper: true)",
        r.right_constraint
    );
    println!(
        "  job rank of machine            : {:.3} (paper: KFlops/1E3 + 64/32 = 23.893)",
        r.left_rank
    );
    println!(
        "  machine rank of job            : {:.1} (paper: research member = 10)",
        r.right_rank
    );
}

/// Ablation: matching with pre-flattened constraints. A matchmaker can
/// flatten each request's constraint once and reuse it across the whole
/// offer scan; this measures what that buys on the paper's Figure 2
/// constraint (which folds `self.Memory` and the type literal).
fn bench_flatten_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("flatten_ablation");
    let machine = parse_classad(FIGURE1_MACHINE).unwrap();
    let job = parse_classad(FIGURE2_JOB).unwrap();
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();

    g.bench_function("constraint_raw", |b| {
        b.iter(|| classad::constraint_holds(black_box(&job), black_box(&machine), &policy, &conv))
    });

    let mut flat_job = job.clone();
    let flat = classad::flatten::flatten(job.get("Constraint").unwrap(), &job, &policy);
    flat_job.set("Constraint", flat);
    g.bench_function("constraint_preflattened", |b| {
        b.iter(|| {
            classad::constraint_holds(black_box(&flat_job), black_box(&machine), &policy, &conv)
        })
    });
    g.bench_function("flatten_cost_itself", |b| {
        let e = job.get("Constraint").unwrap().as_ref().clone();
        b.iter(|| classad::flatten::flatten(black_box(&e), &job, &policy))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_figure_ads, bench_undefined_logic, bench_flatten_ablation
);

fn main() {
    print_e1_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
