//! E3 — matchmaker scalability: negotiation-cycle cost vs pool size, and
//! the serial-vs-parallel match-scan ablation.
//!
//! The paper argues the stateless matchmaker "makes the system more
//! scalable"; the measurable claim is that a cycle is a linear scan per
//! request, embarrassingly parallel over offers. The series here shows
//! cycle time growing linearly in the number of machines and the parallel
//! scan's speedup on large pools.

use criterion::{criterion_group, BenchmarkId, Criterion};
use matchmaker::prelude::*;
use matchmaker::negotiate::NegotiatorConfig;

fn machine_adv(i: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "m{i}"; Type = "Machine"; Mips = {mips}; Memory = {mem};
             Arch = "{arch}"; State = "Unclaimed";
             Constraint = other.Type == "Job" && other.Memory <= Memory;
             Rank = 0 ]"#,
        mips = 50 + (i * 13) % 100,
        mem = 32 << (i % 3),
        arch = if i.is_multiple_of(4) { "SPARC" } else { "INTEL" },
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Provider,
        ad,
        contact: format!("m{i}:9614"),
        ticket: None,
        expires_at: u64::MAX,
    }
}

fn job_adv(i: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "j{i}"; Type = "Job"; Owner = "user{owner}"; Memory = {mem};
             Constraint = other.Type == "Machine" && other.Arch == "INTEL"
                          && other.Memory >= self.Memory;
             Rank = other.Mips ]"#,
        owner = i % 8,
        mem = 16 << (i % 3),
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Customer,
        ad,
        contact: format!("ca{}:1", i % 8),
        ticket: None,
        expires_at: u64::MAX,
    }
}

fn build_store(machines: usize, jobs: usize) -> AdStore {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for i in 0..machines {
        store.advertise(machine_adv(i), 0, &proto).unwrap();
    }
    for i in 0..jobs {
        store.advertise(job_adv(i), 0, &proto).unwrap();
    }
    store
}

fn bench_pool_size_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("negotiation_cycle_vs_pool");
    g.sample_size(10);
    for machines in [64_usize, 256, 1024, 4096] {
        let store = build_store(machines, 32);
        g.bench_with_input(BenchmarkId::new("machines", machines), &store, |b, store| {
            b.iter(|| {
                let mut neg = Negotiator::default();
                neg.negotiate(store, 0)
            })
        });
    }
    g.finish();
}

fn bench_job_batch_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("negotiation_cycle_vs_jobs");
    g.sample_size(10);
    for jobs in [8_usize, 32, 128] {
        let store = build_store(512, jobs);
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &store, |b, store| {
            b.iter(|| {
                let mut neg = Negotiator::default();
                neg.negotiate(store, 0)
            })
        });
    }
    g.finish();
}

fn bench_parallel_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_scan_ablation");
    g.sample_size(10);
    let store = build_store(4096, 16);
    for threads in [1_usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            b.iter(|| {
                let mut neg =
                    Negotiator::new(NegotiatorConfig { threads, ..Default::default() });
                neg.negotiate(&store, 0)
            })
        });
    }
    g.finish();
}

fn print_e3_table() {
    println!("== E3: cycle outcome sanity (512 machines, 128 jobs) ==");
    let store = build_store(512, 128);
    let mut neg = Negotiator::default();
    let out = neg.negotiate(&store, 0);
    println!(
        "  offers={} requests={} matches={} unmatched={} rounds={}",
        out.stats.offers_considered,
        out.stats.requests_considered,
        out.stats.matches,
        out.stats.unmatched_requests,
        out.stats.rounds,
    );
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pool_size_scaling, bench_job_batch_scaling, bench_parallel_ablation
);

fn main() {
    print_e3_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
