//! E3 — matchmaker scalability: negotiation-cycle cost vs pool size, and
//! the serial-vs-parallel match-scan ablation.
//!
//! The paper argues the stateless matchmaker "makes the system more
//! scalable"; the measurable claim is that a cycle is a linear scan per
//! request, embarrassingly parallel over offers. The series here shows
//! cycle time growing linearly in the number of machines and the parallel
//! scan's speedup on large pools.

use criterion::{criterion_group, BenchmarkId, Criterion};
use matchmaker::negotiate::NegotiatorConfig;
use matchmaker::prelude::*;

fn machine_adv(i: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "m{i}"; Type = "Machine"; Mips = {mips}; Memory = {mem};
             Arch = "{arch}"; State = "Unclaimed";
             Constraint = other.Type == "Job" && other.Memory <= Memory;
             Rank = 0 ]"#,
        mips = 50 + (i * 13) % 100,
        mem = 32 << (i % 3),
        arch = if i.is_multiple_of(4) {
            "SPARC"
        } else {
            "INTEL"
        },
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Provider,
        ad,
        contact: format!("m{i}:9614"),
        ticket: None,
        expires_at: u64::MAX,
    }
}

fn job_adv(i: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "j{i}"; Type = "Job"; Owner = "user{owner}"; Memory = {mem};
             Constraint = other.Type == "Machine" && other.Arch == "INTEL"
                          && other.Memory >= self.Memory;
             Rank = other.Mips ]"#,
        owner = i % 8,
        mem = 16 << (i % 3),
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Customer,
        ad,
        contact: format!("ca{}:1", i % 8),
        ticket: None,
        expires_at: u64::MAX,
    }
}

fn build_store(machines: usize, jobs: usize) -> AdStore {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for i in 0..machines {
        store.advertise(machine_adv(i), 0, &proto).unwrap();
    }
    for i in 0..jobs {
        store.advertise(job_adv(i), 0, &proto).unwrap();
    }
    store
}

fn bench_pool_size_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("negotiation_cycle_vs_pool");
    g.sample_size(10);
    for machines in [64_usize, 256, 1024, 4096] {
        let store = build_store(machines, 32);
        g.bench_with_input(
            BenchmarkId::new("machines", machines),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut neg = Negotiator::default();
                    neg.negotiate(store, 0)
                })
            },
        );
    }
    g.finish();
}

fn bench_job_batch_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("negotiation_cycle_vs_jobs");
    g.sample_size(10);
    for jobs in [8_usize, 32, 128] {
        let store = build_store(512, jobs);
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &store, |b, store| {
            b.iter(|| {
                let mut neg = Negotiator::default();
                neg.negotiate(store, 0)
            })
        });
    }
    g.finish();
}

fn bench_parallel_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_scan_ablation");
    g.sample_size(10);
    let store = build_store(4096, 16);
    for threads in [1_usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut neg = Negotiator::new(NegotiatorConfig {
                        threads,
                        ..Default::default()
                    });
                    neg.negotiate(&store, 0)
                })
            },
        );
    }
    g.finish();
}

/// One member of an N-users × M-identical-jobs batch: every job carries
/// the same Constraint/Rank and the same attribute values those read, so
/// autoclustering folds the whole batch into one equivalence class.
fn clustered_job_adv(i: usize, users: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "j{i}"; Type = "Job"; Owner = "user{owner}"; Memory = 16;
             Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
             Rank = other.Mips ]"#,
        owner = i % users,
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Customer,
        ad,
        contact: format!("ca{}:1", i % users),
        ticket: None,
        expires_at: u64::MAX,
    }
}

fn build_clustered_store(machines: usize, jobs: usize, users: usize) -> AdStore {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for i in 0..machines {
        store.advertise(machine_adv(i), 0, &proto).unwrap();
    }
    for i in 0..jobs {
        store
            .advertise(clustered_job_adv(i, users), 0, &proto)
            .unwrap();
    }
    store
}

/// The headline ablation for the autocluster + match-list fast path: a
/// redundant workload (8 users × identical jobs) negotiated with
/// clustering on vs off. The off path pays one full scan per request; the
/// on path pays one scan per *cluster*.
fn bench_clustered_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustered_workload");
    g.sample_size(10);
    for (machines, jobs) in [(256_usize, 256_usize), (1000, 1000)] {
        let store = build_clustered_store(machines, jobs, 8);
        for autocluster in [true, false] {
            let label = if autocluster {
                "autocluster_on"
            } else {
                "autocluster_off"
            };
            g.bench_with_input(
                BenchmarkId::new(label, format!("{machines}x{jobs}")),
                &store,
                |b, store| {
                    b.iter(|| {
                        let mut neg = Negotiator::new(NegotiatorConfig {
                            autocluster,
                            ..Default::default()
                        });
                        neg.negotiate(store, 0)
                    })
                },
            );
        }
    }
    g.finish();
}

/// A job that can never match: fodder for the attribution post-pass,
/// which only runs over unmatched clusters.
fn unmatchable_job_adv(i: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "u{i}"; Type = "Job"; Owner = "user{owner}"; Memory = 16;
             Constraint = other.Type == "Machine" && other.Arch == "ALPHA"
                          && other.Mips >= 100000;
             Rank = other.Mips ]"#,
        owner = i % 8,
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Customer,
        ad,
        contact: format!("ca{}:1", i % 8),
        ticket: None,
        expires_at: u64::MAX,
    }
}

/// Match-failure attribution on vs off over a workload where half the
/// jobs can never match. Attribution re-traces one representative per
/// unmatched autocluster after the cycle; the off configuration is the
/// pre-attribution negotiator, so its time must sit within noise of the
/// seed measurements.
fn bench_attribution_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("attribution_ablation");
    g.sample_size(10);
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for i in 0..512 {
        store.advertise(machine_adv(i), 0, &proto).unwrap();
    }
    for i in 0..32 {
        store.advertise(job_adv(i), 0, &proto).unwrap();
        store.advertise(unmatchable_job_adv(i), 0, &proto).unwrap();
    }
    for attribution in [true, false] {
        let label = if attribution {
            "attribution_on"
        } else {
            "attribution_off"
        };
        g.bench_with_input(BenchmarkId::new(label, "512x64"), &store, |b, store| {
            b.iter(|| {
                let mut neg = Negotiator::new(NegotiatorConfig {
                    attribution,
                    ..Default::default()
                });
                neg.negotiate(store, 0)
            })
        });
    }
    g.finish();
}

/// Export every measurement (plus the derived clustered-workload speedup)
/// as machine-readable JSON next to the human-readable criterion lines.
fn write_bench_json(path: &str) {
    let results = criterion::take_results();
    let find = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.mean_ns);
    let on = find("clustered_workload/autocluster_on/1000x1000");
    let off = find("clustered_workload/autocluster_off/1000x1000");
    let speedup = match (on, off) {
        (Some(on), Some(off)) if on > 0.0 => off / on,
        _ => 0.0,
    };
    let attr_on = find("attribution_ablation/attribution_on/512x64");
    let attr_off = find("attribution_ablation/attribution_off/512x64");
    let overhead = match (attr_on, attr_off) {
        (Some(on), Some(off)) if off > 0.0 => on / off,
        _ => 0.0,
    };

    let mut json = String::from("{\n");
    json.push_str(&bench::provenance_fields());
    json.push_str("  \"benchmark\": \"negotiation\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{}\n",
            r.id, r.mean_ns, r.iterations, comma
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"clustered_1000x1000\": {{\"autocluster_on_ns\": {}, \"autocluster_off_ns\": {}, \"speedup\": {:.2}}},\n",
        on.map_or("null".to_string(), |v| format!("{v:.1}")),
        off.map_or("null".to_string(), |v| format!("{v:.1}")),
        speedup
    ));
    json.push_str(&format!(
        "  \"attribution_512x64\": {{\"attribution_on_ns\": {}, \"attribution_off_ns\": {}, \"overhead\": {:.2}}}\n}}\n",
        attr_on.map_or("null".to_string(), |v| format!("{v:.1}")),
        attr_off.map_or("null".to_string(), |v| format!("{v:.1}")),
        overhead
    ));
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "wrote {path} (clustered 1000x1000 speedup: {speedup:.2}x, attribution overhead: {overhead:.2}x)"
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn print_e3_table() {
    println!("== E3: cycle outcome sanity (512 machines, 128 jobs) ==");
    let store = build_store(512, 128);
    let mut neg = Negotiator::default();
    let out = neg.negotiate(&store, 0);
    println!(
        "  offers={} requests={} matches={} unmatched={} rounds={}",
        out.stats.offers_considered,
        out.stats.requests_considered,
        out.stats.matches,
        out.stats.unmatched_requests,
        out.stats.rounds,
    );
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pool_size_scaling, bench_job_batch_scaling, bench_parallel_ablation,
        bench_clustered_workload, bench_attribution_ablation
);

fn main() {
    print_e3_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
    // Anchor at the workspace root regardless of cargo's bench CWD.
    write_bench_json(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_negotiation.json"
    ));
}
