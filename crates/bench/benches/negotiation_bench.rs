//! E3 — matchmaker scalability: negotiation-cycle cost vs pool size, the
//! sharded parallel-scan ablation, and the incremental small-delta series.
//!
//! The paper argues the stateless matchmaker "makes the system more
//! scalable"; the measurable claims here are (a) a cycle is a linear scan
//! per request, embarrassingly parallel over shared-nothing ad shards,
//! and (b) when only a small fraction of the pool changed between cycles,
//! an incremental cycle re-scans only the dirty shards, so its latency
//! tracks the delta, not the pool.

use criterion::{criterion_group, BenchmarkId, Criterion};
use matchmaker::negotiate::NegotiatorConfig;
use matchmaker::prelude::*;

fn machine_adv(i: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "m{i}"; Type = "Machine"; Mips = {mips}; Memory = {mem};
             Arch = "{arch}"; State = "Unclaimed";
             Constraint = other.Type == "Job" && other.Memory <= Memory;
             Rank = 0 ]"#,
        mips = 50 + (i * 13) % 100,
        mem = 32 << (i % 3),
        arch = if i.is_multiple_of(4) {
            "SPARC"
        } else {
            "INTEL"
        },
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Provider,
        ad,
        contact: format!("m{i}:9614"),
        ticket: None,
        expires_at: u64::MAX,
    }
}

fn job_adv(i: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "j{i}"; Type = "Job"; Owner = "user{owner}"; Memory = {mem};
             Constraint = other.Type == "Machine" && other.Arch == "INTEL"
                          && other.Memory >= self.Memory;
             Rank = other.Mips ]"#,
        owner = i % 8,
        mem = 16 << (i % 3),
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Customer,
        ad,
        contact: format!("ca{}:1", i % 8),
        ticket: None,
        expires_at: u64::MAX,
    }
}

fn build_store_with(machines: usize, jobs: usize, shards: Option<usize>) -> AdStore {
    let proto = AdvertisingProtocol::default();
    let mut store = match shards {
        Some(n) => AdStore::with_shards(n),
        None => AdStore::new(),
    };
    for i in 0..machines {
        store.advertise(machine_adv(i), 0, &proto).unwrap();
    }
    for i in 0..jobs {
        store.advertise(job_adv(i), 0, &proto).unwrap();
    }
    store
}

fn build_store(machines: usize, jobs: usize) -> AdStore {
    build_store_with(machines, jobs, None)
}

fn bench_pool_size_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("negotiation_cycle_vs_pool");
    g.sample_size(10);
    for machines in [64_usize, 256, 1024, 4096] {
        let store = build_store(machines, 32);
        g.bench_with_input(
            BenchmarkId::new("machines", machines),
            &store,
            |b, store| {
                b.iter(|| {
                    let mut neg = Negotiator::default();
                    neg.negotiate(store, 0)
                })
            },
        );
    }
    g.finish();
}

fn bench_job_batch_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("negotiation_cycle_vs_jobs");
    g.sample_size(10);
    for jobs in [8_usize, 32, 128] {
        let store = build_store(512, jobs);
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &store, |b, store| {
            b.iter(|| {
                let mut neg = Negotiator::default();
                neg.negotiate(store, 0)
            })
        });
    }
    g.finish();
}

/// The sharded-scan ablation: a cold-cache full cycle over a 4096-machine
/// pool (8 shards after auto-scaling). A fresh negotiator per iteration
/// means every shard cache is invalid, so both the shard-cache rebuild and
/// the per-cluster candidate scans fan out across `threads` workers; with
/// one thread the same sharded code path runs serially.
fn bench_parallel_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_scan_ablation");
    g.sample_size(10);
    let store = build_store(4096, 16);
    for threads in [1_usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut neg = Negotiator::new(NegotiatorConfig {
                        threads,
                        ..Default::default()
                    });
                    neg.negotiate(&store, 0)
                })
            },
        );
    }
    g.finish();
}

/// Same cold-cache cycle, same pool, 8 worker threads — but one store is
/// pinned to a single shard (no fan-out possible) while the other keeps
/// the auto-scaled shard layout. Isolates what the *partitioning* buys
/// over what the thread pool buys.
fn bench_sharded_vs_unsharded(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_vs_unsharded");
    g.sample_size(10);
    let unsharded = build_store_with(4096, 16, Some(1));
    let sharded = build_store(4096, 16);
    for (label, store) in [("unsharded", &unsharded), ("sharded", &sharded)] {
        g.bench_with_input(BenchmarkId::new(label, 4096), store, |b, store| {
            b.iter(|| {
                let mut neg = Negotiator::new(NegotiatorConfig {
                    threads: 8,
                    ..Default::default()
                });
                neg.negotiate(store, 0)
            })
        });
    }
    g.finish();
}

/// A machine re-advertisement whose attributes actually changed, so the
/// store bumps the shard version instead of treating it as a lease
/// renewal.
fn perturbed_machine_adv(i: usize, bump: u64) -> Advertisement {
    let mut adv = machine_adv(i);
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "m{i}"; Type = "Machine"; Mips = {mips}; Memory = {mem};
             Arch = "{arch}"; State = "Unclaimed";
             Constraint = other.Type == "Job" && other.Memory <= Memory;
             Rank = 0 ]"#,
        mips = 50 + (i as u64 * 13 + bump) % 100,
        mem = 32 << (i % 3),
        arch = if i.is_multiple_of(4) {
            "SPARC"
        } else {
            "INTEL"
        },
    ))
    .unwrap();
    adv.ad = ad;
    adv
}

/// The incremental-cycle headline: a warm pool where only 8 machines
/// re-advertise with changed attributes between cycles. The incremental
/// negotiator re-scans just the shards those 8 ads hash into; the
/// full-scan configuration re-derives the whole cycle. For a fixed delta
/// the incremental series should stay roughly flat as the pool grows from
/// 4k to 100k machines, while full-scan cost grows linearly.
fn bench_incremental_small_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental_small_delta");
    g.sample_size(10);
    let proto = AdvertisingProtocol::default();
    for machines in [4096_usize, 32_768, 100_000] {
        for incremental in [true, false] {
            let label = if incremental {
                "incremental"
            } else {
                "full_scan"
            };
            let mut store = build_store(machines, 32);
            let mut neg = Negotiator::new(NegotiatorConfig {
                incremental,
                ..Default::default()
            });
            // Warm the caches: the delta series measures steady state.
            neg.negotiate(&store, 0);
            let mut bump = 0u64;
            g.bench_function(BenchmarkId::new(label, machines), |b| {
                b.iter(|| {
                    bump += 1;
                    for k in 0..8_usize {
                        let i = k * (machines / 8) + (bump as usize % 97);
                        store
                            .advertise(perturbed_machine_adv(i, bump), 0, &proto)
                            .unwrap();
                    }
                    neg.negotiate(&store, 0)
                })
            });
        }
    }
    g.finish();
}

/// One member of an N-users × M-identical-jobs batch: every job carries
/// the same Constraint/Rank and the same attribute values those read, so
/// autoclustering folds the whole batch into one equivalence class.
fn clustered_job_adv(i: usize, users: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "j{i}"; Type = "Job"; Owner = "user{owner}"; Memory = 16;
             Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
             Rank = other.Mips ]"#,
        owner = i % users,
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Customer,
        ad,
        contact: format!("ca{}:1", i % users),
        ticket: None,
        expires_at: u64::MAX,
    }
}

fn build_clustered_store(machines: usize, jobs: usize, users: usize) -> AdStore {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for i in 0..machines {
        store.advertise(machine_adv(i), 0, &proto).unwrap();
    }
    for i in 0..jobs {
        store
            .advertise(clustered_job_adv(i, users), 0, &proto)
            .unwrap();
    }
    store
}

/// The headline ablation for the autocluster + match-list fast path: a
/// redundant workload (8 users × identical jobs) negotiated with
/// clustering on vs off. The off path pays one full scan per request; the
/// on path pays one scan per *cluster*.
fn bench_clustered_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustered_workload");
    g.sample_size(10);
    for (machines, jobs) in [(256_usize, 256_usize), (1000, 1000)] {
        let store = build_clustered_store(machines, jobs, 8);
        for autocluster in [true, false] {
            let label = if autocluster {
                "autocluster_on"
            } else {
                "autocluster_off"
            };
            g.bench_with_input(
                BenchmarkId::new(label, format!("{machines}x{jobs}")),
                &store,
                |b, store| {
                    b.iter(|| {
                        let mut neg = Negotiator::new(NegotiatorConfig {
                            autocluster,
                            ..Default::default()
                        });
                        neg.negotiate(store, 0)
                    })
                },
            );
        }
    }
    g.finish();
}

/// A job that can never match: fodder for the attribution post-pass,
/// which only runs over unmatched clusters.
fn unmatchable_job_adv(i: usize) -> Advertisement {
    let ad = classad::parse_classad(&format!(
        r#"[ Name = "u{i}"; Type = "Job"; Owner = "user{owner}"; Memory = 16;
             Constraint = other.Type == "Machine" && other.Arch == "ALPHA"
                          && other.Mips >= 100000;
             Rank = other.Mips ]"#,
        owner = i % 8,
    ))
    .unwrap();
    Advertisement {
        kind: EntityKind::Customer,
        ad,
        contact: format!("ca{}:1", i % 8),
        ticket: None,
        expires_at: u64::MAX,
    }
}

/// Match-failure attribution on vs off over a workload where half the
/// jobs can never match. Attribution re-traces one representative per
/// unmatched autocluster after the cycle; the off configuration is the
/// pre-attribution negotiator, so its time must sit within noise of the
/// seed measurements.
fn bench_attribution_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("attribution_ablation");
    g.sample_size(10);
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for i in 0..512 {
        store.advertise(machine_adv(i), 0, &proto).unwrap();
    }
    for i in 0..32 {
        store.advertise(job_adv(i), 0, &proto).unwrap();
        store.advertise(unmatchable_job_adv(i), 0, &proto).unwrap();
    }
    for attribution in [true, false] {
        let label = if attribution {
            "attribution_on"
        } else {
            "attribution_off"
        };
        g.bench_with_input(BenchmarkId::new(label, "512x64"), &store, |b, store| {
            b.iter(|| {
                let mut neg = Negotiator::new(NegotiatorConfig {
                    attribution,
                    ..Default::default()
                });
                neg.negotiate(store, 0)
            })
        });
    }
    g.finish();
}

/// Flocking's negotiator-side hook on vs off over the same half-
/// unmatchable workload. With `flocking: true` the cycle additionally
/// groups unmatched requests by autocluster and clones one representative
/// per cluster into `unmatched_clusters` (the forwarding itself lives in
/// the pool daemon, off the cycle path); with `flocking: false` — the
/// default — the hook must cost nothing, keeping non-federated pools at
/// seed speed.
fn bench_flocking_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("flocking_ablation");
    g.sample_size(10);
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for i in 0..512 {
        store.advertise(machine_adv(i), 0, &proto).unwrap();
    }
    for i in 0..32 {
        store.advertise(job_adv(i), 0, &proto).unwrap();
        store.advertise(unmatchable_job_adv(i), 0, &proto).unwrap();
    }
    for flocking in [true, false] {
        let label = if flocking {
            "flocking_on"
        } else {
            "flocking_off"
        };
        g.bench_with_input(BenchmarkId::new(label, "512x64"), &store, |b, store| {
            b.iter(|| {
                let mut neg = Negotiator::new(NegotiatorConfig {
                    flocking,
                    ..Default::default()
                });
                neg.negotiate(store, 0)
            })
        });
    }
    g.finish();
}

/// Export every measurement (plus the derived clustered-workload speedup)
/// as machine-readable JSON next to the human-readable criterion lines.
fn write_bench_json(path: &str) {
    let results = criterion::take_results();
    let find = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.mean_ns);
    let on = find("clustered_workload/autocluster_on/1000x1000");
    let off = find("clustered_workload/autocluster_off/1000x1000");
    let speedup = match (on, off) {
        (Some(on), Some(off)) if on > 0.0 => off / on,
        _ => 0.0,
    };
    let attr_on = find("attribution_ablation/attribution_on/512x64");
    let attr_off = find("attribution_ablation/attribution_off/512x64");
    let overhead = match (attr_on, attr_off) {
        (Some(on), Some(off)) if off > 0.0 => on / off,
        _ => 0.0,
    };
    let flock_on = find("flocking_ablation/flocking_on/512x64");
    let flock_off = find("flocking_ablation/flocking_off/512x64");
    let flock_overhead = match (flock_on, flock_off) {
        (Some(on), Some(off)) if off > 0.0 => on / off,
        _ => 0.0,
    };
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) if d > 0.0 => n / d,
        _ => 0.0,
    };
    let t1 = find("parallel_scan_ablation/threads/1");
    let t8 = find("parallel_scan_ablation/threads/8");
    let scan_speedup = ratio(t1, t8);
    let unsharded = find("sharded_vs_unsharded/unsharded/4096");
    let sharded = find("sharded_vs_unsharded/sharded/4096");
    let shard_speedup = ratio(unsharded, sharded);
    let full_100k = find("incremental_small_delta/full_scan/100000");
    let inc_100k = find("incremental_small_delta/incremental/100000");
    let inc_speedup = ratio(full_100k, inc_100k);
    let inc_4k = find("incremental_small_delta/incremental/4096");
    let inc_32k = find("incremental_small_delta/incremental/32768");

    let mut json = String::from("{\n");
    json.push_str(&bench::provenance_fields());
    json.push_str("  \"benchmark\": \"negotiation\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{}\n",
            r.id, r.mean_ns, r.iterations, comma
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"clustered_1000x1000\": {{\"autocluster_on_ns\": {}, \"autocluster_off_ns\": {}, \"speedup\": {:.2}}},\n",
        on.map_or("null".to_string(), |v| format!("{v:.1}")),
        off.map_or("null".to_string(), |v| format!("{v:.1}")),
        speedup
    ));
    json.push_str(&format!(
        "  \"attribution_512x64\": {{\"attribution_on_ns\": {}, \"attribution_off_ns\": {}, \"overhead\": {:.2}}},\n",
        attr_on.map_or("null".to_string(), |v| format!("{v:.1}")),
        attr_off.map_or("null".to_string(), |v| format!("{v:.1}")),
        overhead
    ));
    let fmt = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.1}"));
    json.push_str(&format!(
        "  \"flocking_512x64\": {{\"flocking_on_ns\": {}, \"flocking_off_ns\": {}, \"overhead\": {:.2}}},\n",
        fmt(flock_on),
        fmt(flock_off),
        flock_overhead
    ));
    json.push_str(&format!(
        "  \"parallel_scan_4096\": {{\"threads1_ns\": {}, \"threads8_ns\": {}, \"speedup\": {:.2}}},\n",
        fmt(t1),
        fmt(t8),
        scan_speedup
    ));
    json.push_str(&format!(
        "  \"sharded_vs_unsharded_4096\": {{\"unsharded_ns\": {}, \"sharded_ns\": {}, \"speedup\": {:.2}}},\n",
        fmt(unsharded),
        fmt(sharded),
        shard_speedup
    ));
    json.push_str(&format!(
        "  \"incremental_small_delta\": {{\"full_scan_100k_ns\": {}, \"incremental_100k_ns\": {}, \"speedup\": {:.2}, \"incremental_4096_ns\": {}, \"incremental_32768_ns\": {}, \"incremental_100000_ns\": {}}}\n}}\n",
        fmt(full_100k),
        fmt(inc_100k),
        inc_speedup,
        fmt(inc_4k),
        fmt(inc_32k),
        fmt(inc_100k)
    ));
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "wrote {path} (clustered 1000x1000 speedup: {speedup:.2}x, attribution overhead: {overhead:.2}x, \
             parallel scan 1->8: {scan_speedup:.2}x, incremental small-delta at 100k: {inc_speedup:.2}x)"
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn print_e3_table() {
    println!("== E3: cycle outcome sanity (512 machines, 128 jobs) ==");
    let store = build_store(512, 128);
    let mut neg = Negotiator::default();
    let out = neg.negotiate(&store, 0);
    println!(
        "  offers={} requests={} matches={} unmatched={} rounds={}",
        out.stats.offers_considered,
        out.stats.requests_considered,
        out.stats.matches,
        out.stats.unmatched_requests,
        out.stats.rounds,
    );
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pool_size_scaling, bench_job_batch_scaling, bench_parallel_ablation,
        bench_sharded_vs_unsharded, bench_incremental_small_delta,
        bench_clustered_workload, bench_attribution_ablation, bench_flocking_ablation
);

fn main() {
    print_e3_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
    // Anchor at the workspace root regardless of cargo's bench CWD.
    write_bench_json(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_negotiation.json"
    ));
}
