//! E2 — the Figure 3 protocol: message framing cost and the full
//! advertise → match → notify → claim transaction, including the
//! stale-ad rejection path (weak consistency).

use classad::fixtures::{FIGURE1_MACHINE, FIGURE2_JOB};
use classad::parse_classad;
use criterion::{black_box, criterion_group, Criterion};
use matchmaker::prelude::*;
use matchmaker::protocol::Message;

fn figure_advertisements(ticket: Ticket) -> (Advertisement, Advertisement) {
    let machine = parse_classad(FIGURE1_MACHINE).unwrap();
    let mut job = parse_classad(FIGURE2_JOB).unwrap();
    job.set_str("Name", "raman.sim2.0");
    (
        Advertisement {
            kind: EntityKind::Provider,
            ad: machine,
            contact: "leonardo:9614".into(),
            ticket: Some(ticket),
            expires_at: u64::MAX,
        },
        Advertisement {
            kind: EntityKind::Customer,
            ad: job,
            contact: "raman-ca:1".into(),
            ticket: None,
            expires_at: u64::MAX,
        },
    )
}

fn bench_framing(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_format");
    let (m_adv, _) = figure_advertisements(Ticket::from_raw(7));
    let msg = Message::Advertise(m_adv);
    g.bench_function("encode_figure1_advertise", |b| {
        b.iter(|| black_box(&msg).encode())
    });
    let bytes = msg.encode();
    g.bench_function("decode_figure1_advertise", |b| {
        b.iter(|| Message::decode(black_box(bytes.clone())).unwrap())
    });
    g.finish();
}

fn bench_full_transaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure3_protocol");
    let proto = AdvertisingProtocol::default();

    g.bench_function("advertise_negotiate_notify_claim", |b| {
        b.iter(|| {
            // Step 0: provider issues a ticket for this advertisement.
            let mut tickets = TicketIssuer::new(9);
            let ticket = tickets.issue();
            let mut handler = ClaimHandler::new();
            handler.set_ticket(ticket);
            let (m_adv, j_adv) = figure_advertisements(ticket);
            let machine_ad = m_adv.ad.clone();
            let job_ad = j_adv.ad.clone();

            // Step 1: advertise (over the wire format).
            let mut store = AdStore::new();
            for msg in [Message::Advertise(m_adv), Message::Advertise(j_adv)] {
                let Message::Advertise(adv) = Message::decode(msg.encode()).unwrap() else {
                    unreachable!()
                };
                store.advertise(adv, 0, &proto).unwrap();
            }

            // Step 2: match.
            let mut neg = Negotiator::default();
            let outcome = neg.negotiate(&store, 0);

            // Step 3: notify.
            let (to_customer, _) = outcome.matches[0].notifications();

            // Step 4: claim.
            let (resp, _) = handler.handle_claim(
                &ClaimRequest {
                    ticket: to_customer.ticket.unwrap(),
                    customer_ad: job_ad,
                    customer_contact: "raman-ca:1".into(),
                },
                &machine_ad,
                1,
                |_| false,
            );
            assert!(resp.accepted);
            resp
        })
    });

    g.bench_function("claim_rejected_stale_state", |b| {
        // The cheap failure path: the provider state changed; the claim
        // re-verification rejects in O(one constraint evaluation).
        let mut tickets = TicketIssuer::new(10);
        let ticket = tickets.issue();
        let mut stale_machine = parse_classad(FIGURE1_MACHINE).unwrap();
        stale_machine.set_int("KeyboardIdle", 5);
        stale_machine.set_int("DayTime", 14 * 3600);
        let mut job = parse_classad(FIGURE2_JOB).unwrap();
        job.set_str("Owner", "stranger");
        let req = ClaimRequest {
            ticket,
            customer_ad: job,
            customer_contact: "x:1".into(),
        };
        b.iter(|| {
            let mut handler = ClaimHandler::new();
            handler.set_ticket(ticket);
            let (resp, _) = handler.handle_claim(&req, &stale_machine, 0, |_| false);
            assert!(!resp.accepted);
            resp
        })
    });
    g.finish();
}

fn print_e2_table() {
    let (m_adv, j_adv) = figure_advertisements(Ticket::from_raw(7));
    let m_len = Message::Advertise(m_adv).encode().len();
    let j_len = Message::Advertise(j_adv).encode().len();
    println!("== E2: protocol frame sizes ==");
    println!("  Figure 1 machine advertise frame: {m_len} bytes");
    println!("  Figure 2 job advertise frame    : {j_len} bytes");
}

criterion_group!(
    name = benches;
    // Single-core CI-friendly windows; override with
    // `cargo bench -- --warm-up-time N --measurement-time M`.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_framing, bench_full_transaction
);

fn main() {
    print_e2_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
