//! Benchmark-harness crate: the Criterion targets live in `benches/` (one
//! per reproduced paper artifact — see DESIGN.md §2 and EXPERIMENTS.md).
//! The library itself only carries what the targets share: provenance
//! stamping for the `BENCH_*.json` artifacts they write.

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// The commit the benchmark binary was built from, or `"unknown"` when the
/// tree is not a git checkout (e.g. a source tarball).
pub fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Seconds since the Unix epoch, for the `recorded_unix` artifact field.
pub fn recorded_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// CPUs available to the benchmark process. Thread-scaling ablations are
/// flat by construction when this is 1, so the artifact records it.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The provenance fields every `BENCH_*.json` artifact starts with, as a
/// JSON fragment (`  "key": value,` lines) ready to splice after the
/// opening brace.
pub fn provenance_fields() -> String {
    format!(
        "  \"git_rev\": \"{}\",\n  \"recorded_unix\": {},\n  \"host_cpus\": {},\n",
        git_rev(),
        recorded_unix(),
        host_cpus()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_is_well_formed() {
        let rev = git_rev();
        assert!(
            rev == "unknown" || (rev.len() == 40 && rev.chars().all(|c| c.is_ascii_hexdigit())),
            "{rev}"
        );
        assert!(recorded_unix() > 1_500_000_000);
        let frag = provenance_fields();
        let json = format!("{{\n{}  \"ok\": true\n}}", frag);
        assert!(json.contains("\"git_rev\": \""));
        assert!(json.contains("\"recorded_unix\": "));
        assert!(json.contains("\"host_cpus\": "));
        assert!(host_cpus() >= 1);
    }
}
