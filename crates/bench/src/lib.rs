//! Benchmark-harness crate: all content lives in `benches/` (one Criterion
//! target per reproduced paper artifact — see DESIGN.md §2 and
//! EXPERIMENTS.md). This library is intentionally empty.
