//! # condor-alarm — ClassAd-native alerting
//!
//! The paper's central claim is that one constraint language can describe
//! both sides of every policy decision. PRs 3–9 made all pool telemetry
//! *classads* — daemon self-ads, match analyses, history series-ads — and
//! this crate closes the loop: alert rules are themselves ordinary
//! classads whose `Constraint` is continuously matched against that
//! telemetry, the same bilateral evaluation the negotiator performs.
//! DeWitt/Robinson's "Turning Cluster Management into Data Management"
//! frames exactly this as *standing queries over management data*.
//!
//! ## The pieces
//!
//! * [`Rule`] — a validated alert rule parsed from a rule ad
//!   (`AlertRuleAd = true` with `Name`, `Severity`, an optional
//!   `Subjects` selector, the alert `Constraint`, and the hysteresis
//!   knobs `ForIntervals` / `ClearIntervals`).
//! * [`default_pack`] — the built-in rules every monitored pool starts
//!   with: matchmaker down, agent absent, utilization collapse,
//!   match-rate stall, lease-expiry storm, flock peer flapping.
//! * [`Monitor`] — the evaluation engine: each sweep it matches every
//!   rule against every telemetry ad, runs the per-(rule, subject)
//!   hysteresis state machine (hold-to-fire, hold-to-clear, flap
//!   suppression), and reports raise/clear [`Transition`]s. While a rule
//!   is *not* firing the monitor traces the evaluation with
//!   `classad::analyze`, so when it finally fires the transition names
//!   the conjunct that tripped — the clause that was holding the rule
//!   back the sweep before.
//! * [`view_telemetry`] — bridges `condor-view`'s history store into
//!   telemetry ads: per-source presence ads (deadman tombstone tails)
//!   and per-series history summaries (rate-of-change, integral, mean),
//!   so rules can predicate on history without touching ring buffers.
//!
//! The monitor owns no sockets, no clock, and no journal: the embedding
//! daemon (`condor-pool`'s `mm-alarm` thread) supplies telemetry each
//! interval, journals the transitions as `AlertRaised` / `AlertCleared`
//! events, and answers `AlertQuery` wire messages from
//! [`Monitor::query`]. See `docs/observability.md` §7.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod monitor;
pub mod rule;
pub mod telemetry;

pub use monitor::{Monitor, MonitorConfig, Transition};
pub use rule::{default_pack, severity_rank, Rule, ALERT_AD_TYPE, RULE_AD_MARKER};
pub use telemetry::{view_telemetry, HISTORY_SUMMARY_AD_TYPE, PRESENCE_AD_TYPE};
