//! Bridge `condor-view`'s history store into telemetry ads alert rules
//! can predicate on.
//!
//! Two ad shapes come out of [`view_telemetry`]:
//!
//! * **presence ads** (`MyType = "SourcePresence"`) — one per distinct
//!   `(pool, source)` the collector tracks. They carry the deadman
//!   signals: `AbsentTail` (consecutive newest intervals the source's
//!   series are tombstoned — a departed source grows this every sweep)
//!   and `AbsentCount` (tombstones anywhere in the window — tombstones
//!   *behind* live buckets mean the source keeps dying and returning).
//! * **history summaries** (`MyType = "HistorySummary"`) — one per
//!   series, carrying `Rate`, `Integral`, `Mean`, `Min`, `Max`, `Last`,
//!   `Points`. These let a rule ask history questions ("utilization was
//!   ≥ 0.5 in the window but is ≤ 0.1 now") as plain threshold
//!   conjuncts, without the rule ever touching ring buffers.

use classad::ClassAd;
use condor_view::Collector;

/// `MyType` of per-(pool, source) presence ads.
pub const PRESENCE_AD_TYPE: &str = "SourcePresence";

/// `MyType` of per-series history-summary ads.
pub const HISTORY_SUMMARY_AD_TYPE: &str = "HistorySummary";

/// Derive presence and history-summary ads from the collector's store,
/// summarizing the newest `window` finest-tier buckets of every series.
pub fn view_telemetry(view: &Collector, window: usize) -> Vec<ClassAd> {
    let mut out = Vec::new();
    let keys = view.series_keys();
    // Presence: fold every series of a (pool, source) pair together,
    // taking the worst (largest) absent tail — any series still being
    // fed proves the source alive, but presence ads answer "has this
    // source's telemetry gone dark", so the max is the deadman signal.
    let mut presence: Vec<(String, String, usize, usize)> = Vec::new();
    for (pool, metric, source) in &keys {
        let Some(w) = view.recent_window(pool, metric, source, window) else {
            continue;
        };
        match presence
            .iter_mut()
            .find(|(p, s, _, _)| p == pool && s == source)
        {
            Some((_, _, tail, count)) => {
                *tail = (*tail).max(w.absent_tail);
                *count = (*count).max(w.absent_count);
            }
            None => presence.push((pool.clone(), source.clone(), w.absent_tail, w.absent_count)),
        }
        let mut ad = ClassAd::new();
        ad.set_str("MyType", HISTORY_SUMMARY_AD_TYPE);
        ad.set_str("Name", &format!("{pool}/{metric}/{source}"));
        ad.set_str("Pool", pool);
        ad.set_str("Metric", metric);
        ad.set_str("Source", source);
        ad.set_int("Points", w.points as i64);
        ad.set_int("IntervalSecs", w.interval_secs as i64);
        ad.set_real("Rate", w.rate);
        ad.set_real("Integral", w.integral);
        ad.set_real("Mean", w.mean);
        ad.set_real("Min", w.min);
        ad.set_real("Max", w.max);
        ad.set_real("Last", w.last);
        ad.set_int("AbsentTail", w.absent_tail as i64);
        out.push(ad);
    }
    for (pool, source, tail, count) in presence {
        let mut ad = ClassAd::new();
        ad.set_str("MyType", PRESENCE_AD_TYPE);
        ad.set_str("Name", &format!("{pool}/{source}"));
        ad.set_str("Pool", &pool);
        ad.set_str("Source", &source);
        ad.set_int("AbsentTail", tail as i64);
        ad.set_int("AbsentCount", count as i64);
        out.push(ad);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use condor_view::{Collector, HistoryConfig};

    fn collector() -> Collector {
        Collector::new(HistoryConfig::default(), None).unwrap()
    }

    #[test]
    fn presence_and_summary_ads_cover_every_series() {
        let c = collector();
        for unix in [100u64, 110, 120] {
            c.record_gauge("local", "Utilization", "pool", unix, 0.5);
            c.record_counter("local", "MatchEvents", "pool", unix, unix as f64);
        }
        let ads = view_telemetry(&c, 6);
        let summaries: Vec<_> = ads
            .iter()
            .filter(|a| a.get_string("MyType") == Some(HISTORY_SUMMARY_AD_TYPE))
            .collect();
        assert_eq!(summaries.len(), 2);
        let util = summaries
            .iter()
            .find(|a| a.get_string("Metric") == Some("Utilization"))
            .unwrap();
        assert_eq!(util.get_string("Name"), Some("local/Utilization/pool"));
        assert_eq!(util.get_int("AbsentTail"), Some(0));
        let presence: Vec<_> = ads
            .iter()
            .filter(|a| a.get_string("MyType") == Some(PRESENCE_AD_TYPE))
            .collect();
        assert_eq!(presence.len(), 1, "one (pool, source) pair");
        assert_eq!(presence[0].get_string("Name"), Some("local/pool"));
        assert_eq!(presence[0].get_int("AbsentTail"), Some(0));
    }

    #[test]
    fn tombstoned_pool_grows_a_presence_tail() {
        let c = collector();
        for unix in [100u64, 110, 120] {
            c.record_gauge("peer:x", "Utilization", "pool", unix, 0.5);
        }
        c.record_pool_absent("peer:x", 130);
        c.record_pool_absent("peer:x", 140);
        let ads = view_telemetry(&c, 6);
        let p = ads
            .iter()
            .find(|a| {
                a.get_string("MyType") == Some(PRESENCE_AD_TYPE)
                    && a.get_string("Pool") == Some("peer:x")
            })
            .unwrap();
        assert!(p.get_int("AbsentTail").unwrap() >= 1, "deadman tail grows");
        assert!(p.get_int("AbsentCount").unwrap() >= 1);
    }
}
