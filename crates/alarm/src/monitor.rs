//! The alert monitor: per-(rule, subject) hysteresis over repeated
//! bilateral matches of rule ads against telemetry ads.
//!
//! Each sweep ([`Monitor::evaluate`]) the monitor scopes every rule to
//! its subject ads (the `Subjects` selector), evaluates the rule's
//! `Constraint` against each subject, and advances a small state machine
//! per (rule, subject) key:
//!
//! * **hold-to-fire** — the condition must hold `ForIntervals`
//!   consecutive sweeps before the key raises;
//! * **hold-to-clear** — a firing key clears only after `ClearIntervals`
//!   consecutive quiet sweeps (distinct raise/clear thresholds are the
//!   hysteresis that keeps a noisy signal from chattering);
//! * **flap suppression** — a key that still manages more than
//!   `flap_limit` transitions inside `flap_window` sweeps has further
//!   transitions swallowed (and counted) until it settles.
//!
//! While a key is *not* firing, the evaluation runs through
//! `classad::analyze::traced_constraint_holds`, so the monitor always
//! knows which conjunct is currently holding the rule back. When the key
//! finally raises, that last blocking conjunct is the one that flipped —
//! the transition's `detail` names it, and the journal event carries it
//! as rule attribution.

use crate::rule::{severity_rank, Rule, ALERT_AD_TYPE};
use classad::{
    constraint_holds, parse_expr, traced_constraint_holds, ClassAd, EvalPolicy, Expr,
    MatchConventions, RejectReason, RejectSide,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Monitor-wide tuning knobs (per-rule knobs live in the rule ads).
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Sweeps a (rule, subject) key looks back when deciding whether it
    /// is flapping.
    pub flap_window: u64,
    /// Raise/clear transitions tolerated inside `flap_window` before
    /// suppression kicks in.
    pub flap_limit: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            flap_window: 10,
            flap_limit: 4,
        }
    }
}

/// One raise or clear decision from a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// The rule that transitioned.
    pub rule: String,
    /// The rule's severity.
    pub severity: String,
    /// The subject (telemetry ad) the rule transitioned against.
    pub subject: String,
    /// `true` = raised, `false` = cleared.
    pub raised: bool,
    /// On a raise: which conjunct tripped (the clause that was holding
    /// the rule back on the previous sweep). On a clear: empty.
    pub detail: String,
}

/// Per-(rule, subject) hysteresis state.
#[derive(Debug, Clone, Default)]
struct KeyState {
    firing: bool,
    /// Consecutive sweeps the condition has held (while not firing).
    hold: u32,
    /// Consecutive quiet sweeps (while firing).
    release: u32,
    /// Sweep ordinals of recent transitions (flap detection).
    transitions: VecDeque<u64>,
    /// Unix stamp of the last transition (0 = never).
    since: u64,
    /// Last sweep this key's subject appeared in telemetry.
    seen: u64,
    /// The conjunct currently holding the rule back (traced while quiet);
    /// becomes the raise attribution when the key fires.
    blocking: String,
    /// Attribution of the last raise.
    detail: String,
    /// Transitions swallowed by flap suppression.
    suppressed: u64,
}

#[derive(Debug, Default)]
struct MonitorState {
    sweep: u64,
    last_unix: u64,
    keys: BTreeMap<(String, String), KeyState>,
    raised_total: u64,
    cleared_total: u64,
    flaps_suppressed: u64,
}

/// The evaluation engine. Owns the rules and the hysteresis state; the
/// embedding daemon owns the clock, the telemetry, and the journal.
#[derive(Debug)]
pub struct Monitor {
    rules: Vec<Rule>,
    cfg: MonitorConfig,
    policy: EvalPolicy,
    conv: MatchConventions,
    state: Mutex<MonitorState>,
}

impl Monitor {
    /// Build a monitor from rule ads (see [`Rule::parse_all`]; non-rule
    /// ads in the slice are ignored, malformed rule ads are errors).
    pub fn new(rule_ads: &[ClassAd], cfg: MonitorConfig) -> Result<Monitor, String> {
        let rules = Rule::parse_all(rule_ads)?;
        Ok(Monitor {
            rules,
            cfg,
            policy: EvalPolicy::default(),
            conv: MatchConventions::default(),
            state: Mutex::new(MonitorState::default()),
        })
    }

    /// Build a monitor from the [`crate::default_pack`] plus `extra`
    /// rule ads.
    pub fn with_default_pack(extra: &[ClassAd], cfg: MonitorConfig) -> Result<Monitor, String> {
        let mut ads = crate::default_pack();
        ads.extend(extra.iter().cloned());
        Monitor::new(&ads, cfg)
    }

    /// How many rules the monitor evaluates.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Keys currently in the firing state.
    pub fn active(&self) -> u64 {
        let state = self.state.lock();
        state.keys.values().filter(|k| k.firing).count() as u64
    }

    /// Raise transitions over the monitor's lifetime.
    pub fn raised_total(&self) -> u64 {
        self.state.lock().raised_total
    }

    /// Clear transitions over the monitor's lifetime.
    pub fn cleared_total(&self) -> u64 {
        self.state.lock().cleared_total
    }

    /// Transitions swallowed by flap suppression.
    pub fn flaps_suppressed(&self) -> u64 {
        self.state.lock().flaps_suppressed
    }

    /// Sweeps completed.
    pub fn sweeps(&self) -> u64 {
        self.state.lock().sweep
    }

    /// Run one evaluation sweep over `telemetry`, stamped `unix`, and
    /// return the raise/clear transitions this sweep produced (already
    /// hysteresis- and flap-filtered — every returned transition is a
    /// real state change worth journaling).
    pub fn evaluate(&self, telemetry: &[ClassAd], unix: u64) -> Vec<Transition> {
        let mut state = self.state.lock();
        state.sweep += 1;
        state.last_unix = unix;
        let sweep = state.sweep;
        let mut out = Vec::new();
        for rule in &self.rules {
            for ad in telemetry {
                if let Some(sel) = &rule.selector_ad {
                    if !constraint_holds(sel, ad, &self.policy, &self.conv) {
                        continue;
                    }
                }
                let subject = subject_name(ad);
                let trace = traced_constraint_holds(
                    &rule.condition_ad,
                    ad,
                    &self.policy,
                    &self.conv,
                    RejectSide::Request,
                );
                let key = (rule.name.clone(), subject.clone());
                let ks = state.keys.entry(key).or_default();
                ks.seen = sweep;
                if trace.verdict {
                    ks.release = 0;
                    ks.hold += 1;
                    if !ks.firing && ks.hold >= rule.for_intervals {
                        let detail = if ks.blocking.is_empty() {
                            clip(&rule.constraint)
                        } else {
                            ks.blocking.clone()
                        };
                        if apply_transition(ks, sweep, unix, &self.cfg) {
                            ks.firing = true;
                            ks.detail = detail.clone();
                            state.raised_total += 1;
                            out.push(Transition {
                                rule: rule.name.clone(),
                                severity: rule.severity.clone(),
                                subject,
                                raised: true,
                                detail,
                            });
                        } else {
                            state.flaps_suppressed += 1;
                        }
                    }
                } else {
                    ks.hold = 0;
                    ks.blocking = blocking_clause(trace.reason.as_ref(), &rule.constraint);
                    if ks.firing {
                        ks.release += 1;
                        if ks.release >= rule.clear_intervals {
                            if apply_transition(ks, sweep, unix, &self.cfg) {
                                ks.firing = false;
                                state.cleared_total += 1;
                                out.push(Transition {
                                    rule: rule.name.clone(),
                                    severity: rule.severity.clone(),
                                    subject,
                                    raised: false,
                                    detail: String::new(),
                                });
                            } else {
                                state.flaps_suppressed += 1;
                            }
                        }
                    }
                }
            }
        }
        // A firing key whose subject vanished from telemetry counts the
        // sweep as quiet: when the subject itself is gone (an RA that
        // departed *and* aged out of history) the alert drains through
        // the normal clear path instead of firing forever. Quiet keys
        // whose subject vanished are garbage-collected outright.
        let MonitorState {
            keys,
            cleared_total,
            ..
        } = &mut *state;
        for ((rule_name, subject), ks) in keys.iter_mut() {
            if ks.seen == sweep || !ks.firing {
                continue;
            }
            let Some(rule) = self.rules.iter().find(|r| &r.name == rule_name) else {
                continue;
            };
            ks.hold = 0;
            ks.release += 1;
            if ks.release >= rule.clear_intervals && apply_transition(ks, sweep, unix, &self.cfg) {
                ks.firing = false;
                *cleared_total += 1;
                out.push(Transition {
                    rule: rule.name.clone(),
                    severity: rule.severity.clone(),
                    subject: subject.clone(),
                    raised: false,
                    detail: String::new(),
                });
            }
        }
        keys.retain(|_, ks| ks.firing || ks.seen == sweep);
        out
    }

    /// Render the full alert state as classads — one `AlertState` ad per
    /// tracked (rule, subject) key, firing or quiet.
    pub fn state_ads(&self) -> Vec<ClassAd> {
        let state = self.state.lock();
        let mut out = Vec::new();
        for ((rule_name, subject), ks) in &state.keys {
            let Some(rule) = self.rules.iter().find(|r| &r.name == rule_name) else {
                continue;
            };
            let mut ad = ClassAd::new();
            ad.set_str("MyType", ALERT_AD_TYPE);
            ad.set_str("Name", &format!("{rule_name}@{subject}"));
            ad.set_str("Rule", rule_name);
            ad.set_str("Severity", &rule.severity);
            ad.set_str("Subject", subject);
            ad.set_str("State", if ks.firing { "firing" } else { "ok" });
            ad.set_int("Since", ks.since as i64);
            ad.set_int("Hold", ks.hold as i64);
            ad.set_int("Release", ks.release as i64);
            ad.set_int("ForIntervals", rule.for_intervals as i64);
            ad.set_int("ClearIntervals", rule.clear_intervals as i64);
            ad.set_int("Transitions", ks.transitions.len() as i64);
            ad.set_int("Suppressed", ks.suppressed as i64);
            ad.set_str("Detail", if ks.firing { &ks.detail } else { &ks.blocking });
            ad.set_str("RuleConstraint", &rule.constraint);
            // Alert-state ads are leaves: they match nothing themselves.
            ad.set("Constraint", Expr::bool(false));
            ad.set_int("Rank", 0);
            out.push(ad);
        }
        // Severity-sorted, critical first; firing before quiet.
        out.sort_by_key(|ad| {
            let sev = severity_rank(ad.get_string("Severity").unwrap_or(""));
            let firing = ad.get_string("State") == Some("firing");
            (
                std::cmp::Reverse(u8::from(firing)),
                std::cmp::Reverse(sev),
                ad.get_string("Name").unwrap_or("").to_string(),
            )
        });
        out
    }

    /// Answer an `AlertQuery`: an ordinary classad constraint over the
    /// alert-state ads (`other.State == "firing"`, `other.Severity ==
    /// "critical"`, ...). `"true"` selects everything. Malformed
    /// constraints are errors, not panics — the daemon turns them into
    /// structured wire errors.
    pub fn query(&self, constraint: &str) -> Result<Vec<ClassAd>, String> {
        let expr = parse_expr(constraint).map_err(|e| format!("bad alert constraint: {e}"))?;
        let mut query_ad = ClassAd::new();
        query_ad.set("Name", Expr::str("alert-query"));
        query_ad.set("Constraint", expr);
        let policy = EvalPolicy::default();
        let conv = MatchConventions::default();
        Ok(self
            .state_ads()
            .into_iter()
            .filter(|ad| constraint_holds(&query_ad, ad, &policy, &conv))
            .collect())
    }

    /// A compact one-line summary of firing alerts, severity-sorted:
    /// `critical:MatchmakerDown@peer:1/pool warning:AgentAbsent@ra-1` —
    /// what the matchmaker self-ad publishes as `ActiveAlertSummary` and
    /// `pool_top` renders. Empty when nothing is firing.
    pub fn active_summary(&self) -> String {
        let state = self.state.lock();
        let mut firing: Vec<(&(String, String), &KeyState)> =
            state.keys.iter().filter(|(_, ks)| ks.firing).collect();
        let sev_of = |rule_name: &str| {
            self.rules
                .iter()
                .find(|r| r.name == rule_name)
                .map(|r| r.severity.clone())
                .unwrap_or_default()
        };
        firing.sort_by_key(|((rule, subject), _)| {
            (
                std::cmp::Reverse(severity_rank(&sev_of(rule))),
                rule.clone(),
                subject.clone(),
            )
        });
        firing
            .iter()
            .map(|((rule, subject), _)| format!("{}:{rule}@{subject}", sev_of(rule)))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Check the flap window and, if the transition is allowed, record it.
/// Returns whether the transition may proceed.
fn apply_transition(ks: &mut KeyState, sweep: u64, unix: u64, cfg: &MonitorConfig) -> bool {
    while let Some(&front) = ks.transitions.front() {
        if sweep.saturating_sub(front) > cfg.flap_window {
            ks.transitions.pop_front();
        } else {
            break;
        }
    }
    if ks.transitions.len() >= cfg.flap_limit {
        ks.suppressed += 1;
        return false;
    }
    ks.transitions.push_back(sweep);
    ks.since = unix;
    true
}

/// Extract the clause text from the traced rejection that was holding a
/// rule back — the raise attribution.
fn blocking_clause(reason: Option<&RejectReason>, fallback: &str) -> String {
    match reason {
        Some(RejectReason::RequirementsFalse { clause, .. }) => clause.clone(),
        Some(RejectReason::UndefinedAttr { attr, .. }) => format!("undefined {attr}"),
        Some(RejectReason::EvalError { .. }) => "eval error".to_string(),
        _ => clip(fallback),
    }
}

/// What a rule key calls one telemetry ad: its `Name`, or a
/// `pool/source` pair for ads without one.
fn subject_name(ad: &ClassAd) -> String {
    if let Some(name) = ad.get_string("Name") {
        return name.to_string();
    }
    match (ad.get_string("Pool"), ad.get_string("Source")) {
        (Some(p), Some(s)) => format!("{p}/{s}"),
        _ => "?".to_string(),
    }
}

/// Clip attribution text to the same budget `classad::analyze` uses for
/// rejection reasons (96 chars), so journal lines stay bounded.
fn clip(s: &str) -> String {
    const MAX: usize = 96;
    if s.len() <= MAX {
        return s.to_string();
    }
    let mut end = MAX;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::{parse_classad, parse_classads};

    fn presence(pool: &str, source: &str, tail: i64, count: i64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.set_str("MyType", "SourcePresence");
        ad.set_str("Name", &format!("{pool}/{source}"));
        ad.set_str("Pool", pool);
        ad.set_str("Source", source);
        ad.set_int("AbsentTail", tail);
        ad.set_int("AbsentCount", count);
        ad
    }

    fn deadman_rules() -> Vec<ClassAd> {
        parse_classads(
            r#"[ AlertRuleAd = true; Name = "AgentAbsent"; Severity = "warning";
                 ForIntervals = 2; ClearIntervals = 2;
                 Subjects = other.MyType == "SourcePresence" && other.Pool == "local";
                 Constraint = other.AbsentTail >= 1 ]"#,
        )
        .unwrap()
    }

    #[test]
    fn hold_to_fire_requires_consecutive_sweeps() {
        let m = Monitor::new(&deadman_rules(), MonitorConfig::default()).unwrap();
        // One absent sweep: held, not fired.
        let t = m.evaluate(&[presence("local", "ra-1", 1, 1)], 100);
        assert!(t.is_empty());
        assert_eq!(m.active(), 0);
        // A recovery resets the hold counter.
        let t = m.evaluate(&[presence("local", "ra-1", 0, 1)], 110);
        assert!(t.is_empty());
        let t = m.evaluate(&[presence("local", "ra-1", 1, 2)], 120);
        assert!(t.is_empty(), "hold restarted after the quiet sweep");
        // Two consecutive absent sweeps: raise, attributed to the
        // threshold conjunct that was blocking while quiet.
        let t = m.evaluate(&[presence("local", "ra-1", 2, 3)], 130);
        assert_eq!(t.len(), 1);
        assert!(t[0].raised);
        assert_eq!(t[0].rule, "AgentAbsent");
        assert_eq!(t[0].subject, "local/ra-1");
        assert!(
            t[0].detail.contains("AbsentTail"),
            "attribution names the tripping conjunct: {}",
            t[0].detail
        );
        assert_eq!(m.active(), 1);
        assert_eq!(m.raised_total(), 1);
    }

    #[test]
    fn hold_to_clear_and_state_ads() {
        let m = Monitor::new(&deadman_rules(), MonitorConfig::default()).unwrap();
        for unix in [100, 110] {
            m.evaluate(&[presence("local", "ra-1", 1, 1)], unix);
        }
        assert_eq!(m.active(), 1);
        // One quiet sweep is not enough to clear (ClearIntervals = 2).
        let t = m.evaluate(&[presence("local", "ra-1", 0, 1)], 120);
        assert!(t.is_empty());
        assert_eq!(m.active(), 1);
        let t = m.evaluate(&[presence("local", "ra-1", 0, 1)], 130);
        assert_eq!(t.len(), 1);
        assert!(!t[0].raised);
        assert_eq!(m.active(), 0);
        assert_eq!(m.cleared_total(), 1);
        let ads = m.state_ads();
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].get_string("State"), Some("ok"));
        assert_eq!(ads[0].get_string("Rule"), Some("AgentAbsent"));
    }

    #[test]
    fn flap_suppression_swallows_chattering_transitions() {
        let m = Monitor::new(
            &deadman_rules(),
            MonitorConfig {
                flap_window: 100,
                flap_limit: 2,
            },
        )
        .unwrap();
        let mut transitions = 0;
        // Alternate dead/alive fast enough that every sweep pair would
        // transition without suppression.
        for i in 0..20u64 {
            let tail = if (i / 2) % 2 == 0 { 1 } else { 0 };
            transitions += m
                .evaluate(&[presence("local", "ra-1", tail, 1)], 100 + i * 10)
                .len();
        }
        assert!(
            transitions <= 2,
            "flap limit must bound transitions, saw {transitions}"
        );
        assert!(m.flaps_suppressed() > 0);
    }

    #[test]
    fn vanished_subject_drains_through_the_clear_path() {
        let m = Monitor::new(&deadman_rules(), MonitorConfig::default()).unwrap();
        for unix in [100, 110] {
            m.evaluate(&[presence("local", "ra-1", 1, 1)], unix);
        }
        assert_eq!(m.active(), 1);
        // The subject ad disappears entirely (history aged out).
        m.evaluate(&[], 120);
        let t = m.evaluate(&[], 130);
        assert_eq!(t.len(), 1);
        assert!(!t[0].raised);
        assert_eq!(m.active(), 0);
        // And the quiet key is garbage-collected.
        assert!(m.state_ads().is_empty());
    }

    #[test]
    fn query_filters_state_ads_and_rejects_bad_constraints() {
        let m = Monitor::with_default_pack(&[], MonitorConfig::default()).unwrap();
        // A dead flock peer fires the critical MatchmakerDown rule.
        let t = m.evaluate(&[presence("peer:9", "pool", 1, 1)], 100);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].severity, "critical");
        let firing = m.query(r#"other.State == "firing""#).unwrap();
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].get_string("Rule"), Some("MatchmakerDown"));
        let crit = m.query(r#"other.Severity == "critical""#).unwrap();
        assert_eq!(crit.len(), 1);
        assert!(!m.query("true").unwrap().is_empty());
        assert!(m.query("((").is_err());
    }

    #[test]
    fn default_pack_stall_rule_fires_on_matchmaker_self_ad() {
        let m = Monitor::with_default_pack(&[], MonitorConfig::default()).unwrap();
        let stalled = parse_classad(
            r#"[ MyType = "MatchmakerStats"; Name = "mm#stats";
                 LastCycleUnmatched = 4; LastCycleMatches = 0 ]"#,
        )
        .unwrap();
        // MatchRateStall holds ForIntervals = 3.
        assert!(m.evaluate(std::slice::from_ref(&stalled), 100).is_empty());
        assert!(m.evaluate(std::slice::from_ref(&stalled), 110).is_empty());
        let t = m.evaluate(&[stalled], 120);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].rule, "MatchRateStall");
        assert!(t[0].detail.contains("LastCycle"), "{}", t[0].detail);
        let summary = m.active_summary();
        assert!(
            summary.contains("warning:MatchRateStall@mm#stats"),
            "{summary}"
        );
    }
}
