//! Alert rules as classads: parsing, validation, and the default pack.
//!
//! A rule ad is recognized by `AlertRuleAd = true` and carries:
//!
//! | attribute        | required | meaning                                        |
//! |------------------|----------|------------------------------------------------|
//! | `Name`           | yes      | stable rule identifier (journal key)           |
//! | `Severity`       | yes      | `"critical"`, `"warning"`, or `"info"`         |
//! | `Constraint`     | yes      | the alert condition, over `other.*` telemetry  |
//! | `Subjects`       | no       | selector: which telemetry ads the rule watches |
//! | `ForIntervals`   | no       | consecutive holding sweeps before a raise (1)  |
//! | `ClearIntervals` | no       | consecutive quiet sweeps before a clear (1)    |
//!
//! `Subjects` scopes the rule (e.g. `other.MyType == "SourcePresence"`),
//! so the `Constraint` holds only the *condition* — which keeps conjunct
//! attribution crisp: the tripping conjunct is a threshold, never a type
//! selector. A rule without `Subjects` watches every telemetry ad.

use classad::{parse_classads, parse_expr, ClassAd, Expr};

/// Marker attribute identifying a rule ad.
pub const RULE_AD_MARKER: &str = "AlertRuleAd";

/// `MyType` of the alert-state ads [`crate::Monitor`] serves.
pub const ALERT_AD_TYPE: &str = "AlertState";

/// Rank severities for sorting: higher is worse. Unknown severities rank
/// below `"info"` so typos sink rather than masquerade as critical.
pub fn severity_rank(severity: &str) -> u8 {
    match severity {
        "critical" => 3,
        "warning" => 2,
        "info" => 1,
        _ => 0,
    }
}

/// A validated alert rule, ready for evaluation.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable rule identifier (`Name`).
    pub name: String,
    /// `"critical"`, `"warning"`, or `"info"`.
    pub severity: String,
    /// Source text of the alert condition.
    pub constraint: String,
    /// Consecutive holding sweeps before a raise.
    pub for_intervals: u32,
    /// Consecutive quiet sweeps before a clear.
    pub clear_intervals: u32,
    /// The rule ad with `Constraint` = the `Subjects` selector (absent
    /// when the rule has no selector — every ad is then in scope).
    pub(crate) selector_ad: Option<ClassAd>,
    /// The rule ad with `Constraint` = the alert condition.
    pub(crate) condition_ad: ClassAd,
}

impl Rule {
    /// Parse and validate one rule ad. Errors name the offending rule
    /// where possible, so a bad rule in a pack is diagnosable.
    pub fn from_ad(ad: &ClassAd) -> Result<Rule, String> {
        if !is_rule_ad(ad) {
            return Err("not a rule ad: AlertRuleAd != true".into());
        }
        let name = ad
            .get_string("Name")
            .ok_or("rule ad without a Name")?
            .to_string();
        let severity = ad
            .get_string("Severity")
            .ok_or_else(|| format!("rule {name}: missing Severity"))?
            .to_string();
        if severity_rank(&severity) == 0 {
            return Err(format!(
                "rule {name}: unknown Severity {severity:?} (critical/warning/info)"
            ));
        }
        let constraint_expr = ad
            .get("Constraint")
            .ok_or_else(|| format!("rule {name}: missing Constraint"))?;
        let constraint = constraint_expr.to_string();
        // Re-parse the rendered text: guarantees the stored source round
        // trips, so journal attribution text always re-parses.
        parse_expr(&constraint).map_err(|e| format!("rule {name}: bad Constraint: {e}"))?;
        let for_intervals = ad.get_int("ForIntervals").unwrap_or(1).max(1) as u32;
        let clear_intervals = ad.get_int("ClearIntervals").unwrap_or(1).max(1) as u32;
        let mut condition_ad = ad.clone();
        condition_ad.set("Constraint", (**constraint_expr).clone());
        let selector_ad = ad.get("Subjects").map(|sel| {
            let mut s = ad.clone();
            s.set("Constraint", (**sel).clone());
            s
        });
        Ok(Rule {
            name,
            severity,
            constraint,
            for_intervals,
            clear_intervals,
            selector_ad,
            condition_ad,
        })
    }

    /// Parse every `AlertRuleAd = true` ad in `ads`; non-rule ads are
    /// skipped, malformed rule ads are errors.
    pub fn parse_all(ads: &[ClassAd]) -> Result<Vec<Rule>, String> {
        let mut rules = Vec::new();
        for ad in ads {
            if is_rule_ad(ad) {
                rules.push(Rule::from_ad(ad)?);
            }
        }
        Ok(rules)
    }
}

/// Whether `ad` carries the `AlertRuleAd = true` marker.
fn is_rule_ad(ad: &ClassAd) -> bool {
    ad.get(RULE_AD_MARKER)
        .map(|e| matches!(**e, Expr::Lit(classad::Literal::Bool(true))))
        .unwrap_or(false)
}

/// The built-in default rule pack. Every rule here predicates on ads the
/// pool already publishes — matchmaker self-ads (`MyType ==
/// "MatchmakerStats"`), and the presence / history-summary ads
/// [`crate::view_telemetry`] derives from the view collector:
///
/// * **MatchmakerDown** (critical) — a federated peer pool's rollups grew
///   an absent-tombstone tail: the peer matchmaker stopped answering.
/// * **AgentAbsent** (warning) — a local daemon's series went absent: its
///   ad expired or was withdrawn and the deadman tail is growing.
/// * **UtilizationCollapse** (warning, 2 intervals) — the pool was at
///   least half-claimed within the window but is now nearly empty.
/// * **MatchRateStall** (warning, 3 intervals) — cycles keep leaving
///   requests unmatched while producing no matches at all.
/// * **LeaseExpiryStorm** (warning) — lease expiries in the recent window
///   exceed a storm threshold: agents are failing to renew en masse.
/// * **FlockPeerFlapping** (warning) — a peer pool's rollups carry absent
///   tombstones *behind* live buckets: the peer keeps dying and coming
///   back.
pub fn default_pack() -> Vec<ClassAd> {
    parse_classads(
        r#"
        [ AlertRuleAd = true; Name = "MatchmakerDown"; Severity = "critical";
          Subjects = other.MyType == "SourcePresence" && other.Pool != "local"
                     && other.Source == "pool";
          Constraint = other.AbsentTail >= 1 ]

        [ AlertRuleAd = true; Name = "AgentAbsent"; Severity = "warning";
          Subjects = other.MyType == "SourcePresence" && other.Pool == "local"
                     && other.Source != "pool" && other.Source != "journal";
          Constraint = other.AbsentTail >= 1 ]

        [ AlertRuleAd = true; Name = "UtilizationCollapse"; Severity = "warning";
          ForIntervals = 2;
          Subjects = other.MyType == "HistorySummary" && other.Pool == "local"
                     && other.Metric == "Utilization" && other.Source == "pool";
          Constraint = other.Points >= 2 && other.Max >= 0.5 && other.Last <= 0.1 ]

        [ AlertRuleAd = true; Name = "MatchRateStall"; Severity = "warning";
          ForIntervals = 3;
          Subjects = other.MyType == "MatchmakerStats";
          Constraint = other.LastCycleUnmatched > 0 && other.LastCycleMatches == 0 ]

        [ AlertRuleAd = true; Name = "LeaseExpiryStorm"; Severity = "warning";
          Subjects = other.MyType == "HistorySummary" && other.Pool == "local"
                     && other.Metric == "LeaseExpiries" && other.Source == "pool";
          Constraint = other.Integral >= 10 ]

        [ AlertRuleAd = true; Name = "FlockPeerFlapping"; Severity = "warning";
          Subjects = other.MyType == "SourcePresence" && other.Pool != "local"
                     && other.Source == "pool";
          Constraint = other.AbsentCount >= 2 && other.AbsentTail == 0 ]
        "#,
    )
    .expect("default rule pack parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    #[test]
    fn default_pack_parses_and_validates() {
        let ads = default_pack();
        assert_eq!(ads.len(), 6);
        let rules = Rule::parse_all(&ads).unwrap();
        assert_eq!(rules.len(), 6);
        let down = rules.iter().find(|r| r.name == "MatchmakerDown").unwrap();
        assert_eq!(down.severity, "critical");
        assert_eq!(down.for_intervals, 1);
        assert!(down.selector_ad.is_some());
        let stall = rules.iter().find(|r| r.name == "MatchRateStall").unwrap();
        assert_eq!(stall.for_intervals, 3);
    }

    #[test]
    fn rule_validation_rejects_malformed_ads() {
        // Missing marker.
        let ad = parse_classad(r#"[ Name = "x"; Severity = "info"; Constraint = true ]"#).unwrap();
        assert!(Rule::from_ad(&ad).is_err());
        // Missing severity.
        let ad = parse_classad(r#"[ AlertRuleAd = true; Name = "x"; Constraint = true ]"#).unwrap();
        assert!(Rule::from_ad(&ad).unwrap_err().contains("Severity"));
        // Unknown severity.
        let ad = parse_classad(
            r#"[ AlertRuleAd = true; Name = "x"; Severity = "fatal"; Constraint = true ]"#,
        )
        .unwrap();
        assert!(Rule::from_ad(&ad).unwrap_err().contains("fatal"));
        // Missing constraint.
        let ad = parse_classad(r#"[ AlertRuleAd = true; Name = "x"; Severity = "info" ]"#).unwrap();
        assert!(Rule::from_ad(&ad).unwrap_err().contains("Constraint"));
    }

    #[test]
    fn parse_all_skips_non_rule_ads() {
        let mut ads = default_pack();
        ads.push(parse_classad(r#"[ Name = "not-a-rule"; Mips = 10 ]"#).unwrap());
        assert_eq!(Rule::parse_all(&ads).unwrap().len(), 6);
    }

    #[test]
    fn severity_ranks_sort_critical_first() {
        let mut sevs = ["info", "critical", "bogus", "warning"];
        sevs.sort_by_key(|s| std::cmp::Reverse(severity_rank(s)));
        assert_eq!(sevs, ["critical", "warning", "info", "bogus"]);
    }
}
