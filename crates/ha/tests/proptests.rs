//! Property test for the HA acceptance criterion: a live [`AdStore`],
//! checkpointed through the full pipeline — `snapshot_state` → text
//! encode → text decode → `restore_state` — is equivalent to the store
//! it checkpointed: same ads (name, kind, body, contact, ticket, lease,
//! sequence number), same sequence counter, same shard layout, and the
//! same renewal semantics afterwards.

use classad::ClassAd;
use condor_ha::PoolSnapshot;
use matchmaker::prelude::*;
use matchmaker::protocol::TraceContext;
use matchmaker::StoreSnapshot;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct AdSpec {
    provider: bool,
    mips: i64,
    lease: u64,
    ticket: Option<u128>,
    traced: bool,
}

fn arb_ad() -> impl Strategy<Value = AdSpec> {
    (
        any::<bool>(),
        10i64..500,
        1u64..1_000_000,
        prop_oneof![
            2 => Just(None),
            // The shim's Arbitrary stops at u64; widen to exercise the
            // full 128-bit ticket encoding anyway.
            1 => any::<u64>().prop_map(|v| Some(((v as u128) << 64) | (!v as u128)))
        ],
        any::<bool>(),
    )
        .prop_map(|(provider, mips, lease, ticket, traced)| AdSpec {
            provider,
            mips,
            lease,
            ticket,
            traced,
        })
}

fn build_ad(i: usize, spec: &AdSpec) -> ClassAd {
    if spec.provider {
        classad::parse_classad(&format!(
            r#"[ Name = "machine-{i}"; Type = "Machine"; Mips = {};
                 Constraint = other.Type == "Job"; Rank = 0 ]"#,
            spec.mips
        ))
        .unwrap()
    } else {
        classad::parse_classad(&format!(
            r#"[ Name = "job-{i}"; Type = "Job"; Owner = "user";
                 Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
        ))
        .unwrap()
    }
}

fn build_store(specs: &[AdSpec]) -> AdStore {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for (i, spec) in specs.iter().enumerate() {
        store
            .advertise_traced(
                Advertisement {
                    kind: if spec.provider {
                        EntityKind::Provider
                    } else {
                        EntityKind::Customer
                    },
                    ad: build_ad(i, spec),
                    contact: format!("127.0.0.1:{}", 1000 + i),
                    ticket: spec.ticket.map(Ticket::from_raw),
                    expires_at: spec.lease,
                },
                0,
                &proto,
                spec.traced.then(TraceContext::mint),
            )
            .unwrap();
    }
    store
}

fn assert_equivalent(before: &StoreSnapshot, after: &StoreSnapshot) {
    assert_eq!(before.shards, after.shards);
    assert_eq!(before.pinned, after.pinned);
    assert_eq!(before.next_seq, after.next_seq);
    assert_eq!(before.ads.len(), after.ads.len());
    let mut lhs: Vec<_> = before.ads.iter().collect();
    let mut rhs: Vec<_> = after.ads.iter().collect();
    lhs.sort_by_key(|a| a.seq);
    rhs.sort_by_key(|a| a.seq);
    for (a, b) in lhs.iter().zip(&rhs) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.contact, b.contact);
        assert_eq!(a.ticket, b.ticket);
        assert_eq!(a.expires_at, b.expires_at);
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.trace, b.trace);
        assert_eq!(
            classad::json::to_json(&a.ad),
            classad::json::to_json(&b.ad),
            "ad bodies diverged for {}",
            a.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checkpoint_pipeline_is_lossless(specs in proptest::collection::vec(arb_ad(), 0..48)) {
        let store = build_store(&specs);
        let before = store.snapshot_state();
        let encoded = PoolSnapshot { store: before.clone(), matches: vec![] }.encode();
        let decoded = PoolSnapshot::decode(&encoded).unwrap();
        let restored = AdStore::restore_state(&decoded.store);
        assert_equivalent(&before, &restored.snapshot_state());
    }

    #[test]
    fn restored_stores_negotiate_like_the_originals(specs in proptest::collection::vec(arb_ad(), 0..24)) {
        let store = build_store(&specs);
        let encoded = PoolSnapshot { store: store.snapshot_state(), matches: vec![] }.encode();
        let restored = AdStore::restore_state(&PoolSnapshot::decode(&encoded).unwrap().store);
        let mut neg_a = Negotiator::default();
        let mut neg_b = Negotiator::default();
        let out_a = neg_a.negotiate(&store, 0);
        let out_b = neg_b.negotiate(&restored, 0);
        prop_assert_eq!(out_a.stats.matches, out_b.stats.matches);
        let names_a: Vec<_> = out_a.matches.iter().map(|m| (&m.request_name, &m.offer_name)).collect();
        let names_b: Vec<_> = out_b.matches.iter().map(|m| (&m.request_name, &m.offer_name)).collect();
        prop_assert_eq!(names_a, names_b, "identical pairings after failover");
    }
}
