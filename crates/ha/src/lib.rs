//! # condor-ha — high availability for the matchmaker
//!
//! The paper (Raman, Livny & Solomon, HPDC 1998) makes the matchmaker
//! deliberately *stateless with respect to matches*: its only state is a
//! soft-state store of leased advertisements, and claiming runs directly
//! between the matched parties. That weak-consistency stance is exactly
//! what makes the matchmaker cheap to replicate — a standby that takes
//! over with an empty store converges as agents re-advertise, and every
//! established claim survives untouched because the matchmaker was never
//! in that loop.
//!
//! This crate turns that observation into a subsystem (the analogue of
//! Condor's HAD, the high-availability daemon):
//!
//! * [`election`] — a pure, lease-based leader-election state machine.
//!   Matchmakers exchange `Message::ElectionBid` / `Message::LeaderLease`
//!   frames over the existing wire protocol; epochs are monotone, higher
//!   epochs always win, and standbys contend only once the observed lease
//!   lapses. Pre-HA peers reject the new tags with a structured error,
//!   which bidders treat as a concession — mixed pools elect correctly.
//! * [`snapshot`] — a self-contained text codec for a matchmaker's full
//!   soft state ([`matchmaker::StoreSnapshot`] plus any in-flight
//!   [`matchmaker::MatchRecord`]s). The encoding is line-oriented with
//!   percent-escaped fields so the whole snapshot travels as one opaque
//!   string inside a journal `Checkpoint` record.
//! * [`recovery`] — last-checkpoint-plus-tail restart. A newly
//!   inaugurated leader replays the journal, decodes the latest
//!   checkpoint, and withdraws any ads the dead leader matched *after*
//!   the checkpoint (they are in the tail as `MatchMade` events), so the
//!   new leader never double-allocates a machine it can see was spoken
//!   for. Everything the journal cannot reconstruct heals by soft state:
//!   agents re-advertise within a heartbeat.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod election;
pub mod recovery;
pub mod snapshot;

pub use election::{Election, ElectionConfig, LeaseVerdict, Role, Tick};
pub use recovery::{recover_pool, Recovered};
pub use snapshot::{PoolSnapshot, SnapshotError};
