//! The checkpoint codec: a matchmaker's full soft state as one string.
//!
//! A checkpoint must travel as the `state` field of a journal
//! `Checkpoint` record — a single JSON string on a single JSONL line —
//! so the codec here is deliberately plain: one record per line, fields
//! separated by single spaces, every variable-length field
//! percent-escaped so it can never contain a space or a newline. No
//! serde, no nested JSON escaping problems; classads themselves ride as
//! their canonical JSON form (one escaped field each).
//!
//! Ranks are encoded as the hexadecimal IEEE-754 bit pattern, so the
//! decode returns *bit-identical* floats (the deterministic rank
//! tie-break keys survive a failover).

use classad::json::{from_json, to_json};
use matchmaker::negotiate::MatchRecord;
use matchmaker::protocol::{EntityKind, TraceContext};
use matchmaker::ticket::Ticket;
use matchmaker::{StoreSnapshot, StoredAd};
use std::fmt;
use std::sync::Arc;

/// Everything a standby needs to stand in for a dead leader: the ad
/// store's full state plus any matches made but possibly not yet
/// notified when the checkpoint was cut.
#[derive(Debug, Clone)]
pub struct PoolSnapshot {
    /// The ad store: shard layout, sequence counter, every stored ad.
    pub store: StoreSnapshot,
    /// Matches in flight at checkpoint time (made this cycle, delivery
    /// not yet confirmed). Soft state: a lost notification only costs
    /// the parties one re-advertise.
    pub matches: Vec<MatchRecord>,
}

/// Why a checkpoint string failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The header line is missing or malformed.
    Header(String),
    /// A record line is malformed.
    Line {
        /// 1-based line number within the snapshot string.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Header(reason) => write!(f, "bad snapshot header: {reason}"),
            SnapshotError::Line { line, reason } => {
                write!(f, "bad snapshot line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Percent-escape so the result contains no spaces, newlines, or other
/// control bytes: `%`, space, and every byte below `0x21` become `%XX`.
/// Multi-byte UTF-8 passes through untouched (all its bytes are above
/// `0x7f`).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c == '%' || c <= ' ' {
            let b = c as u32;
            out.push('%');
            out.push(char::from_digit(b >> 4, 16).unwrap());
            out.push(char::from_digit(b & 0xf, 16).unwrap());
        } else {
            out.push(c);
        }
    }
    out
}

/// Reverse [`esc`]. `None` on truncated or non-hex escapes or invalid
/// UTF-8 (possible only for corrupt input).
fn unesc(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = (*bytes.get(i + 1)? as char).to_digit(16)?;
            let lo = (*bytes.get(i + 2)? as char).to_digit(16)?;
            out.push(((hi << 4) | lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn encode_ticket(t: &Option<Ticket>) -> String {
    match t {
        None => "-".into(),
        Some(t) => format!("={:x}", t.raw()),
    }
}

fn decode_ticket(tok: &str) -> Result<Option<Ticket>, String> {
    match tok.strip_prefix('=') {
        None if tok == "-" => Ok(None),
        None => Err(format!("bad ticket token {tok:?}")),
        Some(hex) => u128::from_str_radix(hex, 16)
            .map(|raw| Some(Ticket::from_raw(raw)))
            .map_err(|e| format!("bad ticket {tok:?}: {e}")),
    }
}

fn encode_trace(t: &Option<TraceContext>) -> String {
    match t {
        None => "-".into(),
        Some(ctx) => format!("={:x}:{:x}", ctx.trace_id, ctx.parent_span_id),
    }
}

fn decode_trace(tok: &str) -> Result<Option<TraceContext>, String> {
    match tok.strip_prefix('=') {
        None if tok == "-" => Ok(None),
        None => Err(format!("bad trace token {tok:?}")),
        Some(body) => {
            let (tid, psid) = body
                .split_once(':')
                .ok_or_else(|| format!("bad trace {tok:?}"))?;
            let trace_id =
                u64::from_str_radix(tid, 16).map_err(|e| format!("bad trace id: {e}"))?;
            let parent_span_id =
                u64::from_str_radix(psid, 16).map_err(|e| format!("bad span id: {e}"))?;
            Ok(Some(TraceContext {
                trace_id,
                parent_span_id,
            }))
        }
    }
}

/// `-` for `None`, `=<escaped>` for `Some` — an escaped literal `"-"`
/// can never be confused with the absent marker.
fn encode_opt_str(s: &Option<String>) -> String {
    match s {
        None => "-".into(),
        Some(v) => format!("={}", esc(v)),
    }
}

fn decode_opt_str(tok: &str) -> Result<Option<String>, String> {
    match tok.strip_prefix('=') {
        None if tok == "-" => Ok(None),
        None => Err(format!("bad optional-string token {tok:?}")),
        Some(body) => unesc(body)
            .map(Some)
            .ok_or_else(|| format!("bad escape in {tok:?}")),
    }
}

fn decode_str(tok: &str) -> Result<String, String> {
    unesc(tok).ok_or_else(|| format!("bad escape in {tok:?}"))
}

fn decode_u64(tok: &str) -> Result<u64, String> {
    tok.parse().map_err(|e| format!("bad integer {tok:?}: {e}"))
}

fn decode_rank(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad rank bits {tok:?}: {e}"))
}

fn decode_ad(tok: &str) -> Result<Arc<classad::ClassAd>, String> {
    let json = unesc(tok).ok_or_else(|| "bad escape in ad field".to_string())?;
    from_json(&json)
        .map(Arc::new)
        .map_err(|e| format!("bad classad json: {e}"))
}

impl PoolSnapshot {
    /// Encode the snapshot as the opaque `state` string of a journal
    /// `Checkpoint` record.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "poolsnap v1 {} {} {}\n",
            self.store.shards,
            if self.store.pinned { 1 } else { 0 },
            self.store.next_seq,
        );
        for ad in &self.store.ads {
            let kind = match ad.kind {
                EntityKind::Provider => 'p',
                EntityKind::Customer => 'c',
            };
            out.push_str(&format!(
                "ad {kind} {} {} {} {} {} {} {}\n",
                ad.seq,
                ad.expires_at,
                encode_ticket(&ad.ticket),
                encode_trace(&ad.trace),
                esc(&ad.name),
                esc(&ad.contact),
                esc(&to_json(&ad.ad)),
            ));
        }
        for m in &self.matches {
            out.push_str(&format!(
                "match {:x} {:x} {} {} {} {} {} {} {} {} {} {}\n",
                m.request_rank.to_bits(),
                m.offer_rank.to_bits(),
                encode_ticket(&m.ticket),
                encode_trace(&m.trace),
                esc(&m.request_name),
                esc(&m.owner),
                esc(&m.customer_contact),
                esc(&m.offer_name),
                esc(&m.provider_contact),
                encode_opt_str(&m.preempts),
                esc(&to_json(&m.request_ad)),
                esc(&to_json(&m.offer_ad)),
            ));
        }
        out
    }

    /// Decode a checkpoint string produced by [`encode`](Self::encode).
    pub fn decode(src: &str) -> Result<PoolSnapshot, SnapshotError> {
        let mut lines = src.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| SnapshotError::Header("empty snapshot".into()))?;
        let head: Vec<&str> = header.split(' ').collect();
        if head.len() != 5 || head[0] != "poolsnap" {
            return Err(SnapshotError::Header(format!("unrecognized: {header:?}")));
        }
        if head[1] != "v1" {
            return Err(SnapshotError::Header(format!(
                "unsupported version {:?}",
                head[1]
            )));
        }
        let fail = |line: usize, reason: String| SnapshotError::Line {
            line: line + 1,
            reason,
        };
        let shards = decode_u64(head[2]).map_err(SnapshotError::Header)? as usize;
        let pinned = match head[3] {
            "0" => false,
            "1" => true,
            other => {
                return Err(SnapshotError::Header(format!("bad pinned flag {other:?}")));
            }
        };
        let next_seq = decode_u64(head[4]).map_err(SnapshotError::Header)?;

        let mut ads = Vec::new();
        let mut matches = Vec::new();
        for (idx, line) in lines {
            if line.is_empty() {
                continue;
            }
            let toks: Vec<&str> = line.split(' ').collect();
            match toks[0] {
                "ad" => {
                    if toks.len() != 9 {
                        return Err(fail(idx, format!("ad record has {} fields", toks.len())));
                    }
                    let kind = match toks[1] {
                        "p" => EntityKind::Provider,
                        "c" => EntityKind::Customer,
                        other => return Err(fail(idx, format!("bad ad kind {other:?}"))),
                    };
                    ads.push(StoredAd {
                        kind,
                        seq: decode_u64(toks[2]).map_err(|e| fail(idx, e))?,
                        expires_at: decode_u64(toks[3]).map_err(|e| fail(idx, e))?,
                        ticket: decode_ticket(toks[4]).map_err(|e| fail(idx, e))?,
                        trace: decode_trace(toks[5]).map_err(|e| fail(idx, e))?,
                        name: decode_str(toks[6]).map_err(|e| fail(idx, e))?,
                        contact: decode_str(toks[7]).map_err(|e| fail(idx, e))?,
                        ad: decode_ad(toks[8]).map_err(|e| fail(idx, e))?,
                    });
                }
                "match" => {
                    if toks.len() != 13 {
                        return Err(fail(idx, format!("match record has {} fields", toks.len())));
                    }
                    matches.push(MatchRecord {
                        request_rank: decode_rank(toks[1]).map_err(|e| fail(idx, e))?,
                        offer_rank: decode_rank(toks[2]).map_err(|e| fail(idx, e))?,
                        ticket: decode_ticket(toks[3]).map_err(|e| fail(idx, e))?,
                        trace: decode_trace(toks[4]).map_err(|e| fail(idx, e))?,
                        request_name: decode_str(toks[5]).map_err(|e| fail(idx, e))?,
                        owner: decode_str(toks[6]).map_err(|e| fail(idx, e))?,
                        customer_contact: decode_str(toks[7]).map_err(|e| fail(idx, e))?,
                        offer_name: decode_str(toks[8]).map_err(|e| fail(idx, e))?,
                        provider_contact: decode_str(toks[9]).map_err(|e| fail(idx, e))?,
                        preempts: decode_opt_str(toks[10]).map_err(|e| fail(idx, e))?,
                        request_ad: decode_ad(toks[11]).map_err(|e| fail(idx, e))?,
                        offer_ad: decode_ad(toks[12]).map_err(|e| fail(idx, e))?,
                    });
                }
                other => return Err(fail(idx, format!("unknown record kind {other:?}"))),
            }
        }
        Ok(PoolSnapshot {
            store: StoreSnapshot {
                shards,
                pinned,
                next_seq,
                ads,
            },
            matches,
        })
    }

    /// The journal record carrying this snapshot: counts up front so
    /// `status_query --journal` can gauge a checkpoint without decoding
    /// the payload.
    pub fn checkpoint_event(&self, epoch: u64) -> condor_obs::Event {
        condor_obs::Event::Checkpoint {
            epoch,
            ads: self.store.ads.len() as u64,
            matches: self.matches.len() as u64,
            state: self.encode(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ad(src: &str) -> Arc<classad::ClassAd> {
        Arc::new(classad::parse_classad(src).unwrap())
    }

    fn sample() -> PoolSnapshot {
        let mut weird = classad::ClassAd::new();
        weird.set_str("Name", "m 1%\n\ttab");
        weird.set_int("Mips", 104);
        PoolSnapshot {
            store: StoreSnapshot {
                shards: 4,
                pinned: true,
                next_seq: 99,
                ads: vec![
                    StoredAd {
                        name: "m 1%\n\ttab".into(),
                        kind: EntityKind::Provider,
                        ad: Arc::new(weird),
                        contact: "127.0.0.1:9614".into(),
                        ticket: Some(Ticket::from_raw(u128::MAX - 7)),
                        expires_at: 1234,
                        seq: 7,
                        trace: Some(TraceContext {
                            trace_id: 0xdead_beef,
                            parent_span_id: 0,
                        }),
                    },
                    StoredAd {
                        name: "j-üñí".into(),
                        kind: EntityKind::Customer,
                        ad: ad(r#"[ Name = "j"; Owner = "raman" ]"#),
                        contact: "".into(),
                        ticket: None,
                        expires_at: u64::MAX,
                        seq: 8,
                        trace: None,
                    },
                ],
            },
            matches: vec![MatchRecord {
                request_name: "j-üñí".into(),
                owner: "raman".into(),
                request_ad: ad(r#"[ Name = "j" ]"#),
                customer_contact: "ca:1".into(),
                offer_name: "m 1".into(),
                offer_ad: ad(r#"[ Name = "m 1" ]"#),
                provider_contact: "m:1".into(),
                ticket: Some(Ticket::from_raw(42)),
                request_rank: f64::NAN,
                offer_rank: -0.0,
                preempts: Some("-".into()),
                trace: None,
            }],
        }
    }

    #[test]
    fn snapshot_roundtrips_every_field_exactly() {
        let snap = sample();
        let encoded = snap.encode();
        let back = PoolSnapshot::decode(&encoded).unwrap();
        assert_eq!(back.store.shards, 4);
        assert!(back.store.pinned);
        assert_eq!(back.store.next_seq, 99);
        assert_eq!(back.store.ads.len(), 2);
        for (orig, got) in snap.store.ads.iter().zip(&back.store.ads) {
            assert_eq!(orig.name, got.name);
            assert_eq!(orig.kind, got.kind);
            assert_eq!(orig.contact, got.contact);
            assert_eq!(orig.ticket, got.ticket);
            assert_eq!(orig.expires_at, got.expires_at);
            assert_eq!(orig.seq, got.seq);
            assert_eq!(orig.trace, got.trace);
            assert_eq!(to_json(&orig.ad), to_json(&got.ad));
        }
        let (orig, got) = (&snap.matches[0], &back.matches[0]);
        assert_eq!(orig.request_name, got.request_name);
        assert_eq!(orig.owner, got.owner);
        assert_eq!(orig.preempts, got.preempts, "literal \"-\" survives");
        assert_eq!(
            orig.request_rank.to_bits(),
            got.request_rank.to_bits(),
            "NaN roundtrips bit-exactly"
        );
        assert_eq!(orig.offer_rank.to_bits(), got.offer_rank.to_bits());
        assert_eq!(orig.ticket, got.ticket);
    }

    #[test]
    fn the_encoding_is_journal_safe() {
        // The whole point: a snapshot full of spaces, newlines, and
        // percent signs must survive as ONE journal Checkpoint field.
        let event = sample().checkpoint_event(3);
        let condor_obs::Event::Checkpoint {
            epoch,
            ads,
            matches,
            ref state,
        } = event
        else {
            panic!("wrong event kind");
        };
        assert_eq!((epoch, ads, matches), (3, 2, 1));
        let back = PoolSnapshot::decode(state).unwrap();
        assert_eq!(back.store.ads[0].name, "m 1%\n\ttab");
    }

    #[test]
    fn corrupt_payloads_fail_with_located_errors() {
        assert!(matches!(
            PoolSnapshot::decode(""),
            Err(SnapshotError::Header(_))
        ));
        assert!(matches!(
            PoolSnapshot::decode("poolsnap v9 1 0 0\n"),
            Err(SnapshotError::Header(_))
        ));
        let err = PoolSnapshot::decode("poolsnap v1 1 0 0\nad p oops\n").unwrap_err();
        assert!(matches!(err, SnapshotError::Line { line: 2, .. }), "{err}");
        let err = PoolSnapshot::decode("poolsnap v1 1 0 0\nblob x\n").unwrap_err();
        assert!(err.to_string().contains("unknown record kind"), "{err}");
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = PoolSnapshot {
            store: StoreSnapshot {
                shards: 8,
                pinned: false,
                next_seq: 1,
                ads: vec![],
            },
            matches: vec![],
        };
        let back = PoolSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back.store.shards, 8);
        assert!(!back.store.pinned);
        assert!(back.store.ads.is_empty());
        assert!(back.matches.is_empty());
    }
}
