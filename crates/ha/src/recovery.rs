//! Last-checkpoint-plus-tail restart for a matchmaker.
//!
//! A newly inaugurated leader (or a lone matchmaker restarting in place)
//! calls [`recover_pool`] on the journal it inherits. The journal reader
//! ([`condor_obs::recover`]) finds the latest `Checkpoint` record and
//! hands back its opaque payload plus every record written after it; this
//! module decodes the payload into a [`PoolSnapshot`] and *adjusts* it
//! with what the tail proves happened since:
//!
//! * Every `MatchMade` in the tail names a request/offer pair the dead
//!   leader matched (and withdrew) after the checkpoint. Restoring those
//!   ads verbatim would re-allocate a machine that is likely mid-claim,
//!   so [`Recovered::adjusted_store`] drops both sides of each
//!   tail match. The claiming protocol would catch the double-sell
//!   anyway — providers re-verify constraints — but not re-offering a
//!   spoken-for machine saves the wasted cycle.
//! * Ads that *arrived* after the checkpoint are gone — `AdReceived`
//!   records carry no ad body — and that is fine: soft state means the
//!   agents re-advertise within one heartbeat, and
//!   [`Recovered::tail_ads_lost`] reports how many the new leader is
//!   waiting on.

use crate::snapshot::{PoolSnapshot, SnapshotError};
use condor_obs::{Event, ReplayStats};
use matchmaker::StoreSnapshot;
use std::collections::HashSet;
use std::io;
use std::path::Path;

/// What a journal gave back at restart.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The latest checkpoint's snapshot; `None` when the journal holds no
    /// checkpoint (recover by re-advertisement alone).
    pub snapshot: Option<PoolSnapshot>,
    /// The epoch recorded with that checkpoint (0 without one).
    pub epoch: u64,
    /// The journal sequence number of the checkpoint record (0 without
    /// one).
    pub checkpoint_seq: u64,
    /// Request/offer name pairs matched after the checkpoint, in tail
    /// order.
    pub tail_matches: Vec<(String, String)>,
    /// Ads received after the checkpoint whose bodies the journal cannot
    /// reconstruct — the count of agents expected to re-advertise.
    pub tail_ads_lost: u64,
    /// Reader statistics for the whole journal (torn lines, unknown
    /// kinds survive a version skew).
    pub stats: ReplayStats,
}

impl Recovered {
    /// The store state to restore, with both sides of every
    /// post-checkpoint match withdrawn. `None` when there was no
    /// checkpoint.
    pub fn adjusted_store(&self) -> Option<StoreSnapshot> {
        let snap = self.snapshot.as_ref()?;
        let matched: HashSet<String> = self
            .tail_matches
            .iter()
            .flat_map(|(req, off)| [req.to_ascii_lowercase(), off.to_ascii_lowercase()])
            .collect();
        let mut store = snap.store.clone();
        store
            .ads
            .retain(|ad| !matched.contains(&ad.name.to_ascii_lowercase()));
        Some(store)
    }
}

/// Replay the journal at `path` and assemble the recovery picture. A
/// checkpoint whose payload no longer decodes is reported as
/// `InvalidData` — a truncated *tail* merely shows up in
/// [`ReplayStats::torn`], but a corrupt checkpoint body means the
/// snapshot format and the journal disagree and silent fallback would
/// hide real state loss.
pub fn recover_pool(path: impl AsRef<Path>) -> io::Result<Recovered> {
    let rec = condor_obs::recover(path)?;
    let snapshot = match &rec.state {
        None => None,
        Some(state) => Some(
            PoolSnapshot::decode(state)
                .map_err(|e: SnapshotError| io::Error::new(io::ErrorKind::InvalidData, e))?,
        ),
    };
    let mut tail_matches = Vec::new();
    let mut tail_ads_lost = 0;
    for record in &rec.tail {
        match &record.event {
            Event::MatchMade { request, offer } => {
                tail_matches.push((request.clone(), offer.clone()));
            }
            Event::AdReceived { .. } => tail_ads_lost += 1,
            _ => {}
        }
    }
    Ok(Recovered {
        snapshot,
        epoch: rec.epoch,
        checkpoint_seq: rec.checkpoint_seq,
        tail_matches,
        tail_ads_lost,
        stats: rec.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use condor_obs::{Journal, JournalConfig};
    use matchmaker::protocol::EntityKind;
    use matchmaker::StoredAd;
    use std::sync::Arc;

    fn stored(name: &str, kind: EntityKind) -> StoredAd {
        StoredAd {
            name: name.into(),
            kind,
            ad: Arc::new(classad::parse_classad(&format!("[ Name = {name:?} ]")).unwrap()),
            contact: "127.0.0.1:1".into(),
            ticket: None,
            expires_at: u64::MAX,
            seq: 1,
            trace: None,
        }
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ha-rec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    #[test]
    fn recovery_restores_the_checkpoint_minus_tail_matches() {
        let path = scratch("tail");
        let snap = PoolSnapshot {
            store: StoreSnapshot {
                shards: 2,
                pinned: true,
                next_seq: 10,
                ads: vec![
                    stored("m1", EntityKind::Provider),
                    stored("m2", EntityKind::Provider),
                    stored("J1", EntityKind::Customer),
                ],
            },
            matches: vec![],
        };
        let journal = Journal::open(JournalConfig::new(&path)).unwrap();
        journal.append(snap.checkpoint_event(4));
        // The tail: the dead leader matched J1 onto m1 (note the case
        // skew — journal names carry original spelling) and saw one new
        // ad it never checkpointed.
        journal.append(Event::MatchMade {
            request: "j1".into(),
            offer: "M1".into(),
        });
        journal.append(Event::AdReceived {
            kind: "Provider".into(),
            name: "m9".into(),
            contact: "127.0.0.1:9".into(),
        });
        drop(journal);

        let rec = recover_pool(&path).unwrap();
        assert_eq!(rec.epoch, 4);
        assert_eq!(rec.tail_matches, vec![("j1".into(), "M1".into())]);
        assert_eq!(rec.tail_ads_lost, 1);
        let store = rec.adjusted_store().unwrap();
        assert_eq!(store.next_seq, 10, "seq counter survives");
        let names: Vec<&str> = store.ads.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["m2"], "both sides of the tail match gone");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn journal_without_a_checkpoint_recovers_to_soft_state_only() {
        let path = scratch("nochk");
        let journal = Journal::open(JournalConfig::new(&path)).unwrap();
        journal.append(Event::AgentRestarted {
            agent: "MatchmakerDaemon".into(),
            name: "mm".into(),
        });
        drop(journal);
        let rec = recover_pool(&path).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.adjusted_store().is_none());
        assert_eq!(rec.epoch, 0);
        assert_eq!(rec.stats.records, 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn corrupt_checkpoint_payloads_are_loud() {
        let path = scratch("corrupt");
        let journal = Journal::open(JournalConfig::new(&path)).unwrap();
        journal.append(Event::Checkpoint {
            epoch: 1,
            ads: 0,
            matches: 0,
            state: "not a snapshot".into(),
        });
        drop(journal);
        let err = recover_pool(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn later_checkpoints_shadow_earlier_ones() {
        let path = scratch("latest");
        let old = PoolSnapshot {
            store: StoreSnapshot {
                shards: 1,
                pinned: false,
                next_seq: 5,
                ads: vec![stored("old", EntityKind::Provider)],
            },
            matches: vec![],
        };
        let new = PoolSnapshot {
            store: StoreSnapshot {
                shards: 1,
                pinned: false,
                next_seq: 6,
                ads: vec![stored("new", EntityKind::Provider)],
            },
            matches: vec![],
        };
        let journal = Journal::open(JournalConfig::new(&path)).unwrap();
        journal.append(old.checkpoint_event(1));
        journal.append(Event::MatchMade {
            request: "ignored".into(),
            offer: "pre-checkpoint".into(),
        });
        journal.append(new.checkpoint_event(2));
        drop(journal);
        let rec = recover_pool(&path).unwrap();
        assert_eq!(rec.epoch, 2);
        assert!(
            rec.tail_matches.is_empty(),
            "the tail starts after the LAST checkpoint"
        );
        let store = rec.adjusted_store().unwrap();
        assert_eq!(store.ads[0].name, "new");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
