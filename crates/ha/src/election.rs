//! Lease-based leader election among matchmaker daemons.
//!
//! The state machine is pure: it owns no sockets and never reads a clock.
//! The daemon drives it — ticking it periodically, shipping the
//! `ElectionBid` / `LeaderLease` frames it asks for, and feeding every
//! lease or bid it hears back in. That keeps the election deterministic
//! under test: feed the same observations in the same order and the same
//! daemon leads.
//!
//! ## The protocol
//!
//! * The leader re-arms its lease every tick and broadcasts a
//!   [`Message::LeaderLease`](matchmaker::protocol::Message::LeaderLease)
//!   heartbeat naming `(epoch, leader, expires_at)`.
//! * A standby stays quiet while the lease it last observed is live. Once
//!   the lease lapses (the leader died, or never existed), the standby
//!   contends: it proposes `epoch + 1` and sends an `ElectionBid` to every
//!   peer.
//! * A peer answers a bid with a `LeaderLease` — either *conceding* (it
//!   adopted the bid and the lease names the candidate) or *asserting* a
//!   lease at an epoch at least as high naming someone else. Dead peers
//!   and pre-HA matchmakers (which reject tag 11 with a structured error)
//!   are treated as concessions: they cannot out-vote a live candidate.
//! * Higher epochs always win. Equal-epoch conflicts (two standbys bid
//!   simultaneously and split the concessions) are broken by contact
//!   ordering — the lexicographically smaller contact wins — so a split
//!   round still converges without randomness.

use matchmaker::protocol::Timestamp;

/// Static election parameters for one daemon.
#[derive(Debug, Clone)]
pub struct ElectionConfig {
    /// This daemon's own contact address (`host:port`), also its identity
    /// on the ballot.
    pub contact: String,
    /// The other matchmakers in the HA set (contact addresses).
    pub peers: Vec<String>,
    /// Lease length in seconds. A leader heartbeats several times per
    /// lease; a standby waits out a full lease before contending.
    pub lease_secs: u64,
}

/// Which side of the lease a daemon currently sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Holds the pool: negotiates, stores ads, answers queries.
    Leader,
    /// Watches the lease and redirects agents to the leader.
    Standby,
}

/// What the daemon should do after a [`Election::tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tick {
    /// We are the leader: broadcast this lease to every peer as a
    /// heartbeat.
    Lead {
        /// Our current epoch.
        epoch: u64,
        /// The freshly re-armed lease expiry to advertise.
        expires_at: Timestamp,
    },
    /// The observed lease has lapsed: send an `ElectionBid` proposing
    /// `epoch` to every peer, feed the replies into
    /// [`Election::observe_lease`], then call
    /// [`Election::try_inaugurate`].
    Contend {
        /// The epoch to propose (strictly greater than any we observed).
        epoch: u64,
    },
    /// A live lease is in force and it is not ours: do nothing.
    Wait,
}

/// Outcome of feeding an observed lease into the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseVerdict {
    /// The lease was adopted (newer epoch, or a renewal of the current
    /// leader's lease).
    Adopted,
    /// The lease was adopted *and* it ended our own leadership: we saw a
    /// rightful leader at an epoch we cannot beat. The daemon must stop
    /// negotiating immediately.
    SteppedDown,
    /// The lease lost to what we already hold; it changed nothing.
    Stale,
}

/// The election state machine for one matchmaker daemon.
#[derive(Debug, Clone)]
pub struct Election {
    contact: String,
    peers: Vec<String>,
    lease_secs: u64,
    epoch: u64,
    role: Role,
    leader: Option<String>,
    lease_expires: Timestamp,
}

impl Election {
    /// A fresh standby. The boot grace period is one full lease from
    /// `now`: a restarting daemon listens for the incumbent's heartbeat
    /// before it would contend, so a rolling restart does not trigger a
    /// spurious election.
    pub fn new(cfg: ElectionConfig, now: Timestamp) -> Election {
        Election {
            lease_expires: now.saturating_add(cfg.lease_secs),
            contact: cfg.contact,
            peers: cfg.peers,
            lease_secs: cfg.lease_secs.max(1),
            epoch: 0,
            role: Role::Standby,
            leader: None,
        }
    }

    /// A non-contending leader for a classic single-matchmaker pool: the
    /// daemon leads from birth at epoch 0 with a lease that never lapses
    /// and no peers to heartbeat. This keeps one code path in the daemon —
    /// every matchmaker owns an `Election`, but only HA sets ever tick
    /// theirs into a real contest.
    pub fn solo(contact: String) -> Election {
        Election {
            leader: Some(contact.clone()),
            contact,
            peers: Vec::new(),
            lease_secs: u64::MAX,
            epoch: 0,
            role: Role::Leader,
            lease_expires: Timestamp::MAX,
        }
    }

    /// Our own contact address.
    pub fn contact(&self) -> &str {
        &self.contact
    }

    /// The peer contact list (bid and heartbeat targets).
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Replace the peer list (HA sets whose members bind ephemeral ports
    /// learn each other's addresses after spawn).
    pub fn set_peers(&mut self, peers: Vec<String>) {
        self.peers = peers;
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// `true` when this daemon holds the pool.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// The highest epoch this daemon has observed or granted.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The leader we currently believe in, if any.
    pub fn leader(&self) -> Option<&str> {
        self.leader.as_deref()
    }

    /// When the lease we hold (or observe) lapses.
    pub fn lease_expires(&self) -> Timestamp {
        self.lease_expires
    }

    /// Advance the machine one step at `now`.
    pub fn tick(&mut self, now: Timestamp) -> Tick {
        match self.role {
            Role::Leader => {
                self.lease_expires = now.saturating_add(self.lease_secs);
                Tick::Lead {
                    epoch: self.epoch,
                    expires_at: self.lease_expires,
                }
            }
            Role::Standby => {
                if now < self.lease_expires {
                    Tick::Wait
                } else {
                    Tick::Contend {
                        epoch: self.epoch + 1,
                    }
                }
            }
        }
    }

    /// Fold in a lease we heard — a leader heartbeat, or a peer's reply to
    /// our bid. Higher epochs always win; equal epochs renew the same
    /// leader or break the tie toward the smaller contact string.
    pub fn observe_lease(
        &mut self,
        epoch: u64,
        leader: &str,
        expires_at: Timestamp,
    ) -> LeaseVerdict {
        if leader.is_empty() {
            return LeaseVerdict::Stale;
        }
        let adopt = match epoch.cmp(&self.epoch) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.leader.as_deref() {
                None => true,
                Some(current) if current == leader => {
                    // Renewal of the lease we already honour.
                    self.lease_expires = self.lease_expires.max(expires_at);
                    return LeaseVerdict::Adopted;
                }
                // Equal-epoch split: deterministic tie-break.
                Some(current) => leader < current,
            },
        };
        if !adopt {
            return LeaseVerdict::Stale;
        }
        self.epoch = epoch;
        self.leader = Some(leader.to_string());
        self.lease_expires = expires_at;
        if self.role == Role::Leader && leader != self.contact {
            self.role = Role::Standby;
            return LeaseVerdict::SteppedDown;
        }
        LeaseVerdict::Adopted
    }

    /// Answer a peer's `ElectionBid`. Returns the `(epoch, leader,
    /// expires_at)` triple to send back as a `LeaderLease`: the adopted
    /// lease when we concede, our current view when we reject. A bid for
    /// a strictly higher epoch always wins — even over our own
    /// leadership, in which case the caller sees us as a standby from the
    /// next tick on.
    pub fn observe_bid(
        &mut self,
        epoch: u64,
        candidate: &str,
        now: Timestamp,
    ) -> (u64, String, Timestamp) {
        let concede = epoch > self.epoch
            || (epoch == self.epoch && self.leader.as_deref() == Some(candidate));
        if concede {
            self.epoch = epoch;
            self.leader = Some(candidate.to_string());
            self.lease_expires = now.saturating_add(self.lease_secs);
            if self.role == Role::Leader && candidate != self.contact {
                self.role = Role::Standby;
            }
            (epoch, candidate.to_string(), self.lease_expires)
        } else {
            (
                self.epoch,
                self.leader.clone().unwrap_or_default(),
                self.lease_expires,
            )
        }
    }

    /// Close out a bid for `bid_epoch` after every peer's reply (or
    /// failure — a concession) has been folded in with
    /// [`observe_lease`](Election::observe_lease). Succeeds — making us
    /// the leader — unless some peer asserted an epoch at least as high
    /// naming someone else.
    pub fn try_inaugurate(&mut self, bid_epoch: u64, now: Timestamp) -> bool {
        if self.epoch > bid_epoch {
            return false;
        }
        if self.epoch == bid_epoch && self.leader.as_deref() != Some(self.contact.as_str()) {
            return false;
        }
        self.epoch = bid_epoch;
        self.leader = Some(self.contact.clone());
        self.role = Role::Leader;
        self.lease_expires = now.saturating_add(self.lease_secs);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn election(contact: &str, peers: &[&str]) -> Election {
        Election::new(
            ElectionConfig {
                contact: contact.into(),
                peers: peers.iter().map(|p| p.to_string()).collect(),
                lease_secs: 10,
            },
            100,
        )
    }

    #[test]
    fn lone_daemon_waits_out_the_grace_then_leads() {
        let mut el = election("a:1", &[]);
        assert_eq!(el.tick(105), Tick::Wait, "boot grace: listen first");
        assert_eq!(el.tick(110), Tick::Contend { epoch: 1 });
        assert!(el.try_inaugurate(1, 110));
        assert!(el.is_leader());
        assert_eq!(
            el.tick(111),
            Tick::Lead {
                epoch: 1,
                expires_at: 121
            }
        );
    }

    #[test]
    fn standby_honours_heartbeats_and_contends_on_lapse() {
        let mut el = election("b:1", &["a:1"]);
        assert_eq!(el.observe_lease(3, "a:1", 130), LeaseVerdict::Adopted);
        assert_eq!(el.epoch(), 3);
        assert_eq!(el.leader(), Some("a:1"));
        assert_eq!(el.tick(129), Tick::Wait);
        // The leader dies: no more renewals, the lease lapses.
        assert_eq!(el.tick(130), Tick::Contend { epoch: 4 });
        assert!(el.try_inaugurate(4, 130));
        assert_eq!(el.leader(), Some("b:1"));
    }

    #[test]
    fn stale_bids_are_rejected_with_the_current_lease() {
        let mut el = election("a:1", &["b:1"]);
        assert_eq!(el.tick(110), Tick::Contend { epoch: 1 });
        assert!(el.try_inaugurate(1, 110));
        // A bid at our own epoch from someone else does not unseat us.
        let (epoch, leader, expires) = el.observe_bid(1, "b:1", 111);
        assert_eq!((epoch, leader.as_str(), expires), (1, "a:1", 120));
        assert!(el.is_leader());
    }

    #[test]
    fn higher_epoch_bid_unseats_a_leader() {
        let mut el = election("a:1", &["b:1"]);
        assert!(el.try_inaugurate(1, 110));
        let (epoch, leader, _) = el.observe_bid(2, "b:1", 112);
        assert_eq!((epoch, leader.as_str()), (2, "b:1"));
        assert_eq!(el.role(), Role::Standby);
        assert_eq!(el.leader(), Some("b:1"));
    }

    #[test]
    fn heartbeat_from_a_higher_epoch_steps_a_leader_down() {
        let mut el = election("a:1", &["b:1"]);
        assert!(el.try_inaugurate(1, 110));
        assert_eq!(el.observe_lease(2, "b:1", 125), LeaseVerdict::SteppedDown);
        assert_eq!(el.role(), Role::Standby);
        assert_eq!(el.tick(120), Tick::Wait, "the new lease is honoured");
    }

    #[test]
    fn losing_bidder_adopts_the_asserted_leader() {
        let mut el = election("b:1", &["a:1", "c:1"]);
        let Tick::Contend { epoch } = el.tick(115) else {
            panic!("expected a contention");
        };
        // A peer asserts an existing lease at the same epoch for "a:1".
        assert_eq!(el.observe_lease(epoch, "a:1", 130), LeaseVerdict::Adopted);
        assert!(!el.try_inaugurate(epoch, 115), "the bid lost");
        assert_eq!(el.leader(), Some("a:1"));
        assert_eq!(el.role(), Role::Standby);
    }

    #[test]
    fn simultaneous_bids_resolve_by_contact_order() {
        // Both standbys contend for epoch 1 at once and exchange bids
        // before either sees a reply: each concedes to the other.
        let mut a = election("a:1", &["b:1"]);
        let mut b = election("b:1", &["a:1"]);
        let reply_from_b = b.observe_bid(1, "a:1", 115);
        let reply_from_a = a.observe_bid(1, "b:1", 115);
        // Now each folds in the other's reply (the cross-concessions).
        a.observe_lease(reply_from_b.0, &reply_from_b.1, reply_from_b.2);
        b.observe_lease(reply_from_a.0, &reply_from_a.1, reply_from_a.2);
        let a_wins = a.try_inaugurate(1, 115);
        let b_wins = b.try_inaugurate(1, 115);
        assert!(a_wins, "the smaller contact wins the tie");
        assert!(!b_wins);
        assert_eq!(b.leader(), Some("a:1"));
    }

    #[test]
    fn solo_leads_forever_without_contention() {
        let mut el = Election::solo("a:1".into());
        assert!(el.is_leader());
        assert_eq!(el.leader(), Some("a:1"));
        assert_eq!(el.epoch(), 0);
        assert!(el.peers().is_empty());
        assert!(matches!(el.tick(u64::MAX - 1), Tick::Lead { epoch: 0, .. }));
        // Even a solo leader yields to a real HA set annexing the pool.
        assert_eq!(el.observe_lease(1, "b:1", 200), LeaseVerdict::SteppedDown);
    }

    #[test]
    fn empty_leader_names_never_adopt() {
        let mut el = election("a:1", &[]);
        assert_eq!(el.observe_lease(5, "", 200), LeaseVerdict::Stale);
        assert_eq!(el.epoch(), 0);
    }

    #[test]
    fn repeat_bid_from_the_granted_candidate_renews() {
        let mut el = election("c:1", &["a:1", "b:1"]);
        let first = el.observe_bid(2, "a:1", 120);
        assert_eq!((first.0, first.1.as_str()), (2, "a:1"));
        // The same candidate retries the same epoch (lost our reply):
        // still conceded, lease re-armed.
        let again = el.observe_bid(2, "a:1", 125);
        assert_eq!((again.0, again.1.as_str(), again.2), (2, "a:1", 135));
    }
}
