//! Golden-corpus test: a breadth of realistic classads (machines, jobs,
//! licenses, storage, queries, gang envelopes) pushed through the whole
//! pipeline — parse, evaluate, match, pretty-print round-trip, JSON
//! round-trip — with expected match outcomes pinned.

use classad::{
    evaluate_match, parse_classad, parse_classads, symmetric_match, ClassAd, EvalPolicy,
    MatchConventions, Value,
};

const CORPUS: &str = r#"
// -- a dedicated compute node ------------------------------------------
[
    Name = "crush.cs.wisc.edu";
    Type = "Machine";
    Arch = "INTEL"; OpSys = "LINUX";
    Mips = 210; KFlops = 41900; Memory = 256; Disk = 2000000;
    State = "Unclaimed"; LoadAvg = 0.01; KeyboardIdle = 999999;
    Subnet = "128.105.165";
    Constraint = other.Type == "Job";
    Rank = other.Department is "CS" ? 5 : 0;
]

// -- a desktop with an elaborate owner policy --------------------------
[
    Name = "vger.cs.wisc.edu";
    Type = "Machine";
    Arch = "SPARC"; OpSys = "SOLARIS251";
    Mips = 80; Memory = 128; Disk = 450000;
    State = "Unclaimed"; LoadAvg = 0.12; KeyboardIdle = 2400;
    DayTime = 81000;  // 22:30
    Friends = { "pruyne", "epema" };
    Constraint = other.Type == "Job" &&
                 (member(other.Owner, Friends)
                  || (DayTime < 7*60*60 || DayTime > 20*60*60));
    Rank = member(other.Owner, Friends);
]

// -- a software license ------------------------------------------------
[
    Name = "matlab-license-3";
    Type = "License";
    Product = "matlab"; Version = 5; Seats = 2;
    Constraint = other.Type == "Job" && other.WantMatlab is true;
    Rank = 0;
]

// -- a storage server ---------------------------------------------------
[
    Name = "vault.cs.wisc.edu";
    Type = "Storage";
    CapacityGB = 400; FreeGB = 212;
    Subnet = "128.105.165";
    Constraint = other.NeedGB <= FreeGB;
    Rank = -other.NeedGB;   // prefer small requests
]

// -- a checkpointing batch job -----------------------------------------
[
    Name = "epema.sim.12";
    Type = "Job";
    Owner = "epema"; Department = "CS";
    Cmd = "flock_sim"; Args = "-n 1000";
    Memory = 96; WantCheckpoint = 1;
    ImageSize = 48210;
    Constraint = other.Type == "Machine" && other.Memory >= self.Memory
                 && other.OpSys == "SOLARIS251";
    Rank = other.Mips + (other.KeyboardIdle / 60);
]

// -- a picky job nobody can serve --------------------------------------
[
    Name = "doomed.1";
    Type = "Job";
    Owner = "doomed";
    Constraint = other.Type == "Machine" && other.Memory >= 100000;
    Rank = 0;
]

// -- an administrative query (one-way) ----------------------------------
[
    Name = "status-probe";
    Constraint = other.State == "Unclaimed" && other.LoadAvg < 0.3;
]
"#;

fn corpus() -> Vec<ClassAd> {
    parse_classads(CORPUS).expect("corpus parses")
}

fn by_name<'a>(ads: &'a [ClassAd], name: &str) -> &'a ClassAd {
    ads.iter()
        .find(|a| a.get_string("Name") == Some(name))
        .unwrap_or_else(|| panic!("{name} not in corpus"))
}

#[test]
fn corpus_parses_completely() {
    let ads = corpus();
    assert_eq!(ads.len(), 7);
    for ad in &ads {
        assert!(ad.contains("Name"));
        assert!(ad.contains("Constraint"));
    }
}

#[test]
fn corpus_round_trips_pretty_and_json() {
    for ad in corpus() {
        let back = parse_classad(&ad.to_string()).unwrap();
        assert_eq!(
            ad,
            back,
            "pretty round-trip: {}",
            ad.get_string("Name").unwrap()
        );
        let back = classad::json::from_json(&classad::json::to_json(&ad)).unwrap();
        assert_eq!(
            ad,
            back,
            "json round-trip: {}",
            ad.get_string("Name").unwrap()
        );
    }
}

#[test]
fn pinned_match_outcomes() {
    let ads = corpus();
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    let cases: &[(&str, &str, bool)] = &[
        // The CS job matches the SPARC/Solaris desktop (memory OK, night).
        ("epema.sim.12", "vger.cs.wisc.edu", true),
        // But not the Linux node (OpSys mismatch) even though it's willing.
        ("epema.sim.12", "crush.cs.wisc.edu", false),
        // The doomed job matches nothing.
        ("doomed.1", "crush.cs.wisc.edu", false),
        ("doomed.1", "vger.cs.wisc.edu", false),
        // The license only accepts jobs that declare WantMatlab.
        ("epema.sim.12", "matlab-license-3", false),
        // Machines don't match machines.
        ("crush.cs.wisc.edu", "vger.cs.wisc.edu", false),
    ];
    for (a, b, want) in cases {
        let got = symmetric_match(by_name(&ads, a), by_name(&ads, b), &policy, &conv);
        assert_eq!(got, *want, "{a} x {b}");
    }
}

#[test]
fn ranks_behave_as_designed() {
    let ads = corpus();
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    // epema is a friend of vger: rank 1 (friendship) on the machine side.
    let r = evaluate_match(
        by_name(&ads, "epema.sim.12"),
        by_name(&ads, "vger.cs.wisc.edu"),
        &policy,
        &conv,
    );
    assert!(r.matched());
    assert_eq!(r.right_rank, 1.0, "vger prefers friends");
    // Job's rank of vger: Mips + KeyboardIdle/60 = 80 + 40 = 120.
    assert_eq!(r.left_rank, 120.0);
    // The storage server prefers smaller requests: rank is negative demand.
    let mut req =
        parse_classad(r#"[ Name = "stage"; Type = "Transfer"; NeedGB = 50; Constraint = true ]"#)
            .unwrap();
    let rank = classad::rank_of(by_name(&ads, "vault.cs.wisc.edu"), &req, &policy, &conv);
    assert_eq!(rank, -50.0);
    req.set_int("NeedGB", 10);
    let rank2 = classad::rank_of(by_name(&ads, "vault.cs.wisc.edu"), &req, &policy, &conv);
    assert!(rank2 > rank, "smaller request ranks higher");
}

#[test]
fn wantmatlab_is_comparison_gates_license() {
    let ads = corpus();
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    let lic = by_name(&ads, "matlab-license-3");
    let mut job = parse_classad(
        r#"[ Name = "j"; Type = "Job"; Owner = "u"; WantMatlab = true;
             Constraint = other.Type == "License" && other.Product == "MATLAB" ]"#,
    )
    .unwrap();
    // Product comparison is case-insensitive (==), WantMatlab `is true`.
    assert!(symmetric_match(&job, lic, &policy, &conv));
    // `is` is exact: WantMatlab = 1 (integer) does NOT satisfy `is true`.
    job.set_int("WantMatlab", 1);
    assert!(!symmetric_match(&job, lic, &policy, &conv));
}

#[test]
fn one_way_query_semantics_over_corpus() {
    let ads = corpus();
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    let probe = by_name(&ads, "status-probe");
    let hits: Vec<&str> = ads
        .iter()
        .filter(|target| classad::constraint_holds(probe, target, &policy, &conv))
        .map(|t| t.get_string("Name").unwrap())
        .collect();
    assert_eq!(hits, vec!["crush.cs.wisc.edu", "vger.cs.wisc.edu"]);
}

#[test]
fn storage_constraint_uses_fallback_resolution() {
    // `other.NeedGB <= FreeGB`: FreeGB resolves in the storage ad itself.
    let ads = corpus();
    let policy = EvalPolicy::default();
    let vault = by_name(&ads, "vault.cs.wisc.edu");
    let small = parse_classad(r#"[ Name = "s"; NeedGB = 100; Constraint = true ]"#).unwrap();
    let big = parse_classad(r#"[ Name = "b"; NeedGB = 300; Constraint = true ]"#).unwrap();
    let conv = MatchConventions::default();
    assert!(classad::constraint_holds(vault, &small, &policy, &conv));
    assert!(!classad::constraint_holds(vault, &big, &policy, &conv));
}

#[test]
fn corpus_evaluation_values_spot_checks() {
    let ads = corpus();
    let policy = EvalPolicy::default();
    let vger = by_name(&ads, "vger.cs.wisc.edu");
    assert_eq!(vger.eval_attr("DayTime", &policy), Value::Int(81_000));
    // 22:30 is after 20:00, so the night clause holds for strangers.
    let stranger =
        parse_classad(r#"[ Name = "x"; Type = "Job"; Owner = "nobody"; Constraint = true ]"#)
            .unwrap();
    assert!(classad::constraint_holds(
        vger,
        &stranger,
        &policy,
        &MatchConventions::default()
    ));
}
