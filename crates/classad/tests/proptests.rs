//! Property-based tests for the ClassAd language: round-trips, algebraic
//! laws of the three-valued logic, and evaluator robustness on arbitrary
//! expressions.

use classad::ast::{AttrName, BinOp, Expr, UnOp};
use classad::eval::{EvalPolicy, Evaluator, Side};
use classad::json::{from_json, to_json};
use classad::value::Value;
use classad::{parse_classad, parse_expr, ClassAd};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn arb_attr_name() -> impl Strategy<Value = String> {
    // Avoid the reserved words (true/false/undefined/error/is/isnt) and the
    // scope pseudo-attrs by always appending a digit suffix.
    proptest::string::string_regex("[A-Za-z_][A-Za-z0-9_]{0,6}[0-9]").unwrap()
}

fn arb_string_lit() -> impl Strategy<Value = String> {
    // Printable-ish strings including escapes and non-ASCII.
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z'),
            proptest::char::range('A', 'Z'),
            proptest::char::range('0', '9'),
            Just(' '),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\t'),
            Just('é'),
            Just('∀'),
        ],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i64>().prop_map(Expr::int),
        // Finite reals only: NaN breaks structural comparison of ASTs.
        any::<f64>()
            .prop_filter("finite", |r| r.is_finite())
            .prop_map(Expr::real),
        arb_string_lit().prop_map(|s| Expr::str(&s)),
        any::<bool>().prop_map(Expr::bool),
        Just(Expr::Lit(classad::Literal::Undefined)),
        Just(Expr::Lit(classad::Literal::Error)),
        arb_attr_name().prop_map(|n| Expr::attr(&n)),
        arb_attr_name().prop_map(|n| Expr::self_(&n)),
        arb_attr_name().prop_map(|n| Expr::other(&n)),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Is),
        Just(BinOp::Isnt),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::BitAnd),
        Just(BinOp::BitOr),
        Just(BinOp::BitXor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Ushr),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Neg),
        Just(UnOp::Pos),
        Just(UnOp::Not),
        Just(UnOp::BitNot)
    ]
}

/// Build a unary expression the way the parser does: negation of a numeric
/// literal folds into the literal, so generated ASTs stay in the parser's
/// canonical form (required for round-trip comparison).
fn mk_unary(op: UnOp, e: Expr) -> Expr {
    if op == UnOp::Neg {
        if let Expr::Lit(classad::Literal::Int(i)) = &e {
            if let Some(n) = i.checked_neg() {
                return Expr::int(n);
            }
        }
        if let Expr::Lit(classad::Literal::Real(r)) = &e {
            return Expr::real(-r);
        }
    }
    Expr::Unary(op, Box::new(e))
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            (arb_unop(), inner.clone()).prop_map(|(op, e)| mk_unary(op, e)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            (
                arb_attr_name(),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(n, args)| Expr::Call(AttrName::new(&n), args)),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Expr::List),
            proptest::collection::vec((arb_attr_name(), inner.clone()), 0..3).prop_map(|fields| {
                // Duplicate names collapse during parsing (an ad is a
                // map); keep only the first occurrence of each name so
                // the generated AST is parser-canonical.
                let mut seen = std::collections::HashSet::new();
                Expr::Record(
                    fields
                        .into_iter()
                        .filter(|(n, _)| seen.insert(n.to_ascii_lowercase()))
                        .map(|(n, e)| (AttrName::new(&n), e))
                        .collect(),
                )
            }),
            (inner.clone(), arb_attr_name())
                .prop_map(|(b, n)| Expr::Select(Box::new(b), AttrName::new(&n))),
            (inner.clone(), inner).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i))),
        ]
    })
}

fn arb_classad() -> impl Strategy<Value = ClassAd> {
    proptest::collection::vec((arb_attr_name(), arb_expr()), 0..8).prop_map(|fields| {
        let mut ad = ClassAd::new();
        for (n, e) in fields {
            ad.set(n.as_str(), e);
        }
        ad
    })
}

fn arb_bool3() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Bool(true)),
        Just(Value::Bool(false)),
        Just(Value::Undefined),
        Just(Value::Error),
    ]
}

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn expr_pretty_print_roundtrips(e in arb_expr()) {
        let printed = e.to_string();
        let back = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(&e, &back, "print/parse changed AST; printed `{}`", printed);
    }

    #[test]
    fn classad_pretty_print_roundtrips(ad in arb_classad()) {
        let printed = ad.to_string();
        let back = parse_classad(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(&ad, &back);
        let pretty = ad.pretty();
        let back = parse_classad(&pretty).unwrap();
        prop_assert_eq!(&ad, &back);
    }

    #[test]
    fn classad_json_roundtrips(ad in arb_classad()) {
        let js = to_json(&ad);
        let back = from_json(&js)
            .unwrap_or_else(|err| panic!("json `{js}` failed to reparse: {err}"));
        prop_assert_eq!(&ad, &back, "json was `{}`", js);
    }

    // -----------------------------------------------------------------------
    // Evaluation laws
    // -----------------------------------------------------------------------

    #[test]
    fn evaluation_never_panics(ad in arb_classad(), e in arb_expr()) {
        let policy = EvalPolicy::default();
        let _ = ad.eval_expr(&e, &policy);
    }

    #[test]
    fn evaluation_is_deterministic(ad in arb_classad(), e in arb_expr()) {
        let policy = EvalPolicy::default();
        let a = ad.eval_expr(&e, &policy);
        let b = ad.eval_expr(&e, &policy);
        prop_assert!(a.same_as(&b), "{a:?} vs {b:?}");
    }

    #[test]
    fn flatten_preserves_pair_evaluation(a in arb_classad(), b in arb_classad(), e in arb_expr()) {
        // Partial evaluation against the left ad must not change what any
        // pair evaluation computes. (Generated function names always end
        // in a digit, so the impure `random`/`time` builtins cannot occur
        // and full determinism holds.)
        let policy = EvalPolicy::default();
        let flat = classad::flatten::flatten(&e, &a, &policy);
        let v1 = Evaluator::pair(&a, &b, &policy).eval(&e, Side::Left);
        let v2 = Evaluator::pair(&a, &b, &policy).eval(&flat, Side::Left);
        // NaN results compare unequal to themselves; fall back to the
        // printed form for that case.
        prop_assert!(
            v1.same_as(&v2) || v1.to_string() == v2.to_string(),
            "{v1:?} vs {v2:?}; expr `{e}` flattened to `{flat}`"
        );
    }

    #[test]
    fn flatten_is_idempotent(a in arb_classad(), e in arb_expr()) {
        let policy = EvalPolicy::default();
        let once = classad::flatten::flatten(&e, &a, &policy);
        let twice = classad::flatten::flatten(&once, &a, &policy);
        prop_assert_eq!(&once, &twice, "flatten(flatten(e)) != flatten(e) for `{}`", e);
    }

    #[test]
    fn and_or_are_commutative(a in arb_bool3(), b in arb_bool3()) {
        use classad::value::{combine_and, combine_or};
        prop_assert!(combine_and(&a, &b).same_as(&combine_and(&b, &a)));
        prop_assert!(combine_or(&a, &b).same_as(&combine_or(&b, &a)));
    }

    #[test]
    fn de_morgan_holds_in_three_valued_logic(a in arb_bool3(), b in arb_bool3()) {
        use classad::value::{combine_and, combine_or, logical_not};
        // !(a && b) == !a || !b, and dually.
        let lhs = logical_not(&combine_and(&a, &b));
        let rhs = combine_or(&logical_not(&a), &logical_not(&b));
        prop_assert!(lhs.same_as(&rhs), "{lhs:?} vs {rhs:?}");
        let lhs = logical_not(&combine_or(&a, &b));
        let rhs = combine_and(&logical_not(&a), &logical_not(&b));
        prop_assert!(lhs.same_as(&rhs));
    }

    #[test]
    fn is_always_definite(ad in arb_classad(), l in arb_expr(), r in arb_expr()) {
        // `is`/`isnt` never yield undefined or error, whatever the operands.
        let policy = EvalPolicy::default();
        let is_e = Expr::bin(BinOp::Is, l.clone(), r.clone());
        let isnt_e = Expr::bin(BinOp::Isnt, l, r);
        let a = ad.eval_expr(&is_e, &policy);
        let b = ad.eval_expr(&isnt_e, &policy);
        prop_assert!(matches!(a, Value::Bool(_)), "{a:?}");
        prop_assert!(matches!(b, Value::Bool(_)), "{b:?}");
        // And they are complementary.
        prop_assert_eq!(a.as_bool().unwrap(), !b.as_bool().unwrap());
    }

    #[test]
    fn strict_comparison_on_missing_is_undefined(name in arb_attr_name(), v in any::<i64>()) {
        // For any attribute name not present in the empty ad, the paper's
        // strictness rules make every comparison undefined.
        let ad = ClassAd::new();
        let policy = EvalPolicy::default();
        for op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne] {
            let e = Expr::bin(op, Expr::attr(&name), Expr::int(v));
            prop_assert!(ad.eval_expr(&e, &policy).is_undefined());
        }
    }

    #[test]
    fn symmetric_match_is_symmetric(a in arb_classad(), b in arb_classad()) {
        use classad::{symmetric_match, MatchConventions};
        let policy = EvalPolicy::default();
        let conv = MatchConventions::default();
        prop_assert_eq!(
            symmetric_match(&a, &b, &policy, &conv),
            symmetric_match(&b, &a, &policy, &conv)
        );
    }

    #[test]
    fn traced_match_agrees_with_plain_predicates(a in arb_classad(), b in arb_classad()) {
        // The tracing evaluator is advertised as a pure explanation layer:
        // for ANY pair of ads its verdict must equal the plain predicate's,
        // and a reason must be present exactly when the verdict is "no".
        use classad::{
            constraint_holds, symmetric_match, traced_constraint_holds,
            traced_symmetric_match, MatchConventions, RejectSide,
        };
        let policy = EvalPolicy::default();
        let conv = MatchConventions::default();
        let t = traced_symmetric_match(&a, &b, &policy, &conv);
        prop_assert_eq!(t.verdict, symmetric_match(&a, &b, &policy, &conv));
        prop_assert_eq!(t.reason.is_none(), t.verdict);
        let c = traced_constraint_holds(&a, &b, &policy, &conv, RejectSide::Request);
        prop_assert_eq!(c.verdict, constraint_holds(&a, &b, &policy, &conv));
        prop_assert_eq!(c.reason.is_none(), c.verdict);
    }

    #[test]
    fn rank_is_always_finite(a in arb_classad(), b in arb_classad()) {
        use classad::{rank_of, MatchConventions};
        let policy = EvalPolicy::default();
        let conv = MatchConventions::default();
        let r = rank_of(&a, &b, &policy, &conv);
        prop_assert!(r.is_finite());
    }

    #[test]
    fn case_insensitive_lookup(name in arb_attr_name(), v in any::<i64>()) {
        let mut ad = ClassAd::new();
        ad.set(name.as_str(), Expr::int(v));
        let upper = name.to_ascii_uppercase();
        let lower = name.to_ascii_lowercase();
        prop_assert_eq!(ad.get_int(&upper), Some(v));
        prop_assert_eq!(ad.get_int(&lower), Some(v));
        prop_assert_eq!(ad.len(), 1);
    }

    #[test]
    fn insert_then_remove_restores(mut ad in arb_classad(), name in arb_attr_name()) {
        let had = ad.contains(&name);
        prop_assume!(!had);
        let before = ad.clone();
        ad.set(name.as_str(), Expr::int(1));
        prop_assert!(ad.contains(&name));
        ad.remove(&name);
        prop_assert_eq!(ad, before);
    }
}

// ---------------------------------------------------------------------------
// Front-end robustness: arbitrary input must never panic
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn lexer_never_panics(src in "\\PC{0,200}") {
        let _ = classad::lexer::tokenize(&src);
    }

    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = parse_expr(&src);
        let _ = parse_classad(&src);
        let _ = classad::parse_classads(&src);
    }

    #[test]
    fn parser_never_panics_on_dense_punctuation(
        src in proptest::collection::vec(
            prop_oneof![
                Just("["), Just("]"), Just("{"), Just("}"), Just("("), Just(")"),
                Just(";"), Just(","), Just("="), Just("=="), Just("?"), Just(":"),
                Just("&&"), Just("||"), Just("."), Just("x"), Just("1"), Just("\""),
                Just("\\"), Just("self"), Just("other"), Just("undefined"),
            ],
            0..60,
        )
    ) {
        let joined = src.concat();
        let _ = parse_expr(&joined);
        let _ = parse_classad(&joined);
    }

    #[test]
    fn json_importer_never_panics(src in "\\PC{0,200}") {
        let _ = classad::json::from_json(&src);
    }

    #[test]
    fn regex_engine_never_panics(pat in "\\PC{0,40}", text in "\\PC{0,60}") {
        if let Ok(re) = classad::regex::Regex::new(&pat, classad::regex::RegexOptions::default()) {
            let _ = re.is_match(&text);
        }
    }

    #[test]
    fn whatever_parses_reprints_and_reparses(src in "\\PC{0,120}") {
        // Anything the parser accepts must round-trip through the printer.
        if let Ok(e) = parse_expr(&src) {
            let printed = e.to_string();
            let back = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("accepted `{src}`, printed `{printed}`, reparse failed: {err}"));
            prop_assert_eq!(e, back);
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluator scope/environment properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pair_evaluation_never_panics(a in arb_classad(), b in arb_classad(), e in arb_expr()) {
        let policy = EvalPolicy::default();
        let mut ev = Evaluator::pair(&a, &b, &policy);
        let _ = ev.eval(&e, Side::Left);
        let mut ev = Evaluator::pair(&a, &b, &policy);
        let _ = ev.eval(&e, Side::Right);
    }

    #[test]
    fn self_lookup_beats_other(name in arb_attr_name(), x in any::<i64>(), y in any::<i64>()) {
        prop_assume!(x != y);
        let mut a = ClassAd::new();
        a.set(name.as_str(), Expr::int(x));
        let mut b = ClassAd::new();
        b.set(name.as_str(), Expr::int(y));
        let policy = EvalPolicy::default();
        let mut ev = Evaluator::pair(&a, &b, &policy);
        let got = ev.eval(&Expr::attr(&name), Side::Left);
        prop_assert_eq!(got, Value::Int(x), "bare name must resolve in self first");
        let mut ev = Evaluator::pair(&a, &b, &policy);
        let got = ev.eval(&Expr::other(&name), Side::Left);
        prop_assert_eq!(got, Value::Int(y));
    }
}

// ---------------------------------------------------------------------------
// Deterministic regression corpus (found by earlier proptest runs or
// interesting by construction)
// ---------------------------------------------------------------------------

#[test]
fn regression_corpus_roundtrips() {
    let cases = [
        "-9223372036854775808",
        "0.0",
        "-0.0",
        "{ {}, { {} } }",
        "[ a1 = [ b1 = { undefined, error } ] ]",
        "x1 is undefined isnt error",
        "a1[b1[c1[0]]]",
        "(a1 ? b1 : c1) ? d1 : e1",
        "1 - -1",
        "- -1",
        "!-~+x1",
    ];
    for src in cases {
        let e = parse_expr(src).unwrap_or_else(|err| panic!("{src}: {err}"));
        let printed = e.to_string();
        let back = parse_expr(&printed).unwrap_or_else(|err| panic!("{printed}: {err}"));
        assert_eq!(e, back, "{src} -> {printed}");
    }
}

#[test]
fn shared_subexpressions_evaluate_consistently() {
    // Arc-shared expressions must be safe to evaluate from multiple ads.
    let shared: Arc<Expr> = Arc::new(parse_expr("Base * 2").unwrap());
    let mut a = ClassAd::new();
    a.insert(AttrName::new("Score"), shared.clone());
    a.set("Base", Expr::int(3));
    let mut b = ClassAd::new();
    b.insert(AttrName::new("Score"), shared);
    b.set("Base", Expr::int(5));
    let policy = EvalPolicy::default();
    assert_eq!(a.eval_attr("Score", &policy), Value::Int(6));
    assert_eq!(b.eval_attr("Score", &policy), Value::Int(10));
}
