//! Focused semantic conformance tests: a table-driven matrix of
//! expression → expected value cases, covering the corners the paper's
//! §3.1 prose pins down and the choices documented in
//! `docs/classad-language.md`.

use classad::{parse_classad, parse_expr, ClassAd, EvalPolicy, Value};

fn eval_in(ad_src: &str, expr_src: &str) -> Value {
    let ad = parse_classad(ad_src).unwrap_or_else(|e| panic!("ad `{ad_src}`: {e}"));
    let e = parse_expr(expr_src).unwrap_or_else(|e| panic!("expr `{expr_src}`: {e}"));
    ad.eval_expr(&e, &EvalPolicy::default())
}

fn check_table(ad: &str, cases: &[(&str, Value)]) {
    for (src, want) in cases {
        let got = eval_in(ad, src);
        assert!(
            got.same_as(want),
            "in {ad}: `{src}` evaluated to {got:?}, expected {want:?}"
        );
    }
}

const U: Value = Value::Undefined;
const E: Value = Value::Error;
fn b(v: bool) -> Value {
    Value::Bool(v)
}
fn i(v: i64) -> Value {
    Value::Int(v)
}
fn r(v: f64) -> Value {
    Value::Real(v)
}
fn s(v: &str) -> Value {
    Value::str(v)
}

#[test]
fn arithmetic_matrix() {
    check_table(
        "[]",
        &[
            ("3 + 4 * 2", i(11)),
            ("(3 + 4) * 2", i(14)),
            ("7 / 2", i(3)),
            ("7 % 2", i(1)),
            ("-7 / 2", i(-3)),
            ("7.0 / 2", r(3.5)),
            ("7 / 2.0", r(3.5)),
            ("2 + true", i(3)),
            ("true * 10 + false", i(10)),
            ("1 / 0", E),
            ("1 % 0", E),
            ("1.0 / 0.0", E),
            ("9223372036854775807 + 1", E),
            ("-9223372036854775807 - 2", E),
            ("1 + \"s\"", E),
            ("1 + undefined", U),
            ("undefined + error", E),
            ("-(3)", i(-3)),
            ("+3.5", r(3.5)),
            ("+\"s\"", E),
            ("~0", i(-1)),
            ("~0.0", E),
        ],
    );
}

#[test]
fn comparison_matrix() {
    check_table(
        "[]",
        &[
            ("1 < 2", b(true)),
            ("2 <= 2", b(true)),
            ("1 > 2", b(false)),
            ("2 >= 3", b(false)),
            ("1 == 1.0", b(true)),
            ("1 != 1.0", b(false)),
            (r#""INTEL" == "intel""#, b(true)),
            (r#""a" < "B""#, b(true)),
            (r#""a" == 1"#, E),
            ("true == true", b(true)),
            ("true < false", E),
            ("{1} == {1}", E),
            ("[x=1] == [x=1]", E),
            ("undefined == undefined", U),
            ("error == error", E),
        ],
    );
}

#[test]
fn meta_equality_matrix() {
    check_table(
        "[]",
        &[
            ("undefined is undefined", b(true)),
            ("error is error", b(true)),
            ("undefined is error", b(false)),
            ("1 is 1", b(true)),
            ("1 is 1.0", b(false)),
            (r#""a" is "A""#, b(false)),
            (r#""a" is "a""#, b(true)),
            ("{1, 2} is {1, 2}", b(true)),
            ("{1, 2} is {2, 1}", b(false)),
            ("[x = 1] is [X = 1]", b(true)),
            ("[x = 1] is [x = 2]", b(false)),
            ("1 isnt 2", b(true)),
            ("(1/0) is error", b(true)),
            ("Missing is undefined", b(true)),
        ],
    );
}

#[test]
fn logic_matrix() {
    check_table(
        "[]",
        &[
            ("true && true", b(true)),
            ("true && false", b(false)),
            ("false && (1/0 == 1)", b(false)),
            ("(1/0 == 1) && false", b(false)),
            ("Missing && false", b(false)),
            ("Missing && true", U),
            ("Missing || true", b(true)),
            ("true || (1/0 == 1)", b(true)),
            ("(1/0 == 1) || true", b(true)),
            ("Missing || false", U),
            ("(1/0 == 1) || false", E),
            ("1 && true", E),
            ("1 && false", b(false)),
            ("!Missing", U),
            ("!(1/0 == 1)", E),
            ("!1", E),
        ],
    );
}

#[test]
fn conditional_matrix() {
    check_table(
        "[flag = true]",
        &[
            ("flag ? 1 : 2", i(1)),
            ("!flag ? 1 : 2", i(2)),
            ("Missing ? 1 : 2", U),
            ("(1/0 == 1) ? 1 : 2", E),
            ("5 ? 1 : 2", E),
            // Branches are lazy.
            ("flag ? 1 : (1/0)", i(1)),
            ("!flag ? (1/0) : 2", i(2)),
            // Right-associativity.
            ("false ? 1 : true ? 2 : 3", i(2)),
        ],
    );
}

#[test]
fn reference_matrix() {
    let ad = r#"[
        A = 10;
        B = A * 2;
        Self_B = self.B;
        Nested = [ inner = 5; doubled = inner ];
        Xs = { 1, 2, 3 };
        Cycle = Cycle + 1;
        MutualA = MutualB; MutualB = MutualA;
    ]"#;
    check_table(
        ad,
        &[
            ("A", i(10)),
            ("B", i(20)),
            ("self.B", i(20)),
            ("Self_B", i(20)),
            ("other.A", U),
            ("Nested.inner", i(5)),
            ("Nested.missing", U),
            ("Nested[\"inner\"]", i(5)),
            ("Xs[0]", i(1)),
            ("Xs[2]", i(3)),
            ("Xs[3]", E),
            ("Xs[-1]", E),
            ("Xs[\"a\"]", E),
            ("Missing[0]", U),
            ("A.x", E),
            ("Cycle", E),
            ("MutualA", E),
            // Record constructors evaluate eagerly in the ENCLOSING
            // context (documented simplification): the sibling `inner`
            // is not visible from inside the record, so `doubled` folds
            // to undefined at construction.
            ("Nested.doubled", U),
        ],
    );
}

#[test]
fn string_collation_edges() {
    check_table(
        "[]",
        &[
            (r#""" == """#, b(true)),
            (r#""" < "a""#, b(true)),
            (r#""abc" < "abd""#, b(true)),
            (r#""ABC" == "abc""#, b(true)),
            (r#"strcmp("", "") == 0"#, b(true)),
            (r#"size("")"#, i(0)),
            (r#"substr("abc", 10)"#, s("")),
            (r#"substr("abc", -10)"#, s("abc")),
            (r#"substr("abc", 1, 0)"#, s("")),
        ],
    );
}

#[test]
fn mixed_feature_expressions() {
    let machine = r#"[
        Mips = 104; Memory = 64; Arch = "INTEL";
        Names = { "leonardo", "raphael" };
        Scores = { 10, 20, 30 };
    ]"#;
    check_table(
        machine,
        &[
            ("sum(Scores) / size(Scores)", i(20)),
            ("avg(Scores)", r(20.0)),
            ("max(Scores) - min(Scores)", i(20)),
            (r#"member("leonardo", Names) && Mips > 100"#, b(true)),
            (r#"anyCompare(">", Scores, 25)"#, b(true)),
            (r#"allCompare(">", Scores, 25)"#, b(false)),
            (r#"regexp("^leo", Names[0])"#, b(true)),
            (r#"join("-", split("a b c"))"#, s("a-b-c")),
            (
                r#"ifThenElse(Memory >= 64, strcat(Arch, "/big"), strcat(Arch, "/small"))"#,
                s("INTEL/big"),
            ),
            ("quantize(Mips, 50)", i(150)),
            ("pow(2, 8) - 1", i(255)),
            ("int(real(Memory)) is Memory", b(true)),
        ],
    );
}

#[test]
fn whole_ad_never_panics_on_weird_but_legal_input() {
    // Every attribute of this ad evaluates to *something*.
    let ad_src = r#"[
        a = b; b = c; c = a;                      // 3-cycle
        d = {{{{1}}}};                            // deep lists
        e = [x = [y = [z = 1]]];                  // deep records
        f = 1 ? 1 : 1;                            // error condition
        g = member(1, 2);                         // type error
        h = unknownFn(1);                         // unknown function
        i = "x" + 1;                              // type error
        j = self.j;                               // self-cycle via scope
    ]"#;
    let ad: ClassAd = parse_classad(ad_src).unwrap();
    let policy = EvalPolicy::default();
    for name in ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"] {
        let _ = ad.eval_attr(name, &policy);
    }
    assert_eq!(ad.eval_attr("a", &policy), E);
    assert_eq!(ad.eval_attr("f", &policy), E);
    assert_eq!(ad.eval_attr("g", &policy), E);
    assert_eq!(ad.eval_attr("h", &policy), E);
    assert_eq!(ad.eval_attr("j", &policy), E);
}
