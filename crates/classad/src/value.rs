//! Runtime values and the strict operator semantics of the ClassAd language.
//!
//! The paper (§3.1) specifies a three-valued logic: references to missing
//! attributes evaluate to the constant `undefined`; most operators are
//! *strict* with respect to `undefined` (and to `error`), while `&&`, `||`,
//! `is` and `isnt` are non-strict. Runtime failures (type mismatches,
//! division by zero, unknown functions) produce the `error` value rather
//! than aborting evaluation, so one malformed ad can never take down a
//! matchmaker.
//!
//! Semantics implemented here, in decreasing precedence of the special
//! values: if any operand of a strict operator is `error` the result is
//! `error`; otherwise if any operand is `undefined` the result is
//! `undefined`; otherwise the operation applies (or yields `error` on a type
//! mismatch).

use crate::ast::BinOp;
use crate::classad::ClassAd;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A runtime ClassAd value.
#[derive(Debug, Clone)]
pub enum Value {
    /// The distinguished `undefined` constant (missing information).
    Undefined,
    /// The distinguished `error` constant (contradictory/ill-typed
    /// information).
    Error,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// IEEE-754 double.
    Real(f64),
    /// Immutable string (cheap to clone).
    Str(Arc<str>),
    /// List of values.
    List(Arc<Vec<Value>>),
    /// Nested classad.
    Ad(Arc<ClassAd>),
}

/// Coarse classification of a value, used in diagnostics and type tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// `undefined`
    Undefined,
    /// `error`
    Error,
    /// Boolean
    Bool,
    /// Integer
    Int,
    /// Real
    Real,
    /// String
    String,
    /// List
    List,
    /// ClassAd
    Ad,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Undefined => "undefined",
            ValueKind::Error => "error",
            ValueKind::Bool => "boolean",
            ValueKind::Int => "integer",
            ValueKind::Real => "real",
            ValueKind::String => "string",
            ValueKind::List => "list",
            ValueKind::Ad => "classad",
        };
        f.write_str(s)
    }
}

/// A numeric value after int/real unification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Integer-typed number.
    Int(i64),
    /// Real-typed number.
    Real(f64),
}

impl Num {
    /// The value as an `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Real(r) => r,
        }
    }
}

impl Value {
    /// Construct a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Construct a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// The value's kind.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Undefined => ValueKind::Undefined,
            Value::Error => ValueKind::Error,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Real(_) => ValueKind::Real,
            Value::Str(_) => ValueKind::String,
            Value::List(_) => ValueKind::List,
            Value::Ad(_) => ValueKind::Ad,
        }
    }

    /// `true` iff this is the `undefined` constant.
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    /// `true` iff this is the `error` constant.
    pub fn is_error(&self) -> bool {
        matches!(self, Value::Error)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload (integers widen), if this is a number.
    pub fn as_num(&self) -> Option<Num> {
        match self {
            Value::Int(i) => Some(Num::Int(*i)),
            Value::Real(r) => Some(Num::Real(*r)),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_num().map(Num::as_f64)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The list payload, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// The classad payload, if this is a nested ad.
    pub fn as_ad(&self) -> Option<&Arc<ClassAd>> {
        match self {
            Value::Ad(a) => Some(a),
            _ => None,
        }
    }

    /// Identity ("same value") comparison used by `is`/`isnt`: never
    /// `undefined` or `error`; type-and-value equality with **case-sensitive**
    /// strings; `undefined is undefined` and `error is error` are `true`.
    /// Lists and ads compare structurally. An integer is never identical to a
    /// real (`1 is 1.0` is `false`), matching the operator's "same type, same
    /// value" contract.
    pub fn same_as(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) => true,
            (Value::Error, Value::Error) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.same_as(y))
            }
            (Value::Ad(a), Value::Ad(b)) => ads_same(a, b),
            _ => false,
        }
    }
}

fn ads_same(a: &ClassAd, b: &ClassAd) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().all(|(name, expr)| match b.get(name.canonical()) {
        Some(other_expr) => **expr == **other_expr,
        None => false,
    })
}

impl PartialEq for Value {
    /// Structural equality for tests and collections; `same_as` semantics.
    fn eq(&self, other: &Self) -> bool {
        self.same_as(other)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

/// Outcome of the strict-value screen shared by all strict operators.
enum Screen {
    /// An operand was `error`.
    Error,
    /// An operand was `undefined` (and none were `error`).
    Undefined,
    /// Both operands are ordinary values.
    Go,
}

fn screen(a: &Value, b: &Value) -> Screen {
    if a.is_error() || b.is_error() {
        Screen::Error
    } else if a.is_undefined() || b.is_undefined() {
        Screen::Undefined
    } else {
        Screen::Go
    }
}

/// Three-valued conjunction (symmetric, non-strict):
/// `false && x == false` for every `x`, including `error`.
pub fn combine_and(a: &Value, b: &Value) -> Value {
    let fa = definite_bool(a);
    let fb = definite_bool(b);
    match (fa, fb) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        _ => {
            if bool_rank(a) == BoolRank::Error || bool_rank(b) == BoolRank::Error {
                Value::Error
            } else if bool_rank(a) == BoolRank::Undefined || bool_rank(b) == BoolRank::Undefined {
                Value::Undefined
            } else {
                Value::Bool(true)
            }
        }
    }
}

/// Three-valued disjunction (symmetric, non-strict):
/// `true || x == true` for every `x`, including `error`.
pub fn combine_or(a: &Value, b: &Value) -> Value {
    let fa = definite_bool(a);
    let fb = definite_bool(b);
    match (fa, fb) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        _ => {
            if bool_rank(a) == BoolRank::Error || bool_rank(b) == BoolRank::Error {
                Value::Error
            } else if bool_rank(a) == BoolRank::Undefined || bool_rank(b) == BoolRank::Undefined {
                Value::Undefined
            } else {
                Value::Bool(false)
            }
        }
    }
}

#[derive(PartialEq)]
enum BoolRank {
    Bool,
    Undefined,
    Error,
}

fn bool_rank(v: &Value) -> BoolRank {
    match v {
        Value::Bool(_) => BoolRank::Bool,
        Value::Undefined => BoolRank::Undefined,
        // Non-boolean operands of a logical operator are type errors.
        _ => BoolRank::Error,
    }
}

fn definite_bool(v: &Value) -> Option<bool> {
    v.as_bool()
}

/// Logical negation: `!undefined == undefined`, `!error == error`,
/// non-booleans are `error`.
pub fn logical_not(v: &Value) -> Value {
    match v {
        Value::Bool(b) => Value::Bool(!b),
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

/// Arithmetic negation.
pub fn arith_neg(v: &Value) -> Value {
    match v {
        Value::Int(i) => match i.checked_neg() {
            Some(n) => Value::Int(n),
            None => Value::Error,
        },
        Value::Real(r) => Value::Real(-r),
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

/// Arithmetic identity `+e`: numbers pass through, everything else is
/// screened exactly like negation.
pub fn arith_pos(v: &Value) -> Value {
    match v {
        Value::Int(_) | Value::Real(_) => v.clone(),
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

/// Bitwise complement (integers only).
pub fn bit_not(v: &Value) -> Value {
    match v {
        Value::Int(i) => Value::Int(!i),
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

/// Apply a *strict* binary operator (everything except `&&`, `||`, `is`,
/// `isnt`, which have dedicated non-strict entry points).
pub fn apply_strict_binary(op: BinOp, a: &Value, b: &Value) -> Value {
    match screen(a, b) {
        Screen::Error => return Value::Error,
        Screen::Undefined => return Value::Undefined,
        Screen::Go => {}
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, a, b),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => relational(op, a, b),
        BinOp::Eq | BinOp::Ne => equality(op, a, b),
        BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr | BinOp::Ushr => {
            bitwise(op, a, b)
        }
        BinOp::And | BinOp::Or | BinOp::Is | BinOp::Isnt => {
            unreachable!("non-strict operators have dedicated entry points")
        }
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Value {
    // Booleans promote to integers (true = 1) in arithmetic, as in classic
    // classads; Figure 1's `member(...) * 10 + member(...)` rank depends
    // on this.
    let promote = |v: &Value| match v {
        Value::Bool(b) => Some(Num::Int(*b as i64)),
        _ => v.as_num(),
    };
    let (Some(x), Some(y)) = (promote(a), promote(b)) else {
        return Value::Error;
    };
    match (x, y) {
        (Num::Int(i), Num::Int(j)) => int_arith(op, i, j),
        _ => real_arith(op, x.as_f64(), y.as_f64()),
    }
}

fn int_arith(op: BinOp, i: i64, j: i64) -> Value {
    let r = match op {
        BinOp::Add => i.checked_add(j),
        BinOp::Sub => i.checked_sub(j),
        BinOp::Mul => i.checked_mul(j),
        BinOp::Div => {
            if j == 0 {
                None
            } else {
                i.checked_div(j)
            }
        }
        BinOp::Mod => {
            if j == 0 {
                None
            } else {
                i.checked_rem(j)
            }
        }
        _ => unreachable!(),
    };
    // Overflow and division by zero are runtime errors, not panics.
    match r {
        Some(v) => Value::Int(v),
        None => Value::Error,
    }
}

fn real_arith(op: BinOp, x: f64, y: f64) -> Value {
    match op {
        BinOp::Add => Value::Real(x + y),
        BinOp::Sub => Value::Real(x - y),
        BinOp::Mul => Value::Real(x * y),
        BinOp::Div => {
            if y == 0.0 {
                Value::Error
            } else {
                Value::Real(x / y)
            }
        }
        BinOp::Mod => {
            if y == 0.0 {
                Value::Error
            } else {
                Value::Real(x % y)
            }
        }
        _ => unreachable!(),
    }
}

fn relational(op: BinOp, a: &Value, b: &Value) -> Value {
    let ord = match (a, b) {
        (Value::Str(x), Value::Str(y)) => case_insensitive_cmp(x, y),
        _ => match (a.as_num(), b.as_num()) {
            (Some(x), Some(y)) => match x.as_f64().partial_cmp(&y.as_f64()) {
                Some(o) => o,
                // NaN comparisons are errors rather than silently false.
                None => return Value::Error,
            },
            _ => return Value::Error,
        },
    };
    let r = match op {
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!(),
    };
    Value::Bool(r)
}

/// Case-insensitive (ASCII) string ordering, the language's native string
/// collation.
pub fn case_insensitive_cmp(a: &str, b: &str) -> Ordering {
    let mut ai = a.bytes().map(|c| c.to_ascii_lowercase());
    let mut bi = b.bytes().map(|c| c.to_ascii_lowercase());
    loop {
        match (ai.next(), bi.next()) {
            (None, None) => return Ordering::Equal,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (Some(x), Some(y)) => match x.cmp(&y) {
                Ordering::Equal => continue,
                o => return o,
            },
        }
    }
}

fn equality(op: BinOp, a: &Value, b: &Value) -> Value {
    let eq = match (a, b) {
        (Value::Str(x), Value::Str(y)) => case_insensitive_cmp(x, y) == Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => match (a.as_num(), b.as_num()) {
            (Some(x), Some(y)) => x.as_f64() == y.as_f64(),
            // Lists, ads, and cross-type comparisons are not `==`-comparable.
            _ => return Value::Error,
        },
    };
    Value::Bool(if op == BinOp::Eq { eq } else { !eq })
}

fn bitwise(op: BinOp, a: &Value, b: &Value) -> Value {
    let (Some(i), Some(j)) = (a.as_int(), b.as_int()) else {
        return Value::Error;
    };
    let v = match op {
        BinOp::BitAnd => i & j,
        BinOp::BitOr => i | j,
        BinOp::BitXor => i ^ j,
        BinOp::Shl | BinOp::Shr | BinOp::Ushr => {
            if !(0..64).contains(&j) {
                return Value::Error;
            }
            match op {
                BinOp::Shl => ((i as u64) << j) as i64,
                BinOp::Shr => i >> j,
                BinOp::Ushr => ((i as u64) >> j) as i64,
                _ => unreachable!(),
            }
        }
        _ => unreachable!(),
    };
    Value::Int(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp::*;

    fn i(v: i64) -> Value {
        Value::Int(v)
    }
    fn r(v: f64) -> Value {
        Value::Real(v)
    }
    fn s(v: &str) -> Value {
        Value::str(v)
    }
    fn b(v: bool) -> Value {
        Value::Bool(v)
    }
    const U: Value = Value::Undefined;
    const E: Value = Value::Error;

    #[test]
    fn arithmetic_int() {
        assert_eq!(apply_strict_binary(Add, &i(2), &i(3)), i(5));
        assert_eq!(apply_strict_binary(Sub, &i(2), &i(3)), i(-1));
        assert_eq!(apply_strict_binary(Mul, &i(4), &i(3)), i(12));
        assert_eq!(apply_strict_binary(Div, &i(7), &i(2)), i(3));
        assert_eq!(apply_strict_binary(Mod, &i(7), &i(2)), i(1));
    }

    #[test]
    fn arithmetic_mixed_promotes_to_real() {
        assert_eq!(apply_strict_binary(Add, &i(1), &r(0.5)), r(1.5));
        assert_eq!(apply_strict_binary(Div, &i(1), &r(2.0)), r(0.5));
        assert_eq!(apply_strict_binary(Div, &r(1.0), &i(4)), r(0.25));
    }

    #[test]
    fn bool_promotes_in_arithmetic() {
        // Figure 1: Rank = member(...)*10 + member(...).
        assert_eq!(apply_strict_binary(Mul, &b(true), &i(10)), i(10));
        assert_eq!(apply_strict_binary(Add, &i(10), &b(false)), i(10));
        assert_eq!(apply_strict_binary(Add, &b(true), &b(true)), i(2));
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(apply_strict_binary(Div, &i(1), &i(0)), E);
        assert_eq!(apply_strict_binary(Mod, &i(1), &i(0)), E);
        assert_eq!(apply_strict_binary(Div, &r(1.0), &r(0.0)), E);
    }

    #[test]
    fn int_overflow_is_error_not_panic() {
        assert_eq!(apply_strict_binary(Add, &i(i64::MAX), &i(1)), E);
        assert_eq!(apply_strict_binary(Mul, &i(i64::MAX), &i(2)), E);
        assert_eq!(arith_neg(&i(i64::MIN)), E);
    }

    #[test]
    fn strict_undefined_propagation() {
        // Paper §3.1: comparison operators are strict; all of these are
        // undefined when one operand is undefined.
        for op in [Gt, Eq, Ne, Lt, Ge, Le, Add, Sub, Mul, Div, Mod] {
            assert_eq!(apply_strict_binary(op, &U, &i(32)), U, "{op:?}");
            assert_eq!(apply_strict_binary(op, &i(32), &U), U, "{op:?}");
        }
    }

    #[test]
    fn error_beats_undefined() {
        assert_eq!(apply_strict_binary(Add, &E, &U), E);
        assert_eq!(apply_strict_binary(Eq, &U, &E), E);
    }

    #[test]
    fn string_equality_case_insensitive() {
        assert_eq!(apply_strict_binary(Eq, &s("INTEL"), &s("intel")), b(true));
        assert_eq!(apply_strict_binary(Ne, &s("INTEL"), &s("intel")), b(false));
        assert_eq!(apply_strict_binary(Eq, &s("a"), &s("b")), b(false));
    }

    #[test]
    fn string_ordering_case_insensitive() {
        assert_eq!(apply_strict_binary(Lt, &s("Apple"), &s("banana")), b(true));
        assert_eq!(apply_strict_binary(Ge, &s("ZED"), &s("alpha")), b(true));
        assert_eq!(apply_strict_binary(Le, &s("same"), &s("SAME")), b(true));
    }

    #[test]
    fn cross_type_comparison_is_error() {
        assert_eq!(apply_strict_binary(Eq, &s("1"), &i(1)), E);
        assert_eq!(apply_strict_binary(Lt, &b(true), &b(false)), E);
        assert_eq!(
            apply_strict_binary(Eq, &Value::list(vec![]), &Value::list(vec![])),
            E
        );
    }

    #[test]
    fn bool_equality_allowed() {
        assert_eq!(apply_strict_binary(Eq, &b(true), &b(true)), b(true));
        assert_eq!(apply_strict_binary(Ne, &b(true), &b(false)), b(true));
    }

    #[test]
    fn nan_relational_is_error() {
        assert_eq!(apply_strict_binary(Lt, &r(f64::NAN), &r(1.0)), E);
    }

    #[test]
    fn and_truth_table() {
        // Kleene logic with error dominance except against definite false.
        assert_eq!(combine_and(&b(true), &b(true)), b(true));
        assert_eq!(combine_and(&b(true), &b(false)), b(false));
        assert_eq!(combine_and(&b(false), &U), b(false));
        assert_eq!(combine_and(&U, &b(false)), b(false));
        assert_eq!(combine_and(&b(false), &E), b(false));
        assert_eq!(combine_and(&E, &b(false)), b(false));
        assert_eq!(combine_and(&b(true), &U), U);
        assert_eq!(combine_and(&U, &U), U);
        assert_eq!(combine_and(&b(true), &E), E);
        assert_eq!(combine_and(&U, &E), E);
        // Non-boolean operand acts like error.
        assert_eq!(combine_and(&i(1), &b(true)), E);
        assert_eq!(combine_and(&i(1), &b(false)), b(false));
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(combine_or(&b(false), &b(false)), b(false));
        assert_eq!(combine_or(&b(true), &U), b(true));
        assert_eq!(combine_or(&U, &b(true)), b(true));
        assert_eq!(combine_or(&E, &b(true)), b(true));
        assert_eq!(combine_or(&b(false), &U), U);
        assert_eq!(combine_or(&U, &E), E);
        assert_eq!(combine_or(&s("x"), &b(false)), E);
    }

    #[test]
    fn paper_nonstrict_example() {
        // "Mips >= 10 || Kflops >= 1000 evaluates to true whenever either
        // of the attributes exists and satisfies the indicated bound."
        let mips_missing = U; // Mips >= 10 with Mips undefined
        let kflops_ok = b(true);
        assert_eq!(combine_or(&mips_missing, &kflops_ok), b(true));
    }

    #[test]
    fn not_semantics() {
        assert_eq!(logical_not(&b(true)), b(false));
        assert_eq!(logical_not(&U), U);
        assert_eq!(logical_not(&E), E);
        assert_eq!(logical_not(&i(1)), E);
    }

    #[test]
    fn same_as_identity() {
        assert!(U.same_as(&U));
        assert!(E.same_as(&E));
        assert!(!U.same_as(&E));
        assert!(s("a").same_as(&s("a")));
        // `is` strings are case-SENSITIVE, unlike `==`.
        assert!(!s("a").same_as(&s("A")));
        // `is` does not unify int and real.
        assert!(!i(1).same_as(&r(1.0)));
        assert!(Value::list(vec![i(1), s("x")]).same_as(&Value::list(vec![i(1), s("x")])));
        assert!(!Value::list(vec![i(1)]).same_as(&Value::list(vec![i(2)])));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(
            apply_strict_binary(BitAnd, &i(0b1100), &i(0b1010)),
            i(0b1000)
        );
        assert_eq!(
            apply_strict_binary(BitOr, &i(0b1100), &i(0b1010)),
            i(0b1110)
        );
        assert_eq!(
            apply_strict_binary(BitXor, &i(0b1100), &i(0b1010)),
            i(0b0110)
        );
        assert_eq!(apply_strict_binary(Shl, &i(1), &i(4)), i(16));
        assert_eq!(apply_strict_binary(Shr, &i(-8), &i(1)), i(-4));
        assert_eq!(apply_strict_binary(Ushr, &i(-1), &i(60)), i(15));
        assert_eq!(apply_strict_binary(Shl, &i(1), &i(64)), E);
        assert_eq!(apply_strict_binary(Shl, &i(1), &i(-1)), E);
        assert_eq!(apply_strict_binary(BitAnd, &i(1), &r(1.0)), E);
    }

    #[test]
    fn unary_arith() {
        assert_eq!(arith_neg(&i(5)), i(-5));
        assert_eq!(arith_neg(&r(2.5)), r(-2.5));
        assert_eq!(arith_neg(&U), U);
        assert_eq!(arith_neg(&s("x")), E);
        assert_eq!(arith_pos(&i(5)), i(5));
        assert_eq!(arith_pos(&s("x")), E);
        assert_eq!(bit_not(&i(0)), i(-1));
        assert_eq!(bit_not(&r(1.0)), E);
    }

    #[test]
    fn kind_reporting() {
        assert_eq!(i(1).kind(), ValueKind::Int);
        assert_eq!(r(1.0).kind(), ValueKind::Real);
        assert_eq!(s("x").kind(), ValueKind::String);
        assert_eq!(U.kind(), ValueKind::Undefined);
        assert_eq!(Value::list(vec![]).kind(), ValueKind::List);
        assert_eq!(format!("{}", ValueKind::Ad), "classad");
    }

    #[test]
    fn accessors() {
        assert_eq!(i(3).as_f64(), Some(3.0));
        assert_eq!(r(0.5).as_f64(), Some(0.5));
        assert_eq!(s("x").as_f64(), None);
        assert_eq!(b(true).as_bool(), Some(true));
        assert_eq!(Value::list(vec![i(1)]).as_list().map(|l| l.len()), Some(1));
    }
}
