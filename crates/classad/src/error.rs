//! Error types for lexing, parsing, and evaluation.
//!
//! Lex and parse errors carry a [`Span`] pointing into the source text so
//! tools (and the diagnosis machinery in the `gangmatch` crate) can report
//! precise locations. Evaluation, by the paper's semantics, never fails
//! with `Err`: runtime problems are *values* (`undefined` and `error`), so
//! there is no evaluation-error type at all.

use std::fmt;

/// A half-open byte range into the source text, with 1-based line/column of
/// its start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned text.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned text.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number (in bytes) of `start`.
    pub col: u32,
}

impl Span {
    /// Create a span covering `start..end` at the given line/column.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The span covering both `self` and `other` (keeps `self`'s position).
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start,
            end: other.end.max(self.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced while tokenizing classad source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Where in the input the problem was found.
    pub span: Span,
    /// What went wrong.
    pub kind: LexErrorKind,
}

/// The specific category of lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexErrorKind {
    /// A byte that can never begin a token (e.g. `#`, `@`).
    UnexpectedChar(char),
    /// A string literal with no closing quote before end of input.
    UnterminatedString,
    /// A `/* ... */` comment with no closing `*/`.
    UnterminatedComment,
    /// A numeric literal that does not scan as an integer or real.
    MalformedNumber(String),
    /// A backslash escape inside a string that is not recognised.
    BadEscape(char),
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LexErrorKind::UnexpectedChar(c) => {
                write!(f, "{}: unexpected character {c:?}", self.span)
            }
            LexErrorKind::UnterminatedString => {
                write!(f, "{}: unterminated string literal", self.span)
            }
            LexErrorKind::UnterminatedComment => {
                write!(f, "{}: unterminated block comment", self.span)
            }
            LexErrorKind::MalformedNumber(s) => {
                write!(f, "{}: malformed numeric literal `{s}`", self.span)
            }
            LexErrorKind::BadEscape(c) => {
                write!(f, "{}: unknown string escape `\\{c}`", self.span)
            }
        }
    }
}

impl std::error::Error for LexError {}

/// An error produced while parsing a token stream into an expression or ad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where in the input the problem was found.
    pub span: Span,
    /// Human-readable description of what was expected/found.
    pub message: String,
}

impl ParseError {
    /// Construct a parse error at `span` with the given message.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        ParseError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// Render the error with a source snippet and caret, e.g.
    ///
    /// ```text
    /// error: expected `]`, found end of input
    ///   |
    /// 2 |     Memory = 64;
    ///   |                 ^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = format!(
            "error: {}
",
            self.message
        );
        let Some(line_text) = src.lines().nth(self.span.line.saturating_sub(1) as usize) else {
            return out;
        };
        let line_no = self.span.line.max(1);
        let gutter = line_no.to_string().len();
        out.push_str(&format!(
            "{:width$} |
",
            "",
            width = gutter
        ));
        out.push_str(&format!(
            "{line_no} | {line_text}
"
        ));
        // Column is byte-based; clamp the caret to the rendered line.
        let col = (self.span.col.saturating_sub(1) as usize).min(line_text.len());
        out.push_str(&format!(
            "{:width$} | {:col$}^
",
            "",
            "",
            width = gutter,
            col = col
        ));
        out
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            span: e.span,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(0, 3, 1, 1);
        let b = Span::new(10, 14, 2, 4);
        let j = a.to(b);
        assert_eq!(j.start, 0);
        assert_eq!(j.end, 14);
        assert_eq!(j.line, 1);
        assert_eq!(j.col, 1);
    }

    #[test]
    fn span_join_is_monotone_even_reversed() {
        let a = Span::new(10, 14, 2, 4);
        let b = Span::new(0, 3, 1, 1);
        let j = a.to(b);
        assert_eq!(j.end, 14, "end never shrinks");
    }

    #[test]
    fn display_formats() {
        let e = LexError {
            span: Span::new(5, 6, 2, 3),
            kind: LexErrorKind::UnexpectedChar('#'),
        };
        assert_eq!(e.to_string(), "2:3: unexpected character '#'");
        let p = ParseError::new(Span::new(0, 1, 1, 1), "expected `]`");
        assert_eq!(p.to_string(), "1:1: expected `]`");
    }

    #[test]
    fn render_points_at_the_problem() {
        let src = "[ Memory = 64;
  Arch == \"INTEL\" ]";
        let err = crate::parser::parse_classad(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.starts_with("error: "), "{rendered}");
        assert!(rendered.contains("2 |   Arch == "), "{rendered}");
        assert!(
            rendered.lines().last().unwrap().trim_end().ends_with('^'),
            "{rendered}"
        );
    }

    #[test]
    fn render_survives_out_of_range_span() {
        let err = ParseError::new(Span::new(999, 999, 40, 70), "synthetic");
        let rendered = err.render("short");
        assert!(rendered.contains("synthetic"));
    }

    #[test]
    fn lex_error_converts_to_parse_error() {
        let e = LexError {
            span: Span::new(0, 1, 1, 1),
            kind: LexErrorKind::UnterminatedString,
        };
        let p: ParseError = e.into();
        assert!(p.message.contains("unterminated string"));
    }
}
