//! Match-failure attribution: an opt-in tracing evaluation mode that
//! explains *why* a `Constraint` rejected a candidate.
//!
//! The paper (§5) names "why doesn't my job run?" diagnosis as a
//! first-class matchmaking concern. The plain predicates in [`crate::matching`]
//! answer only *whether* a pair matches; this module re-evaluates a failed
//! pairing and pins the verdict on the responsible sub-expression:
//!
//! * which side's constraint failed ([`RejectSide`]);
//! * for a definite `false`, the top-level conjunct that produced it
//!   ([`RejectReason::RequirementsFalse`]) — three-valued `&&` guarantees
//!   that a false conjunction contains a false conjunct;
//! * for an `undefined`, the attribute reference whose resolution failed
//!   ([`RejectReason::UndefinedAttr`]);
//! * for anything else (an `error`, or a non-boolean constraint value),
//!   [`RejectReason::EvalError`].
//!
//! Tracing is strictly additive: [`traced_constraint_holds`] and
//! [`traced_symmetric_match`] report the *same verdict* as
//! [`crate::matching::constraint_holds`] / [`crate::matching::symmetric_match`]
//! (a property the workspace proptests enforce), and the plain predicates
//! are untouched — matching pays nothing when attribution is off.
//!
//! [`RejectReason`] also carries the two scheduler-level outcomes a
//! negotiator layers on top of constraint evaluation — [`RejectReason::Busy`]
//! (claimed, not preemptible) and [`RejectReason::LostRank`] (compatible,
//! but the offer went to a better-ranked competitor) — so one taxonomy
//! spans the whole rejection space.

use crate::ast::{Expr, Scope};
use crate::classad::ClassAd;
use crate::eval::{EvalPolicy, Evaluator, Side};
use crate::matching::MatchConventions;
use crate::value::Value;
use std::fmt;

/// Longest clause/attribute text a [`RejectReason`] will carry. Reasons key
/// bounded-cardinality rejection tables and travel inside self-ads and
/// journal events, so their text must stay small no matter how large the
/// originating expression was.
const MAX_REASON_TEXT: usize = 96;

/// Which side of a bilateral match rejected the pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RejectSide {
    /// The customer/request ad's constraint (conventionally the left side).
    Request,
    /// The provider/offer ad's constraint.
    Offer,
}

impl RejectSide {
    /// Short lowercase label (`"request"` / `"offer"`).
    pub fn label(self) -> &'static str {
        match self {
            RejectSide::Request => "request",
            RejectSide::Offer => "offer",
        }
    }
}

impl fmt::Display for RejectSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a (request, offer) pairing was rejected.
///
/// The first three variants come from tracing constraint evaluation; the
/// last two are scheduler outcomes a negotiator records for pairings whose
/// constraints were mutually satisfied but that still produced no grant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RejectReason {
    /// A constraint evaluated to a definite `false`; `clause` is the
    /// (clipped) text of the first false top-level conjunct.
    RequirementsFalse {
        /// Whose constraint failed.
        side: RejectSide,
        /// Source text of the failing conjunct.
        clause: String,
    },
    /// A constraint evaluated to `undefined`; `attr` names the attribute
    /// reference that failed to resolve (matching treats `undefined` as
    /// rejection).
    UndefinedAttr {
        /// Whose constraint failed.
        side: RejectSide,
        /// The unresolved attribute (or, when no single reference could be
        /// blamed, the undefined conjunct's text).
        attr: String,
    },
    /// A constraint evaluated to `error` or to a non-boolean value.
    EvalError {
        /// Whose constraint failed.
        side: RejectSide,
    },
    /// Constraints were mutually satisfied, but the offer is claimed and
    /// not preemptible by this request.
    Busy,
    /// Constraints were mutually satisfied, but the offer was granted to a
    /// competing request this cycle.
    LostRank,
}

impl RejectReason {
    /// A compact single-line label, stable enough to key rejection tables
    /// and render in self-ads: e.g.
    /// `ReqFalse(request): other.Mips >= 1000` or `Undef(offer): gpus`.
    pub fn label(&self) -> String {
        match self {
            RejectReason::RequirementsFalse { side, clause } => {
                format!("ReqFalse({side}): {clause}")
            }
            RejectReason::UndefinedAttr { side, attr } => format!("Undef({side}): {attr}"),
            RejectReason::EvalError { side } => format!("EvalError({side})"),
            RejectReason::Busy => "Busy".to_string(),
            RejectReason::LostRank => "LostRank".to_string(),
        }
    }

    /// The coarse category name (`"RequirementsFalse"`, `"UndefinedAttr"`,
    /// `"EvalError"`, `"Busy"`, `"LostRank"`) — what per-cycle counters
    /// aggregate by.
    pub fn kind(&self) -> &'static str {
        match self {
            RejectReason::RequirementsFalse { .. } => "RequirementsFalse",
            RejectReason::UndefinedAttr { .. } => "UndefinedAttr",
            RejectReason::EvalError { .. } => "EvalError",
            RejectReason::Busy => "Busy",
            RejectReason::LostRank => "LostRank",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The result of a traced match evaluation: the same verdict the plain
/// predicate returns, plus — when the verdict is "no match" — the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalTrace {
    /// Exactly what [`crate::matching::constraint_holds`] (resp.
    /// [`crate::matching::symmetric_match`]) returns for the same inputs.
    pub verdict: bool,
    /// `Some` iff `verdict` is false.
    pub reason: Option<RejectReason>,
}

impl EvalTrace {
    fn matched() -> Self {
        EvalTrace {
            verdict: true,
            reason: None,
        }
    }

    fn rejected(reason: RejectReason) -> Self {
        EvalTrace {
            verdict: false,
            reason: Some(reason),
        }
    }
}

/// Clip expression text for embedding into a [`RejectReason`].
fn clip(s: &str) -> String {
    if s.len() <= MAX_REASON_TEXT {
        return s.to_string();
    }
    let mut end = MAX_REASON_TEXT;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

/// Split an expression into its top-level `&&` conjuncts, recursively:
/// `a && (b && c) && d` yields `[a, b, c, d]`. A non-conjunction is its own
/// single conjunct.
pub fn conjuncts_of(e: &Expr) -> Vec<&Expr> {
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary(crate::ast::BinOp::And, l, r) => {
                walk(l, out);
                walk(r, out);
            }
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    walk(e, &mut out);
    out
}

/// Evaluate one conjunct of `ad`'s constraint against `candidate` with a
/// fresh evaluator (tracing runs off the hot path, so per-conjunct
/// evaluator construction is fine).
fn eval_clause(ad: &ClassAd, candidate: &ClassAd, policy: &EvalPolicy, clause: &Expr) -> Value {
    let mut ev = Evaluator::pair(ad, candidate, policy);
    ev.eval(clause, Side::Left)
}

/// Find the attribute reference inside `clause` whose resolution yields
/// `undefined` in this pairing, if any single one can be blamed.
fn undefined_ref(
    ad: &ClassAd,
    candidate: &ClassAd,
    policy: &EvalPolicy,
    clause: &Expr,
) -> Option<String> {
    let mut found: Option<String> = None;
    clause.visit(&mut |e| {
        if found.is_some() {
            return;
        }
        let name = match e {
            Expr::Attr(n) => n,
            Expr::ScopedAttr(Scope::My | Scope::Target, n) => n,
            _ => return,
        };
        let mut ev = Evaluator::pair(ad, candidate, policy);
        if matches!(ev.eval(e, Side::Left), Value::Undefined) {
            found = Some(name.as_str().to_string());
        }
    });
    found
}

/// Like [`crate::matching::constraint_holds`], but when `ad`'s constraint
/// rejects `candidate`, the returned trace carries the reason, attributed
/// to `side`. The verdict always equals the plain predicate's.
pub fn traced_constraint_holds(
    ad: &ClassAd,
    candidate: &ClassAd,
    policy: &EvalPolicy,
    conv: &MatchConventions,
    side: RejectSide,
) -> EvalTrace {
    let Some(attr) = conv.constraint_attr_of(ad) else {
        return if conv.missing_constraint_matches {
            EvalTrace::matched()
        } else {
            EvalTrace::rejected(RejectReason::UndefinedAttr {
                side,
                attr: conv.constraint_attrs[0].clone(),
            })
        };
    };
    let mut ev = Evaluator::pair(ad, candidate, policy);
    let whole = ev.eval_attr(Side::Left, attr);
    let constraint = ad.get(attr).cloned();
    match whole {
        Value::Bool(true) => EvalTrace::matched(),
        Value::Bool(false) => {
            // Three-valued `&&` is false iff at least one conjunct is false,
            // so a false conjunct must exist; blame the first.
            let clause = constraint.as_deref().and_then(|c| {
                conjuncts_of(c)
                    .into_iter()
                    .find(|e| eval_clause(ad, candidate, policy, e).as_bool() == Some(false))
                    .map(|e| clip(&e.to_string()))
            });
            EvalTrace::rejected(RejectReason::RequirementsFalse {
                side,
                clause: clause
                    .or_else(|| constraint.as_deref().map(|c| clip(&c.to_string())))
                    .unwrap_or_default(),
            })
        }
        Value::Undefined => {
            // A conjunction is undefined iff no conjunct is false and at
            // least one is undefined; blame the first undefined conjunct's
            // unresolved reference.
            let attr_name = constraint.as_deref().and_then(|c| {
                let undef = conjuncts_of(c)
                    .into_iter()
                    .find(|e| matches!(eval_clause(ad, candidate, policy, e), Value::Undefined))?;
                undefined_ref(ad, candidate, policy, undef)
                    .or_else(|| Some(clip(&undef.to_string())))
            });
            EvalTrace::rejected(RejectReason::UndefinedAttr {
                side,
                attr: attr_name.unwrap_or_else(|| attr.to_string()),
            })
        }
        // `error`, or a constraint that evaluated to a non-boolean: the
        // plain predicate rejects (`as_bool() != Some(true)`).
        _ => EvalTrace::rejected(RejectReason::EvalError { side }),
    }
}

/// Like [`crate::matching::symmetric_match`], but a rejection explains
/// itself. The request (left) side is checked first, mirroring the plain
/// predicate's short-circuit order, so the verdict — and which side gets
/// blamed when both would fail — is deterministic.
pub fn traced_symmetric_match(
    request: &ClassAd,
    offer: &ClassAd,
    policy: &EvalPolicy,
    conv: &MatchConventions,
) -> EvalTrace {
    let req = traced_constraint_holds(request, offer, policy, conv, RejectSide::Request);
    if !req.verdict {
        return req;
    }
    let off = traced_constraint_holds(offer, request, policy, conv, RejectSide::Offer);
    if !off.verdict {
        return off;
    }
    EvalTrace::matched()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{constraint_holds, symmetric_match};
    use crate::parser::parse_classad;

    fn conv() -> MatchConventions {
        MatchConventions::default()
    }

    fn pol() -> EvalPolicy {
        EvalPolicy::default()
    }

    #[test]
    fn matched_pair_traces_clean() {
        let a = parse_classad(r#"[ Type = "Job"; Constraint = other.Type == "Machine" ]"#).unwrap();
        let b = parse_classad(r#"[ Type = "Machine"; Constraint = other.Type == "Job" ]"#).unwrap();
        let t = traced_symmetric_match(&a, &b, &pol(), &conv());
        assert!(t.verdict);
        assert_eq!(t.reason, None);
    }

    #[test]
    fn false_conjunct_is_blamed() {
        let job = parse_classad(
            r#"[ Type = "Job"; Constraint = other.Type == "Machine" && other.Mips >= 1000 ]"#,
        )
        .unwrap();
        let machine =
            parse_classad(r#"[ Type = "Machine"; Mips = 50; Constraint = true ]"#).unwrap();
        let t = traced_symmetric_match(&job, &machine, &pol(), &conv());
        assert!(!t.verdict);
        match t.reason.unwrap() {
            RejectReason::RequirementsFalse { side, clause } => {
                assert_eq!(side, RejectSide::Request);
                assert_eq!(clause, "other.Mips >= 1000");
            }
            other => panic!("wrong reason: {other}"),
        }
    }

    #[test]
    fn offer_side_rejection_is_attributed_to_offer() {
        let job = parse_classad(r#"[ Owner = "riffraff"; Constraint = true ]"#).unwrap();
        let machine = parse_classad(r#"[ Constraint = other.Owner != "riffraff" ]"#).unwrap();
        let t = traced_symmetric_match(&job, &machine, &pol(), &conv());
        assert!(!t.verdict);
        match t.reason.unwrap() {
            RejectReason::RequirementsFalse { side, clause } => {
                assert_eq!(side, RejectSide::Offer);
                assert!(clause.contains("riffraff"), "{clause}");
            }
            other => panic!("wrong reason: {other}"),
        }
    }

    #[test]
    fn undefined_attribute_is_named() {
        let job = parse_classad(r#"[ Constraint = other.Gpus >= 2 && true ]"#).unwrap();
        let machine = parse_classad(r#"[ Mips = 50; Constraint = true ]"#).unwrap();
        let t = traced_symmetric_match(&job, &machine, &pol(), &conv());
        assert!(!t.verdict);
        match t.reason.unwrap() {
            RejectReason::UndefinedAttr { side, attr } => {
                assert_eq!(side, RejectSide::Request);
                assert_eq!(attr, "Gpus");
            }
            other => panic!("wrong reason: {other}"),
        }
    }

    #[test]
    fn error_constraint_classified() {
        let job = parse_classad(r#"[ Constraint = 1/0 ]"#).unwrap();
        let machine = parse_classad(r#"[ Constraint = true ]"#).unwrap();
        let t = traced_symmetric_match(&job, &machine, &pol(), &conv());
        assert!(!t.verdict);
        assert_eq!(
            t.reason,
            Some(RejectReason::EvalError {
                side: RejectSide::Request
            })
        );
    }

    #[test]
    fn non_boolean_constraint_classified_as_error() {
        let job = parse_classad(r#"[ Constraint = 42 ]"#).unwrap();
        let machine = parse_classad(r#"[ Constraint = true ]"#).unwrap();
        assert!(!symmetric_match(&job, &machine, &pol(), &conv()));
        let t = traced_symmetric_match(&job, &machine, &pol(), &conv());
        assert!(!t.verdict);
        assert!(matches!(t.reason, Some(RejectReason::EvalError { .. })));
    }

    #[test]
    fn missing_constraint_follows_conventions() {
        let bare = parse_classad("[ x = 1 ]").unwrap();
        let other = parse_classad("[ Constraint = true ]").unwrap();
        let t = traced_symmetric_match(&bare, &other, &pol(), &conv());
        assert!(t.verdict);
        let strict = MatchConventions {
            missing_constraint_matches: false,
            ..conv()
        };
        let t = traced_symmetric_match(&bare, &other, &pol(), &strict);
        assert!(!t.verdict);
        assert!(matches!(
            t.reason,
            Some(RejectReason::UndefinedAttr { attr, .. }) if attr == "Constraint"
        ));
    }

    #[test]
    fn verdict_agrees_with_plain_predicates() {
        let cases = [
            r#"[ Constraint = other.Mips >= 10 ]"#,
            r#"[ Constraint = other.Mips >= 1000 ]"#,
            r#"[ Constraint = other.NoSuch > 1 ]"#,
            r#"[ Constraint = 1/0 ]"#,
            r#"[ Constraint = "nope" ]"#,
            r#"[ x = 1 ]"#,
            r#"[ Requirements = other.Mips == 50 ]"#,
        ];
        let target = parse_classad(r#"[ Mips = 50; Constraint = true ]"#).unwrap();
        for src in cases {
            let ad = parse_classad(src).unwrap();
            let plain = constraint_holds(&ad, &target, &pol(), &conv());
            let traced =
                traced_constraint_holds(&ad, &target, &pol(), &conv(), RejectSide::Request);
            assert_eq!(plain, traced.verdict, "{src}");
            assert_eq!(traced.reason.is_none(), traced.verdict, "{src}");
            assert_eq!(
                symmetric_match(&ad, &target, &pol(), &conv()),
                traced_symmetric_match(&ad, &target, &pol(), &conv()).verdict,
                "{src}"
            );
        }
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let ad = parse_classad(r#"[ C = a && (b && c) && d; S = a || b ]"#).unwrap();
        let e = ad.get("C").unwrap();
        let parts: Vec<String> = conjuncts_of(e.as_ref())
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(parts, vec!["a", "b", "c", "d"]);
        let single = ad.get("S").unwrap();
        assert_eq!(conjuncts_of(single.as_ref()).len(), 1);
    }

    #[test]
    fn long_clause_text_is_clipped() {
        let long = format!(r#"[ Constraint = other.Flavor == "{}" ]"#, "x".repeat(200));
        let ad = parse_classad(&long).unwrap();
        let machine = parse_classad(r#"[ Flavor = "plain"; Constraint = true ]"#).unwrap();
        let t = traced_symmetric_match(&ad, &machine, &pol(), &conv());
        match t.reason.unwrap() {
            RejectReason::RequirementsFalse { clause, .. } => {
                assert!(clause.chars().count() <= MAX_REASON_TEXT + 1, "{clause}");
                assert!(clause.ends_with('…'));
            }
            other => panic!("wrong reason: {other}"),
        }
    }

    #[test]
    fn labels_are_compact_and_stable() {
        assert_eq!(
            RejectReason::RequirementsFalse {
                side: RejectSide::Request,
                clause: "other.Mips >= 1000".into()
            }
            .label(),
            "ReqFalse(request): other.Mips >= 1000"
        );
        assert_eq!(
            RejectReason::UndefinedAttr {
                side: RejectSide::Offer,
                attr: "Gpus".into()
            }
            .label(),
            "Undef(offer): Gpus"
        );
        assert_eq!(RejectReason::Busy.label(), "Busy");
        assert_eq!(RejectReason::LostRank.kind(), "LostRank");
    }
}
