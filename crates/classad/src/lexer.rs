//! A hand-written lexer for the ClassAd language.
//!
//! The lexer is a single forward pass over the input bytes; it never
//! backtracks more than one character. `//` line comments and `/* ... */`
//! block comments are skipped as whitespace (the workstation ad in Figure 1
//! of the paper uses `//` comments).

use crate::error::{LexError, LexErrorKind, Span};
use crate::token::{Token, TokenKind};

/// Streaming tokenizer over classad source text.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenize the entire input, appending a final [`TokenKind::Eof`] token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.bytes.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> Span {
        Span::new(self.pos, self.pos, self.line, self.col)
    }

    fn span_from(&self, start: Span) -> Span {
        Span::new(start.start, self.pos, start.line, start.col)
    }

    fn err(&self, start: Span, kind: LexErrorKind) -> LexError {
        LexError {
            span: self.span_from(start),
            kind,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(self.err(start, LexErrorKind::UnterminatedComment)),
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let start = self.here();
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: start,
            });
        };
        let kind = match b {
            b'0'..=b'9' => return self.number(start),
            // `.5` is a real literal; a lone `.` is the selection operator.
            b'.' if matches!(self.peek2(), Some(b'0'..=b'9')) => return self.number(start),
            b'"' => return self.string(start),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => return Ok(self.ident(start)),
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Le
                    }
                    Some(b'<') => {
                        self.bump();
                        TokenKind::Shl
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Ge
                    }
                    Some(b'>') => {
                        self.bump();
                        if self.peek() == Some(b'>') {
                            self.bump();
                            TokenKind::Ushr
                        } else {
                            TokenKind::Shr
                        }
                    }
                    _ => TokenKind::Gt,
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else if self.peek() == Some(b'?') && self.peek2() == Some(b'=') {
                    // Legacy Condor `=?=` is the same operation as `is`.
                    self.bump();
                    self.bump();
                    TokenKind::Is
                } else if self.peek() == Some(b'!') && self.peek2() == Some(b'=') {
                    // Legacy Condor `=!=` is the same operation as `isnt`.
                    self.bump();
                    self.bump();
                    TokenKind::Isnt
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    TokenKind::Amp
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    TokenKind::Pipe
                }
            }
            b'^' => {
                self.bump();
                TokenKind::Caret
            }
            b'~' => {
                self.bump();
                TokenKind::Tilde
            }
            b'?' => {
                self.bump();
                TokenKind::Question
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            _ => {
                let c = self.src[self.pos..].chars().next().unwrap_or('\u{FFFD}');
                // Consume the full (possibly multi-byte) char so errors
                // report it intact.
                for _ in 0..c.len_utf8() {
                    self.bump();
                }
                return Err(self.err(start, LexErrorKind::UnexpectedChar(c)));
            }
        };
        Ok(Token {
            kind,
            span: self.span_from(start),
        })
    }

    fn ident(&mut self, start: Span) -> Token {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start.start..self.pos];
        let kind = match_keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        Token {
            kind,
            span: self.span_from(start),
        }
    }

    fn number(&mut self, start: Span) -> Result<Token, LexError> {
        // Hex integers.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_hexdigit() {
                    self.bump();
                } else {
                    break;
                }
            }
            let digits = &self.src[digits_start..self.pos];
            let text = &self.src[start.start..self.pos];
            if digits.is_empty() {
                return Err(self.err(start, LexErrorKind::MalformedNumber(text.into())));
            }
            let val = i64::from_str_radix(digits, 16)
                .map_err(|_| self.err(start, LexErrorKind::MalformedNumber(text.into())))?;
            return Ok(Token {
                kind: TokenKind::Int(val),
                span: self.span_from(start),
            });
        }

        let mut saw_dot = false;
        let mut saw_exp = false;
        // Leading `.5` form: the caller guarantees a digit follows the dot.
        if self.peek() == Some(b'.') {
            saw_dot = true;
            self.bump();
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !saw_dot && !saw_exp && matches!(self.peek2(), Some(b'0'..=b'9')) => {
                    saw_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !saw_exp => {
                    // Only an exponent if followed by digits (or sign+digits);
                    // otherwise `1E` starts an identifier boundary error case,
                    // but `KFlops/1E3` must scan as a real.
                    let next = self.peek2();
                    let next_is_digit = matches!(next, Some(b'0'..=b'9'));
                    let next_is_signed_digit = matches!(next, Some(b'+') | Some(b'-'))
                        && matches!(self.peek3(), Some(b'0'..=b'9'));
                    if next_is_digit || next_is_signed_digit {
                        saw_exp = true;
                        self.bump(); // e
                        self.bump(); // digit or sign
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start.start..self.pos];
        let kind = if saw_dot || saw_exp {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(start, LexErrorKind::MalformedNumber(text.into())))?;
            TokenKind::Real(v)
        } else if text.len() > 1
            && text.starts_with('0')
            && text.bytes().all(|b| (b'0'..=b'7').contains(&b))
        {
            // Octal, per C tradition (kept for compatibility with classic ads).
            let v = i64::from_str_radix(&text[1..], 8)
                .map_err(|_| self.err(start, LexErrorKind::MalformedNumber(text.into())))?;
            TokenKind::Int(v)
        } else {
            match text.parse::<i64>() {
                Ok(v) => TokenKind::Int(v),
                // Integer overflow degrades to a real, like most classad
                // implementations do for out-of-range literals.
                Err(_) => match text.parse::<f64>() {
                    Ok(v) => TokenKind::Real(v),
                    Err(_) => {
                        return Err(self.err(start, LexErrorKind::MalformedNumber(text.into())))
                    }
                },
            }
        };
        Ok(Token {
            kind,
            span: self.span_from(start),
        })
    }

    fn string(&mut self, start: Span) -> Result<Token, LexError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(start, LexErrorKind::UnterminatedString)),
                Some(b'"') => break,
                Some(b'\\') => {
                    let esc_start = self.here();
                    match self.bump() {
                        None => return Err(self.err(start, LexErrorKind::UnterminatedString)),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'"') => out.push('"'),
                        Some(b'\'') => out.push('\''),
                        Some(b'0') => out.push('\0'),
                        Some(other) => {
                            return Err(self.err(esc_start, LexErrorKind::BadEscape(other as char)))
                        }
                    }
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let char_start = self.pos - 1;
                    let c = self.src[char_start..].chars().next().unwrap_or('\u{FFFD}');
                    for _ in 1..c.len_utf8() {
                        self.bump();
                    }
                    let _ = b;
                    out.push(c);
                }
            }
        }
        Ok(Token {
            kind: TokenKind::Str(out),
            span: self.span_from(start),
        })
    }
}

fn match_keyword(text: &str) -> Option<TokenKind> {
    // Keywords are case-insensitive, like attribute names.
    if text.eq_ignore_ascii_case("true") {
        Some(TokenKind::True)
    } else if text.eq_ignore_ascii_case("false") {
        Some(TokenKind::False)
    } else if text.eq_ignore_ascii_case("undefined") {
        Some(TokenKind::Undefined)
    } else if text.eq_ignore_ascii_case("error") {
        Some(TokenKind::ErrorKw)
    } else if text.eq_ignore_ascii_case("is") {
        Some(TokenKind::Is)
    } else if text.eq_ignore_ascii_case("isnt") {
        Some(TokenKind::Isnt)
    } else {
        None
    }
}

/// Convenience: tokenize `src` in one call.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::LexErrorKind;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }

    #[test]
    fn integers() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42), TokenKind::Eof]);
        assert_eq!(kinds("0"), vec![TokenKind::Int(0), TokenKind::Eof]);
        assert_eq!(kinds("0x2A"), vec![TokenKind::Int(42), TokenKind::Eof]);
        assert_eq!(kinds("052"), vec![TokenKind::Int(42), TokenKind::Eof]);
    }

    #[test]
    fn integer_overflow_degrades_to_real() {
        let ks = kinds("99999999999999999999");
        match &ks[0] {
            TokenKind::Real(v) => assert!(*v > 9.9e19),
            other => panic!("expected real, got {other:?}"),
        }
    }

    #[test]
    fn reals() {
        assert_eq!(kinds("3.25"), vec![TokenKind::Real(3.25), TokenKind::Eof]);
        assert_eq!(kinds(".5"), vec![TokenKind::Real(0.5), TokenKind::Eof]);
        assert_eq!(kinds("1E3"), vec![TokenKind::Real(1000.0), TokenKind::Eof]);
        assert_eq!(kinds("2e-2"), vec![TokenKind::Real(0.02), TokenKind::Eof]);
        assert_eq!(
            kinds("1.5e+2"),
            vec![TokenKind::Real(150.0), TokenKind::Eof]
        );
    }

    #[test]
    fn figure2_rank_divides_by_real() {
        // `KFlops/1E3` from Figure 2 of the paper.
        assert_eq!(
            kinds("KFlops/1E3"),
            vec![
                TokenKind::Ident("KFlops".into()),
                TokenKind::Slash,
                TokenKind::Real(1000.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dot_after_number_without_digit_is_selection() {
        // `3.x` lexes as Int(3), Dot, Ident — selection off an integer
        // (semantically an error, but lexically well-formed).
        assert_eq!(
            kinds("3.x"),
            vec![
                TokenKind::Int(3),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn exponent_not_followed_by_digit_splits() {
        assert_eq!(
            kinds("1Exy"),
            vec![
                TokenKind::Int(1),
                TokenKind::Ident("Exy".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""INTEL""#),
            vec![TokenKind::Str("INTEL".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds(r#""a\nb\t\"q\"""#),
            vec![TokenKind::Str("a\nb\t\"q\"".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("\"héllo\""),
            vec![TokenKind::Str("héllo".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let e = tokenize("\"abc").unwrap_err();
        assert_eq!(e.kind, LexErrorKind::UnterminatedString);
    }

    #[test]
    fn bad_escape_errors() {
        let e = tokenize(r#""\q""#).unwrap_err();
        assert_eq!(e.kind, LexErrorKind::BadEscape('q'));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("TRUE"), vec![TokenKind::True, TokenKind::Eof]);
        assert_eq!(kinds("False"), vec![TokenKind::False, TokenKind::Eof]);
        assert_eq!(
            kinds("UNDEFINED"),
            vec![TokenKind::Undefined, TokenKind::Eof]
        );
        assert_eq!(kinds("Error"), vec![TokenKind::ErrorKw, TokenKind::Eof]);
        assert_eq!(kinds("IS"), vec![TokenKind::Is, TokenKind::Eof]);
        assert_eq!(kinds("IsNt"), vec![TokenKind::Isnt, TokenKind::Eof]);
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            kinds("KeyboardIdle _x y2"),
            vec![
                TokenKind::Ident("KeyboardIdle".into()),
                TokenKind::Ident("_x".into()),
                TokenKind::Ident("y2".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("+ - * / % < <= > >= == != && || ! ~ & | ^ << >> >>> ? : ; , . = ( ) [ ] { }"),
            vec![
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Tilde,
                TokenKind::Amp,
                TokenKind::Pipe,
                TokenKind::Caret,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::Ushr,
                TokenKind::Question,
                TokenKind::Colon,
                TokenKind::Semi,
                TokenKind::Comma,
                TokenKind::Dot,
                TokenKind::Assign,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn legacy_meta_operators() {
        assert_eq!(
            kinds("x =?= y =!= z"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Is,
                TokenKind::Ident("y".into()),
                TokenKind::Isnt,
                TokenKind::Ident("z".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(
            kinds("1 // comment\n+ /* block\nspanning */ 2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        let e = tokenize("/* never ends").unwrap_err();
        assert_eq!(e.kind, LexErrorKind::UnterminatedComment);
    }

    #[test]
    fn unexpected_char_reports_position() {
        let e = tokenize("a\n  #").unwrap_err();
        assert_eq!(e.kind, LexErrorKind::UnexpectedChar('#'));
        assert_eq!(e.span.line, 2);
        assert_eq!(e.span.col, 3);
    }

    #[test]
    fn spans_track_lines_and_cols() {
        let toks = tokenize("ab\n cd").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 2);
    }

    #[test]
    fn figure1_constraint_lexes() {
        let src = r#"
            !member(other.Owner, Untrusted) && Rank >= 10 ? true :
            Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 :
            DayTime < 8*60*60 || DayTime > 18*60*60
        "#;
        let toks = tokenize(src).unwrap();
        assert!(toks.len() > 30);
        assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
    }
}
