//! Unparsing: turning expressions, values, and ads back into source text.
//!
//! The printer emits minimal parentheses (it knows the parser's precedence
//! table) and produces text that re-parses to a structurally equal AST —
//! a property the test suite checks exhaustively with proptest.

use crate::ast::{BinOp, Expr, Literal, Scope, UnOp};
use crate::builtins::format_real as fmt_real;
use crate::classad::ClassAd;
use crate::value::Value;
use std::fmt;

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 2,
        BinOp::And => 3,
        BinOp::BitOr => 4,
        BinOp::BitXor => 5,
        BinOp::BitAnd => 6,
        BinOp::Eq | BinOp::Ne | BinOp::Is | BinOp::Isnt => 7,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 8,
        BinOp::Shl | BinOp::Shr | BinOp::Ushr => 9,
        BinOp::Add | BinOp::Sub => 10,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 11,
    }
}

const PREC_COND: u8 = 1;
const PREC_UNARY: u8 = 12;
const PREC_POSTFIX: u8 = 13;

/// Escape a string into a double-quoted classad string literal.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_expr(f: &mut fmt::Formatter<'_>, e: &Expr, parent_prec: u8) -> fmt::Result {
    let my_prec = prec_of(e);
    let need_parens = my_prec < parent_prec;
    if need_parens {
        f.write_str("(")?;
    }
    write_bare(f, e)?;
    if need_parens {
        f.write_str(")")?;
    }
    Ok(())
}

fn prec_of(e: &Expr) -> u8 {
    match e {
        Expr::Cond(..) => PREC_COND,
        Expr::Binary(op, ..) => bin_prec(*op),
        Expr::Unary(..) => PREC_UNARY,
        Expr::Select(..) | Expr::Index(..) => PREC_POSTFIX,
        // Negative numeric literals print with a leading `-`, which binds
        // like a unary operator: as the base of `[...]`/`.attr` they must
        // be parenthesized or `-1[0]` would reparse as `-(1[0])`.
        Expr::Lit(Literal::Int(i)) if *i < 0 => PREC_UNARY,
        Expr::Lit(Literal::Real(r)) if r.is_sign_negative() => PREC_UNARY,
        _ => u8::MAX, // atoms never need parens
    }
}

fn write_bare(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
    match e {
        Expr::Lit(l) => write_literal(f, l),
        Expr::Attr(n) => write!(f, "{}", n.as_str()),
        Expr::ScopedAttr(Scope::My, n) => write!(f, "self.{}", n.as_str()),
        Expr::ScopedAttr(Scope::Target, n) => write!(f, "other.{}", n.as_str()),
        Expr::Select(base, n) => {
            write_expr(f, base, PREC_POSTFIX)?;
            write!(f, ".{}", n.as_str())
        }
        Expr::Index(base, idx) => {
            write_expr(f, base, PREC_POSTFIX)?;
            f.write_str("[")?;
            write_expr(f, idx, 0)?;
            f.write_str("]")
        }
        Expr::Unary(op, inner) => {
            f.write_str(op.symbol())?;
            // `- -x` must not print as `--x`; a space is harmless either way.
            if matches!(op, UnOp::Neg) && matches!(**inner, Expr::Unary(UnOp::Neg, _)) {
                f.write_str(" ")?;
            }
            write_expr(f, inner, PREC_UNARY)
        }
        Expr::Binary(op, l, r) => {
            let p = bin_prec(*op);
            write_expr(f, l, p)?;
            write!(f, " {} ", op.symbol())?;
            // Left-associative: the right operand needs strictly higher
            // precedence to avoid parens.
            write_expr(f, r, p + 1)
        }
        Expr::Cond(c, t, els) => {
            write_expr(f, c, PREC_COND + 1)?;
            f.write_str(" ? ")?;
            write_expr(f, t, 0)?;
            f.write_str(" : ")?;
            write_expr(f, els, 0)
        }
        Expr::Call(name, args) => {
            write!(f, "{}(", name.as_str())?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_expr(f, a, 0)?;
            }
            f.write_str(")")
        }
        Expr::List(items) => {
            if items.is_empty() {
                return f.write_str("{}");
            }
            f.write_str("{ ")?;
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_expr(f, it, 0)?;
            }
            f.write_str(" }")
        }
        Expr::Record(fields) => {
            if fields.is_empty() {
                return f.write_str("[]");
            }
            f.write_str("[ ")?;
            for (i, (n, fe)) in fields.iter().enumerate() {
                if i > 0 {
                    f.write_str("; ")?;
                }
                write!(f, "{} = ", n.as_str())?;
                write_expr(f, fe, 0)?;
            }
            f.write_str(" ]")
        }
    }
}

fn write_literal(f: &mut fmt::Formatter<'_>, l: &Literal) -> fmt::Result {
    match l {
        Literal::Undefined => f.write_str("undefined"),
        Literal::Error => f.write_str("error"),
        Literal::Bool(true) => f.write_str("true"),
        Literal::Bool(false) => f.write_str("false"),
        Literal::Int(i) => write!(f, "{i}"),
        Literal::Real(r) => f.write_str(&fmt_real(*r)),
        Literal::Str(s) => f.write_str(&escape_string(s)),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self, 0)
    }
}

impl fmt::Display for ClassAd {
    /// Compact single-line form: `[ A = 1; B = "x" ]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("[]");
        }
        f.write_str("[ ")?;
        for (i, (n, e)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{} = ", n.as_str())?;
            write_expr(f, e, 0)?;
        }
        f.write_str(" ]")
    }
}

impl ClassAd {
    /// Indented multi-line rendering, one attribute per line.
    pub fn pretty(&self) -> String {
        let mut out = String::from("[\n");
        for (n, e) in self.iter() {
            out.push_str("    ");
            out.push_str(n.as_str());
            out.push_str(" = ");
            out.push_str(&e.to_string());
            out.push_str(";\n");
        }
        out.push(']');
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => f.write_str("undefined"),
            Value::Error => f.write_str("error"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => f.write_str(&fmt_real(*r)),
            Value::Str(s) => f.write_str(&escape_string(s)),
            Value::List(items) => {
                if items.is_empty() {
                    return f.write_str("{}");
                }
                f.write_str("{ ")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(" }")
            }
            Value::Ad(ad) => write!(f, "{ad}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_classad, parse_expr};

    fn roundtrip(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = e1.to_string();
        let e2 = parse_expr(&printed).unwrap_or_else(|err| {
            panic!("reprinted `{printed}` failed to parse: {err}");
        });
        assert_eq!(e1, e2, "round-trip changed AST: `{src}` -> `{printed}`");
    }

    #[test]
    fn literals_print() {
        assert_eq!(parse_expr("42").unwrap().to_string(), "42");
        assert_eq!(parse_expr("1.5").unwrap().to_string(), "1.5");
        assert_eq!(parse_expr("1E3").unwrap().to_string(), "1000.0");
        assert_eq!(parse_expr("\"x\\\"y\"").unwrap().to_string(), "\"x\\\"y\"");
        assert_eq!(parse_expr("true").unwrap().to_string(), "true");
        assert_eq!(parse_expr("undefined").unwrap().to_string(), "undefined");
    }

    #[test]
    fn minimal_parens() {
        assert_eq!(parse_expr("1 + 2 * 3").unwrap().to_string(), "1 + 2 * 3");
        assert_eq!(
            parse_expr("(1 + 2) * 3").unwrap().to_string(),
            "(1 + 2) * 3"
        );
        assert_eq!(
            parse_expr("1 - (2 - 3)").unwrap().to_string(),
            "1 - (2 - 3)"
        );
        assert_eq!(
            parse_expr("(a && b) || c").unwrap().to_string(),
            "a && b || c"
        );
        assert_eq!(
            parse_expr("a && (b || c)").unwrap().to_string(),
            "a && (b || c)"
        );
    }

    #[test]
    fn scoped_and_calls() {
        assert_eq!(
            parse_expr("member(other.Owner, ResearchGroup) * 10")
                .unwrap()
                .to_string(),
            "member(other.Owner, ResearchGroup) * 10"
        );
        assert_eq!(
            parse_expr("self.Memory").unwrap().to_string(),
            "self.Memory"
        );
    }

    #[test]
    fn cond_prints() {
        assert_eq!(
            parse_expr("a ? 1 : b ? 2 : 3").unwrap().to_string(),
            "a ? 1 : b ? 2 : 3"
        );
        roundtrip("(a ? 1 : 2) + 3");
    }

    #[test]
    fn nested_negation() {
        roundtrip("- -x");
        roundtrip("!!a");
        roundtrip("-(1 + x)");
    }

    #[test]
    fn lists_and_records() {
        assert_eq!(parse_expr("{ 1, 2 }").unwrap().to_string(), "{ 1, 2 }");
        assert_eq!(parse_expr("{}").unwrap().to_string(), "{}");
        assert_eq!(parse_expr("[ a = 1 ]").unwrap().to_string(), "[ a = 1 ]");
        roundtrip("[ a = 1; b = { \"x\", 2.5 } ]");
        roundtrip("xs[1 + 2]");
        roundtrip("r.a.b");
    }

    #[test]
    fn classad_display_roundtrips() {
        let src = r#"[ Type = "Machine"; Memory = 64; Rank = member(other.Owner, Friends) ]"#;
        let ad = parse_classad(src).unwrap();
        let printed = ad.to_string();
        let back = parse_classad(&printed).unwrap();
        assert_eq!(ad, back);
    }

    #[test]
    fn figure_ads_roundtrip() {
        for src in [
            crate::fixtures::FIGURE1_MACHINE,
            crate::fixtures::FIGURE2_JOB,
        ] {
            let ad = parse_classad(src).unwrap();
            let back = parse_classad(&ad.to_string()).unwrap();
            assert_eq!(ad, back, "compact");
            let back = parse_classad(&ad.pretty()).unwrap();
            assert_eq!(ad, back, "pretty");
        }
    }

    #[test]
    fn pretty_is_multiline() {
        let ad = parse_classad("[a = 1; b = 2]").unwrap();
        let p = ad.pretty();
        assert!(p.starts_with("[\n"));
        assert!(p.contains("    a = 1;\n"));
        assert!(p.ends_with(']'));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Real(2.5).to_string(), "2.5");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Undefined.to_string(), "undefined");
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::str("x")]).to_string(),
            "{ 1, \"x\" }"
        );
    }

    #[test]
    fn operator_coverage_roundtrip() {
        for src in [
            "a | b ^ c & d",
            "a << 2 >> 1 >>> 3",
            "a is undefined",
            "a isnt error",
            "~x % 3",
            "+x - -y",
            "a == b != c",
            "a < b <= c > d >= e",
        ] {
            roundtrip(src);
        }
    }
}
