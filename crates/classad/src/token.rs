//! Token definitions for the ClassAd lexer.

use crate::error::Span;
use std::fmt;

/// A lexical token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Source location of the token.
    pub span: Span,
}

/// The kinds of tokens in the ClassAd grammar.
///
/// Keywords (`true`, `false`, `undefined`, `error`, `is`, `isnt`) are
/// recognised case-insensitively, matching the language's case-insensitive
/// identifier rules.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal, e.g. `42`. Hex (`0x2a`) and octal (`052`) accepted.
    Int(i64),
    /// Real literal, e.g. `3.25`, `1E3`, `.5`.
    Real(f64),
    /// String literal with escapes resolved, e.g. `"INTEL"`.
    Str(String),
    /// Identifier (attribute name or function name); original case preserved.
    Ident(String),
    /// `true` (any case).
    True,
    /// `false` (any case).
    False,
    /// `undefined` (any case).
    Undefined,
    /// `error` (any case).
    ErrorKw,
    /// `is` — non-strict identity comparison.
    Is,
    /// `isnt` — non-strict identity inequality.
    Isnt,

    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>` (arithmetic shift right)
    Shr,
    /// `>>>` (logical shift right)
    Ushr,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable name used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Real(r) => format!("real `{r}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::True => "`true`".into(),
            TokenKind::False => "`false`".into(),
            TokenKind::Undefined => "`undefined`".into(),
            TokenKind::ErrorKw => "`error`".into(),
            TokenKind::Is => "`is`".into(),
            TokenKind::Isnt => "`isnt`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Tilde => "`~`".into(),
            TokenKind::Amp => "`&`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::Shl => "`<<`".into(),
            TokenKind::Shr => "`>>`".into(),
            TokenKind::Ushr => "`>>>`".into(),
            TokenKind::Question => "`?`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_literals() {
        assert_eq!(TokenKind::Int(7).describe(), "integer `7`");
        assert_eq!(TokenKind::Str("a".into()).describe(), "string \"a\"");
        assert_eq!(TokenKind::Ushr.describe(), "`>>>`");
    }

    #[test]
    fn display_matches_describe() {
        let k = TokenKind::Ident("Rank".into());
        assert_eq!(format!("{k}"), k.describe());
    }
}
