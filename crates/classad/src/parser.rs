//! Recursive-descent parser for ClassAd expressions and ads.
//!
//! Operator precedence, lowest to highest:
//!
//! | level | operators |
//! |-------|-----------|
//! | 1 | `?:` (right-associative) |
//! | 2 | `||` |
//! | 3 | `&&` |
//! | 4 | `|` |
//! | 5 | `^` |
//! | 6 | `&` |
//! | 7 | `==` `!=` `is` `isnt` |
//! | 8 | `<` `<=` `>` `>=` |
//! | 9 | `<<` `>>` `>>>` |
//! | 10 | `+` `-` |
//! | 11 | `*` `/` `%` |
//! | 12 | unary `-` `+` `!` `~` |
//! | 13 | postfix `.attr`, `[index]` |
//!
//! `[ name = expr ; ... ]` constructs a (nested) classad and `{ e1, e2 }`
//! constructs a list, as in the paper's figures.

use crate::ast::{AttrName, BinOp, Expr, Literal, Scope, UnOp};
use crate::classad::ClassAd;
use crate::error::{ParseError, Span};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};
use std::sync::Arc;

/// Parse a single expression from source text. Trailing input is an error.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parse a single classad (`[ attr = expr; ... ]`) from source text.
/// Trailing input is an error.
pub fn parse_classad(src: &str) -> Result<ClassAd, ParseError> {
    let mut p = Parser::new(src)?;
    let ad = p.classad()?;
    p.expect_eof()?;
    Ok(ad)
}

/// Parse a sequence of classads (e.g. the contents of an ad file).
pub fn parse_classads(src: &str) -> Result<Vec<ClassAd>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.classad()?);
    }
    Ok(out)
}

/// Maximum expression nesting depth. Guards the parser's recursion against
/// stack exhaustion on adversarial input (e.g. ten thousand `(`s); beyond
/// this the parser reports an error instead of crashing.
const MAX_NESTING: u32 = 100;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    depth: u32,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: tokenize(src)?,
            pos: 0,
            depth: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn at_eof(&self) -> bool {
        *self.peek() == TokenKind::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: TokenKind) -> Result<Token, ParseError> {
        if self.peek() == &k {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected {}", k.describe())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("expected end of input"))
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        ParseError::new(
            self.peek_span(),
            format!("{what}, found {}", self.peek().describe()),
        )
    }

    fn ident(&mut self) -> Result<AttrName, ParseError> {
        match self.peek() {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(s) => Ok(AttrName::new(&s)),
                    _ => unreachable!(),
                }
            }
            // Keywords can be used as attribute names after a dot or in
            // definitions would be ambiguous; only `error`/`undefined` are
            // reserved, which matches common classad usage.
            _ => Err(self.unexpected("expected an identifier")),
        }
    }

    fn classad(&mut self) -> Result<ClassAd, ParseError> {
        self.expect(TokenKind::LBracket)?;
        let mut ad = ClassAd::new();
        loop {
            if self.eat(&TokenKind::RBracket) {
                return Ok(ad);
            }
            let name = self.ident()?;
            self.expect(TokenKind::Assign)?;
            let e = self.expr()?;
            ad.insert(name, Arc::new(e));
            if !self.eat(&TokenKind::Semi) {
                self.expect(TokenKind::RBracket)?;
                return Ok(ad);
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        if self.depth >= MAX_NESTING {
            return Err(ParseError::new(
                self.peek_span(),
                "expression nesting too deep",
            ));
        }
        self.depth += 1;
        let r = self.conditional();
        self.depth -= 1;
        r
    }

    fn conditional(&mut self) -> Result<Expr, ParseError> {
        let cond = self.or()?;
        if self.eat(&TokenKind::Question) {
            let then = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let els = self.expr()?;
            Ok(Expr::Cond(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    fn or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_or()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.bit_or()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_xor()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.bit_xor()?;
            lhs = Expr::bin(BinOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_and()?;
        while self.eat(&TokenKind::Caret) {
            let rhs = self.bit_and()?;
            lhs = Expr::bin(BinOp::BitXor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.equality()?;
            lhs = Expr::bin(BinOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                TokenKind::Is => BinOp::Is,
                TokenKind::Isnt => BinOp::Isnt,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                TokenKind::Ushr => BinOp::Ushr,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        // Collect prefix operators iteratively (no recursion), then apply
        // them inside-out.
        let mut ops = Vec::new();
        loop {
            let op = match self.peek() {
                TokenKind::Minus => UnOp::Neg,
                TokenKind::Plus => UnOp::Pos,
                TokenKind::Bang => UnOp::Not,
                TokenKind::Tilde => UnOp::BitNot,
                _ => break,
            };
            self.bump();
            ops.push(op);
        }
        let mut e = self.postfix()?;
        for op in ops.into_iter().rev() {
            // Constant-fold negative numeric literals so `-1` is a literal,
            // which keeps pretty-printed ads round-trippable.
            if op == UnOp::Neg {
                if let Expr::Lit(Literal::Int(i)) = &e {
                    if let Some(n) = i.checked_neg() {
                        e = Expr::int(n);
                        continue;
                    }
                }
                if let Expr::Lit(Literal::Real(r)) = &e {
                    e = Expr::real(-r);
                    continue;
                }
            }
            e = Expr::Unary(op, Box::new(e));
        }
        Ok(e)
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let name = self.ident()?;
                e = match scope_of(&e) {
                    Some(scope) => Expr::ScopedAttr(scope, name),
                    None => Expr::Select(Box::new(e), name),
                };
            } else if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::int(v))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr::real(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Literal::Str(Arc::from(s.as_str()))))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::bool(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::bool(false))
            }
            TokenKind::Undefined => {
                self.bump();
                Ok(Expr::Lit(Literal::Undefined))
            }
            TokenKind::ErrorKw => {
                self.bump();
                Ok(Expr::Lit(Literal::Error))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(TokenKind::RParen)?;
                            break;
                        }
                    }
                    Ok(Expr::Call(AttrName::new(&name), args))
                } else {
                    Ok(Expr::Attr(AttrName::new(&name)))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                let ad = self.classad()?;
                Ok(Expr::Record(
                    ad.iter()
                        .map(|(n, e)| (n.clone(), e.as_ref().clone()))
                        .collect(),
                ))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        items.push(self.expr()?);
                        if self.eat(&TokenKind::Comma) {
                            if self.eat(&TokenKind::RBrace) {
                                break; // trailing comma
                            }
                            continue;
                        }
                        self.expect(TokenKind::RBrace)?;
                        break;
                    }
                }
                Ok(Expr::List(items))
            }
            _ => Err(self.unexpected("expected an expression")),
        }
    }
}

/// If `e` is a bare `self`/`my`/`other`/`target` reference, the scope it
/// names; selection through these pseudo-attributes becomes a scoped
/// reference rather than a `Select`.
fn scope_of(e: &Expr) -> Option<Scope> {
    match e {
        Expr::Attr(n) => match n.canonical() {
            "self" | "my" => Some(Scope::My),
            "other" | "target" => Some(Scope::Target),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp::*;

    #[test]
    fn literals() {
        assert_eq!(parse_expr("42").unwrap(), Expr::int(42));
        assert_eq!(parse_expr("3.5").unwrap(), Expr::real(3.5));
        assert_eq!(parse_expr("\"x\"").unwrap(), Expr::str("x"));
        assert_eq!(parse_expr("true").unwrap(), Expr::bool(true));
        assert_eq!(
            parse_expr("UNDEFINED").unwrap(),
            Expr::Lit(Literal::Undefined)
        );
        assert_eq!(parse_expr("error").unwrap(), Expr::Lit(Literal::Error));
        assert_eq!(parse_expr("-7").unwrap(), Expr::int(-7));
        assert_eq!(parse_expr("-2.5").unwrap(), Expr::real(-2.5));
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                Add,
                Expr::int(1),
                Expr::bin(Mul, Expr::int(2), Expr::int(3))
            )
        );
    }

    #[test]
    fn precedence_parens() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                Mul,
                Expr::bin(Add, Expr::int(1), Expr::int(2)),
                Expr::int(3)
            )
        );
    }

    #[test]
    fn left_associativity() {
        let e = parse_expr("10 - 4 - 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                Sub,
                Expr::bin(Sub, Expr::int(10), Expr::int(4)),
                Expr::int(3)
            )
        );
    }

    #[test]
    fn comparison_over_logic() {
        let e = parse_expr("a < 1 && b > 2").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                And,
                Expr::bin(Lt, Expr::attr("a"), Expr::int(1)),
                Expr::bin(Gt, Expr::attr("b"), Expr::int(2)),
            )
        );
    }

    #[test]
    fn ternary_right_associative_and_nested() {
        // The Figure 1 constraint shape: a ? x : b ? y : z
        let e = parse_expr("a ? 1 : b ? 2 : 3").unwrap();
        assert_eq!(
            e,
            Expr::Cond(
                Box::new(Expr::attr("a")),
                Box::new(Expr::int(1)),
                Box::new(Expr::Cond(
                    Box::new(Expr::attr("b")),
                    Box::new(Expr::int(2)),
                    Box::new(Expr::int(3)),
                )),
            )
        );
    }

    #[test]
    fn scoped_attrs() {
        assert_eq!(parse_expr("self.Memory").unwrap(), Expr::self_("Memory"));
        assert_eq!(parse_expr("other.Memory").unwrap(), Expr::other("Memory"));
        assert_eq!(parse_expr("MY.x").unwrap(), Expr::self_("x"));
        assert_eq!(parse_expr("TARGET.x").unwrap(), Expr::other("x"));
    }

    #[test]
    fn selection_from_expression() {
        let e = parse_expr("a.b.c").unwrap();
        assert_eq!(
            e,
            Expr::Select(
                Box::new(Expr::Select(Box::new(Expr::attr("a")), "b".into())),
                "c".into()
            )
        );
    }

    #[test]
    fn subscript() {
        let e = parse_expr("xs[2]").unwrap();
        assert_eq!(
            e,
            Expr::Index(Box::new(Expr::attr("xs")), Box::new(Expr::int(2)))
        );
    }

    #[test]
    fn function_call() {
        let e = parse_expr("member(other.Owner, ResearchGroup)").unwrap();
        assert_eq!(
            e,
            Expr::Call(
                "member".into(),
                vec![Expr::other("Owner"), Expr::attr("ResearchGroup")]
            )
        );
        assert_eq!(parse_expr("f()").unwrap(), Expr::Call("f".into(), vec![]));
    }

    #[test]
    fn list_constructor() {
        let e = parse_expr(r#"{ "raman", "miron", "solomon" }"#).unwrap();
        assert_eq!(
            e,
            Expr::List(vec![
                Expr::str("raman"),
                Expr::str("miron"),
                Expr::str("solomon")
            ])
        );
        assert_eq!(parse_expr("{}").unwrap(), Expr::List(vec![]));
        assert_eq!(parse_expr("{1,}").unwrap(), Expr::List(vec![Expr::int(1)]));
    }

    #[test]
    fn record_constructor() {
        let e = parse_expr("[a = 1; b = \"x\"]").unwrap();
        match &e {
            Expr::Record(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0.as_str(), "a");
                assert_eq!(fields[1].1, Expr::str("x"));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn classad_basic() {
        let ad = parse_classad(r#"[ Type = "Machine"; Memory = 64; ]"#).unwrap();
        assert_eq!(ad.len(), 2);
        assert_eq!(ad.get_string("type"), Some("Machine"));
        assert_eq!(ad.get_int("memory"), Some(64));
    }

    #[test]
    fn classad_trailing_semi_optional() {
        assert_eq!(parse_classad("[a=1]").unwrap().len(), 1);
        assert_eq!(parse_classad("[a=1;]").unwrap().len(), 1);
        assert_eq!(parse_classad("[]").unwrap().len(), 0);
    }

    #[test]
    fn classads_sequence() {
        let ads = parse_classads("[a=1] [b=2] [c=3]").unwrap();
        assert_eq!(ads.len(), 3);
        assert_eq!(ads[2].get_int("c"), Some(3));
    }

    #[test]
    fn deep_nesting_rejected_not_crash() {
        let src = format!("{}1{}", "(".repeat(5000), ")".repeat(5000));
        let err = parse_expr(&src).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{}", err.message);
        // Deep unary chains are handled iteratively and succeed.
        let src = format!("{}x", "!".repeat(5000));
        assert!(parse_expr(&src).is_ok());
        // Long non-nested chains are iterative too.
        let src = (0..10_000)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(" + ");
        assert!(parse_expr(&src).is_ok());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_expr("1 2").is_err());
        assert!(parse_classad("[a=1] junk").is_err());
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse_expr("1 +").unwrap_err();
        assert!(
            err.message.contains("expected an expression"),
            "{}",
            err.message
        );
        let err = parse_classad("[a 1]").unwrap_err();
        assert!(err.message.contains("expected `=`"), "{}", err.message);
    }

    #[test]
    fn bitwise_precedence_chain() {
        // a | b ^ c & d == e  parses as  a | (b ^ (c & (d == e)))
        let e = parse_expr("a | b ^ c & d == e").unwrap();
        match &e {
            Expr::Binary(BitOr, _, rhs) => match rhs.as_ref() {
                Expr::Binary(BitXor, _, rhs2) => match rhs2.as_ref() {
                    Expr::Binary(BitAnd, _, rhs3) => {
                        assert!(matches!(rhs3.as_ref(), Expr::Binary(Eq, _, _)))
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn is_isnt_parse() {
        let e = parse_expr("other.Memory is undefined").unwrap();
        assert_eq!(
            e,
            Expr::bin(Is, Expr::other("Memory"), Expr::Lit(Literal::Undefined))
        );
        let e = parse_expr("x =?= y").unwrap();
        assert_eq!(e, Expr::bin(Is, Expr::attr("x"), Expr::attr("y")));
        let e = parse_expr("x =!= y").unwrap();
        assert_eq!(e, Expr::bin(Isnt, Expr::attr("x"), Expr::attr("y")));
    }

    #[test]
    fn figure1_classad_parses() {
        let src = r#"
        [
            Type = "Machine";
            Activity = "Idle";
            KeyboardIdle = 1432;
            Disk = 323496;
            Memory = 64;
            State = "Unclaimed";
            LoadAvg = 0.042969;
            Mips = 104;
            Arch = "INTEL";
            OpSys = "SOLARIS251";
            KFlops = 21893;
            Name = "leonardo.cs.wisc.edu";
            ResearchGroup = { "raman", "miron", "solomon", "jbasney" };
            Friends = { "tannenba", "wright" };
            Untrusted = { "rival", "riffraff" };
            Rank = member(other.Owner, ResearchGroup) * 10 +
                   member(other.Owner, Friends);
            Constraint = !member(other.Owner, Untrusted) && Rank >= 10 ? true :
                         Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 :
                         DayTime < 8*60*60 || DayTime > 18*60*60;
        ]
        "#;
        let ad = parse_classad(src).unwrap();
        assert_eq!(ad.len(), 17);
        assert!(ad.contains("Constraint"));
        assert!(ad.contains("rank"));
    }

    #[test]
    fn figure2_classad_parses() {
        let src = r#"
        [
            Type = "Job";
            QDate = 886799469;
            CompletionDate = 0;
            Owner = "raman";
            Cmd = "run_sim";
            WantRemoteSyscalls = 1;
            WantCheckpoint = 1;
            Iwd = "/usr/raman/sim2";
            Args = "-Q 17 3200 10";
            Memory = 31;
            Rank = KFlops/1E3 + other.Memory/32;
            Constraint = other.Type == "Machine" && Arch == "INTEL" &&
                         OpSys == "SOLARIS251" && Disk >= 10000 &&
                         other.Memory >= self.Memory;
        ]
        "#;
        let ad = parse_classad(src).unwrap();
        assert_eq!(ad.len(), 12);
        assert_eq!(ad.get_string("Cmd"), Some("run_sim"));
    }
}
