//! The built-in function library.
//!
//! Function names, like attribute names, are case-insensitive. Unknown
//! functions and arity/type violations evaluate to `error`; `undefined`
//! arguments propagate per each function's strictness (most are strict,
//! the type predicates and `ifThenElse` are not).
//!
//! The set covers the paper's `member()` plus the classic utility functions
//! a working pool depends on (string/list manipulation, numeric conversion,
//! aggregation, type tests).

use crate::ast::{BinOp, Expr};
use crate::eval::{Evaluator, Side};
use crate::value::{apply_strict_binary, case_insensitive_cmp, Value};
use std::cmp::Ordering;

/// Dispatch a function call. `name` must already be canonical (lowercase).
pub fn call(ev: &mut Evaluator<'_>, side: Side, name: &str, args: &[Expr]) -> Value {
    match name {
        // ---- list membership -------------------------------------------
        "member" => member(ev, side, args, MemberMode::Equality),
        "identicalmember" => member(ev, side, args, MemberMode::Identity),
        // ---- type predicates (non-strict by design) --------------------
        "isundefined" => type_test(ev, side, args, |v| v.is_undefined()),
        "iserror" => type_test(ev, side, args, |v| v.is_error()),
        "isstring" => type_test(ev, side, args, |v| matches!(v, Value::Str(_))),
        "isinteger" => type_test(ev, side, args, |v| matches!(v, Value::Int(_))),
        "isreal" => type_test(ev, side, args, |v| matches!(v, Value::Real(_))),
        "isboolean" => type_test(ev, side, args, |v| matches!(v, Value::Bool(_))),
        "islist" => type_test(ev, side, args, |v| matches!(v, Value::List(_))),
        "isclassad" => type_test(ev, side, args, |v| matches!(v, Value::Ad(_))),
        // ---- conditionals ----------------------------------------------
        "ifthenelse" => if_then_else(ev, side, args),
        // ---- numeric ----------------------------------------------------
        "floor" => numeric1(ev, side, args, |r| r.floor()),
        "ceiling" => numeric1(ev, side, args, |r| r.ceil()),
        "round" => numeric1(ev, side, args, |r| r.round()),
        "pow" => pow(ev, side, args),
        "quantize" => quantize(ev, side, args),
        "int" => to_int(ev, side, args),
        "real" => to_real(ev, side, args),
        "abs" => abs(ev, side, args),
        // ---- strings ----------------------------------------------------
        "string" => to_string_fn(ev, side, args),
        "strcat" => strcat(ev, side, args),
        "substr" => substr(ev, side, args),
        "strcmp" => strcmp(ev, side, args, true),
        "stricmp" => strcmp(ev, side, args, false),
        "toupper" => map_string(ev, side, args, |s| s.to_ascii_uppercase()),
        "tolower" => map_string(ev, side, args, |s| s.to_ascii_lowercase()),
        "split" => split(ev, side, args),
        "join" => join(ev, side, args),
        // ---- string lists (Condor convention: delimited strings) -------
        "stringlistmember" => string_list_member(ev, side, args, true),
        "stringlistimember" => string_list_member(ev, side, args, false),
        "stringlistsize" => string_list_size(ev, side, args),
        // ---- aggregates over lists --------------------------------------
        "size" => size(ev, side, args),
        "sum" => fold_numeric(ev, side, args, Fold::Sum),
        "avg" => fold_numeric(ev, side, args, Fold::Avg),
        "min" => fold_numeric(ev, side, args, Fold::Min),
        "max" => fold_numeric(ev, side, args, Fold::Max),
        "anycompare" => any_all_compare(ev, side, args, false),
        "allcompare" => any_all_compare(ev, side, args, true),
        // ---- regular expressions ----------------------------------------
        "regexp" => regexp_fn(ev, side, args),
        "stringlistregexpmember" => string_list_regexp_member(ev, side, args),
        // ---- environment -------------------------------------------------
        "time" => time(ev, args),
        "random" => random(ev, side, args),
        _ => Value::Error,
    }
}

fn eval_args(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Vec<Value> {
    args.iter().map(|a| ev.eval(a, side)).collect()
}

/// Strict screen over already-evaluated arguments: error dominates,
/// then undefined.
fn screen_args(vals: &[Value]) -> Option<Value> {
    if vals.iter().any(Value::is_error) {
        Some(Value::Error)
    } else if vals.iter().any(Value::is_undefined) {
        Some(Value::Undefined)
    } else {
        None
    }
}

enum MemberMode {
    /// `member`: element-wise `==` (strings case-insensitive).
    Equality,
    /// `identicalMember`: element-wise `is`.
    Identity,
}

fn member(ev: &mut Evaluator<'_>, side: Side, args: &[Expr], mode: MemberMode) -> Value {
    if args.len() != 2 {
        return Value::Error;
    }
    let target = ev.eval(&args[0], side);
    let list = ev.eval(&args[1], side);
    if target.is_error() || list.is_error() {
        return Value::Error;
    }
    if target.is_undefined() || list.is_undefined() {
        return Value::Undefined;
    }
    let Some(items) = list.as_list() else {
        return Value::Error;
    };
    for item in items {
        let hit = match mode {
            MemberMode::Equality => {
                apply_strict_binary(BinOp::Eq, item, &target).as_bool() == Some(true)
            }
            MemberMode::Identity => item.same_as(&target),
        };
        if hit {
            return Value::Bool(true);
        }
    }
    Value::Bool(false)
}

fn type_test(
    ev: &mut Evaluator<'_>,
    side: Side,
    args: &[Expr],
    pred: impl Fn(&Value) -> bool,
) -> Value {
    if args.len() != 1 {
        return Value::Error;
    }
    let v = ev.eval(&args[0], side);
    Value::Bool(pred(&v))
}

fn if_then_else(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if args.len() != 3 {
        return Value::Error;
    }
    let c = ev.eval(&args[0], side);
    let truthy = match &c {
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Real(r) => *r != 0.0,
        Value::Undefined => return Value::Undefined,
        _ => return Value::Error,
    };
    if truthy {
        ev.eval(&args[1], side)
    } else {
        ev.eval(&args[2], side)
    }
}

fn numeric1(ev: &mut Evaluator<'_>, side: Side, args: &[Expr], f: impl Fn(f64) -> f64) -> Value {
    if args.len() != 1 {
        return Value::Error;
    }
    let v = ev.eval(&args[0], side);
    if let Some(s) = screen_args(std::slice::from_ref(&v)) {
        return s;
    }
    match v {
        Value::Int(i) => Value::Int(i),
        Value::Real(r) => {
            let out = f(r);
            if out.is_finite() && out.abs() < i64::MAX as f64 {
                Value::Int(out as i64)
            } else {
                Value::Error
            }
        }
        _ => Value::Error,
    }
}

fn abs(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if args.len() != 1 {
        return Value::Error;
    }
    match ev.eval(&args[0], side) {
        Value::Int(i) => i.checked_abs().map(Value::Int).unwrap_or(Value::Error),
        Value::Real(r) => Value::Real(r.abs()),
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

fn pow(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if args.len() != 2 {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    match (&vals[0], &vals[1]) {
        (Value::Int(b), Value::Int(e)) if *e >= 0 => {
            match b.checked_pow((*e).min(u32::MAX as i64) as u32) {
                Some(v) => Value::Int(v),
                None => Value::Error,
            }
        }
        _ => match (vals[0].as_f64(), vals[1].as_f64()) {
            (Some(b), Some(e)) => {
                let r = b.powf(e);
                if r.is_nan() {
                    Value::Error
                } else {
                    Value::Real(r)
                }
            }
            _ => Value::Error,
        },
    }
}

/// `quantize(a, b)`: round `a` up to the next multiple of `b` (a classic
/// Condor helper for slot-size rounding).
fn quantize(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if args.len() != 2 {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    match (&vals[0], &vals[1]) {
        (Value::Int(a), Value::Int(b)) if *b > 0 => {
            let rem = a.rem_euclid(*b);
            if rem == 0 {
                Value::Int(*a)
            } else {
                match a.checked_add(b - rem) {
                    Some(v) => Value::Int(v),
                    None => Value::Error,
                }
            }
        }
        _ => match (vals[0].as_f64(), vals[1].as_f64()) {
            (Some(a), Some(b)) if b > 0.0 => Value::Real((a / b).ceil() * b),
            _ => Value::Error,
        },
    }
}

fn to_int(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if args.len() != 1 {
        return Value::Error;
    }
    match ev.eval(&args[0], side) {
        Value::Int(i) => Value::Int(i),
        Value::Real(r) if r.is_finite() && r.abs() < i64::MAX as f64 => Value::Int(r as i64),
        Value::Bool(b) => Value::Int(b as i64),
        Value::Str(s) => match s.trim().parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => match s.trim().parse::<f64>() {
                Ok(r) if r.is_finite() => Value::Int(r as i64),
                _ => Value::Error,
            },
        },
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

fn to_real(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if args.len() != 1 {
        return Value::Error;
    }
    match ev.eval(&args[0], side) {
        Value::Int(i) => Value::Real(i as f64),
        Value::Real(r) => Value::Real(r),
        Value::Bool(b) => Value::Real(b as i64 as f64),
        Value::Str(s) => match s.trim().parse::<f64>() {
            Ok(r) => Value::Real(r),
            Err(_) => Value::Error,
        },
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

fn to_string_fn(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if args.len() != 1 {
        return Value::Error;
    }
    let v = ev.eval(&args[0], side);
    match &v {
        Value::Str(_) => v,
        Value::Int(i) => Value::from(i.to_string()),
        Value::Real(r) => Value::from(format_real(*r)),
        Value::Bool(b) => Value::str(if *b { "true" } else { "false" }),
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

/// Format a real the way the pretty-printer does (always with a `.` or
/// exponent so it re-parses as a real).
pub(crate) fn format_real(r: f64) -> String {
    if r.is_nan() {
        return "real(\"NaN\")".to_string();
    }
    if r.is_infinite() {
        return if r > 0.0 {
            "real(\"INF\")"
        } else {
            "real(\"-INF\")"
        }
        .to_string();
    }
    let abs = r.abs();
    // Scientific notation for extreme magnitudes keeps literals short
    // (Rust's `{}` would expand 1e300 to 300 digits).
    let s = if abs != 0.0 && !(1e-4..1e16).contains(&abs) {
        format!("{r:e}")
    } else {
        format!("{r}")
    };
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn strcat(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let mut out = String::new();
    for v in &vals {
        match v {
            Value::Str(s) => out.push_str(s),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Real(r) => out.push_str(&format_real(*r)),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            _ => return Value::Error,
        }
    }
    Value::from(out)
}

fn substr(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if !(args.len() == 2 || args.len() == 3) {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let (Some(s), Some(off)) = (vals[0].as_str(), vals[1].as_int()) else {
        return Value::Error;
    };
    let len = s.len() as i64;
    // Negative offset counts from the end, as in the classad spec.
    let start = if off < 0 {
        (len + off).max(0)
    } else {
        off.min(len)
    } as usize;
    let take = match vals.get(2) {
        None => len as usize,
        Some(v) => match v.as_int() {
            // Negative length means "leave this many off the end".
            Some(l) if l < 0 => ((len - start as i64 + l).max(0)) as usize,
            Some(l) => l as usize,
            None => return Value::Error,
        },
    };
    let out: String = s.chars().skip(start).take(take).collect();
    Value::from(out)
}

fn strcmp(ev: &mut Evaluator<'_>, side: Side, args: &[Expr], case_sensitive: bool) -> Value {
    if args.len() != 2 {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let (Some(a), Some(b)) = (vals[0].as_str(), vals[1].as_str()) else {
        return Value::Error;
    };
    let ord = if case_sensitive {
        a.cmp(b)
    } else {
        case_insensitive_cmp(a, b)
    };
    Value::Int(match ord {
        Ordering::Less => -1,
        Ordering::Equal => 0,
        Ordering::Greater => 1,
    })
}

fn map_string(
    ev: &mut Evaluator<'_>,
    side: Side,
    args: &[Expr],
    f: impl Fn(&str) -> String,
) -> Value {
    if args.len() != 1 {
        return Value::Error;
    }
    match ev.eval(&args[0], side) {
        Value::Str(s) => Value::from(f(&s)),
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

fn split(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if !(args.len() == 1 || args.len() == 2) {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let Some(s) = vals[0].as_str() else {
        return Value::Error;
    };
    let delims: &str = match vals.get(1) {
        None => " ,",
        Some(v) => match v.as_str() {
            Some(d) => d,
            None => return Value::Error,
        },
    };
    let parts: Vec<Value> = s
        .split(|c: char| delims.contains(c))
        .filter(|p| !p.is_empty())
        .map(Value::str)
        .collect();
    Value::list(parts)
}

fn join(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if !(args.len() == 1 || args.len() == 2) {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let (sep, list) = if vals.len() == 2 {
        let Some(sep) = vals[0].as_str() else {
            return Value::Error;
        };
        (sep, &vals[1])
    } else {
        ("", &vals[0])
    };
    let Some(items) = list.as_list() else {
        return Value::Error;
    };
    let mut out = String::new();
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(sep);
        }
        match v {
            Value::Str(s) => out.push_str(s),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Real(r) => out.push_str(&format_real(*r)),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            _ => return Value::Error,
        }
    }
    Value::from(out)
}

fn string_list_member(
    ev: &mut Evaluator<'_>,
    side: Side,
    args: &[Expr],
    case_sensitive: bool,
) -> Value {
    if !(args.len() == 2 || args.len() == 3) {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let (Some(needle), Some(hay)) = (vals[0].as_str(), vals[1].as_str()) else {
        return Value::Error;
    };
    let delims: &str = match vals.get(2) {
        None => " ,",
        Some(v) => match v.as_str() {
            Some(d) => d,
            None => return Value::Error,
        },
    };
    let found = hay
        .split(|c: char| delims.contains(c))
        .filter(|p| !p.is_empty())
        .any(|p| {
            if case_sensitive {
                p == needle
            } else {
                p.eq_ignore_ascii_case(needle)
            }
        });
    Value::Bool(found)
}

fn string_list_size(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if !(args.len() == 1 || args.len() == 2) {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let Some(hay) = vals[0].as_str() else {
        return Value::Error;
    };
    let delims: &str = match vals.get(1) {
        None => " ,",
        Some(v) => match v.as_str() {
            Some(d) => d,
            None => return Value::Error,
        },
    };
    let n = hay
        .split(|c: char| delims.contains(c))
        .filter(|p| !p.is_empty())
        .count();
    Value::Int(n as i64)
}

fn size(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if args.len() != 1 {
        return Value::Error;
    }
    match ev.eval(&args[0], side) {
        Value::Str(s) => Value::Int(s.chars().count() as i64),
        Value::List(l) => Value::Int(l.len() as i64),
        Value::Ad(a) => Value::Int(a.len() as i64),
        Value::Undefined => Value::Undefined,
        _ => Value::Error,
    }
}

enum Fold {
    Sum,
    Avg,
    Min,
    Max,
}

fn fold_numeric(ev: &mut Evaluator<'_>, side: Side, args: &[Expr], fold: Fold) -> Value {
    if args.len() != 1 {
        return Value::Error;
    }
    let v = ev.eval(&args[0], side);
    if v.is_error() {
        return Value::Error;
    }
    if v.is_undefined() {
        return Value::Undefined;
    }
    let Some(items) = v.as_list() else {
        return Value::Error;
    };
    if items.is_empty() {
        return Value::Undefined;
    }
    let mut all_int = true;
    let mut nums = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::Int(i) => nums.push(*i as f64),
            Value::Real(r) => {
                all_int = false;
                nums.push(*r);
            }
            Value::Undefined => return Value::Undefined,
            _ => return Value::Error,
        }
    }
    let out = match fold {
        Fold::Sum => nums.iter().sum::<f64>(),
        Fold::Avg => {
            all_int = false;
            nums.iter().sum::<f64>() / nums.len() as f64
        }
        Fold::Min => nums.iter().copied().fold(f64::INFINITY, f64::min),
        Fold::Max => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    };
    if all_int {
        Value::Int(out as i64)
    } else {
        Value::Real(out)
    }
}

/// `anyCompare(op, list, v)` / `allCompare(op, list, v)`: does any/every
/// element of `list` satisfy `elem <op> v`?
fn any_all_compare(ev: &mut Evaluator<'_>, side: Side, args: &[Expr], all: bool) -> Value {
    if args.len() != 3 {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let Some(op_name) = vals[0].as_str() else {
        return Value::Error;
    };
    let op = match op_name {
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "==" => BinOp::Eq,
        "!=" => BinOp::Ne,
        _ => return Value::Error,
    };
    let Some(items) = vals[1].as_list() else {
        return Value::Error;
    };
    let target = &vals[2];
    for item in items {
        match apply_strict_binary(op, item, target) {
            Value::Bool(true) if !all => return Value::Bool(true),
            Value::Bool(false) if all => return Value::Bool(false),
            Value::Bool(_) => {}
            _ => return Value::Error,
        }
    }
    Value::Bool(all)
}

/// `regexp(pattern, target [, options])` — does the pattern match the
/// target string? Options: `i` (case-insensitive), `f` (full match).
/// Malformed patterns and options evaluate to `error`.
fn regexp_fn(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if !(args.len() == 2 || args.len() == 3) {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let (Some(pattern), Some(target)) = (vals[0].as_str(), vals[1].as_str()) else {
        return Value::Error;
    };
    let options = match vals.get(2) {
        None => crate::regex::RegexOptions::default(),
        Some(v) => match v.as_str().map(crate::regex::RegexOptions::parse) {
            Some(Ok(o)) => o,
            _ => return Value::Error,
        },
    };
    match crate::regex::Regex::new(pattern, options) {
        Ok(re) => Value::Bool(re.is_match(target)),
        Err(_) => Value::Error,
    }
}

/// `stringListRegexpMember(pattern, list [, delims [, options]])` — does
/// any element of the delimited string list match the pattern?
fn string_list_regexp_member(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    if !(2..=4).contains(&args.len()) {
        return Value::Error;
    }
    let vals = eval_args(ev, side, args);
    if let Some(s) = screen_args(&vals) {
        return s;
    }
    let (Some(pattern), Some(hay)) = (vals[0].as_str(), vals[1].as_str()) else {
        return Value::Error;
    };
    let delims: &str = match vals.get(2) {
        None => " ,",
        Some(v) => match v.as_str() {
            Some(d) => d,
            None => return Value::Error,
        },
    };
    let options = match vals.get(3) {
        None => crate::regex::RegexOptions::default(),
        Some(v) => match v.as_str().map(crate::regex::RegexOptions::parse) {
            Some(Ok(o)) => o,
            _ => return Value::Error,
        },
    };
    let Ok(re) = crate::regex::Regex::new(pattern, options) else {
        return Value::Error;
    };
    let found = hay
        .split(|c: char| delims.contains(c))
        .filter(|p| !p.is_empty())
        .any(|p| re.is_match(p));
    Value::Bool(found)
}

fn time(ev: &mut Evaluator<'_>, args: &[Expr]) -> Value {
    if !args.is_empty() {
        return Value::Error;
    }
    match ev.policy().now {
        Some(t) => Value::Int(t),
        None => Value::Error,
    }
}

fn random(ev: &mut Evaluator<'_>, side: Side, args: &[Expr]) -> Value {
    match args.len() {
        0 => {
            let r = ev.next_random();
            Value::Real((r >> 11) as f64 / (1u64 << 53) as f64)
        }
        1 => {
            let v = ev.eval(&args[0], side);
            match v {
                Value::Int(n) if n > 0 => Value::Int((ev.next_random() % n as u64) as i64),
                Value::Undefined => Value::Undefined,
                _ => Value::Error,
            }
        }
        _ => Value::Error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalPolicy;
    use crate::parser::{parse_classad, parse_expr};

    fn eval(src: &str) -> Value {
        eval_with(src, &EvalPolicy::default())
    }

    fn eval_with(src: &str, policy: &EvalPolicy) -> Value {
        let ad = parse_classad("[]").unwrap();
        let e = parse_expr(src).unwrap();
        ad.eval_expr(&e, policy)
    }

    fn eval_in(ad: &str, src: &str) -> Value {
        let ad = parse_classad(ad).unwrap();
        let e = parse_expr(src).unwrap();
        ad.eval_expr(&e, &EvalPolicy::default())
    }

    #[test]
    fn member_equality() {
        assert_eq!(eval(r#"member("b", {"a", "b"})"#), Value::Bool(true));
        assert_eq!(
            eval(r#"member("B", {"a", "b"})"#),
            Value::Bool(true),
            "== is case-insensitive"
        );
        assert_eq!(eval(r#"member("c", {"a", "b"})"#), Value::Bool(false));
        assert_eq!(
            eval(r#"member(2, {1, 2.0, 3})"#),
            Value::Bool(true),
            "numeric unification"
        );
        assert_eq!(eval(r#"member("x", "notalist")"#), Value::Error);
        assert_eq!(eval(r#"member(Missing, {1})"#), Value::Undefined);
        assert_eq!(eval(r#"member(1, Missing)"#), Value::Undefined);
        assert_eq!(eval(r#"member(1)"#), Value::Error);
    }

    #[test]
    fn identical_member() {
        assert_eq!(
            eval(r#"identicalMember("B", {"a", "b"})"#),
            Value::Bool(false)
        );
        assert_eq!(
            eval(r#"identicalMember("b", {"a", "b"})"#),
            Value::Bool(true)
        );
        assert_eq!(eval(r#"identicalMember(2, {2.0})"#), Value::Bool(false));
    }

    #[test]
    fn type_predicates_are_nonstrict() {
        assert_eq!(eval("isUndefined(Missing)"), Value::Bool(true));
        assert_eq!(eval("isUndefined(1)"), Value::Bool(false));
        assert_eq!(eval("isError(1/0)"), Value::Bool(true));
        assert_eq!(eval("isString(\"x\")"), Value::Bool(true));
        assert_eq!(eval("isInteger(1)"), Value::Bool(true));
        assert_eq!(eval("isReal(1.0)"), Value::Bool(true));
        assert_eq!(eval("isBoolean(true)"), Value::Bool(true));
        assert_eq!(eval("isList({1})"), Value::Bool(true));
        assert_eq!(eval("isClassAd([a=1])"), Value::Bool(true));
    }

    #[test]
    fn if_then_else_lazy() {
        assert_eq!(eval("ifThenElse(true, 1, 1/0)"), Value::Int(1));
        assert_eq!(eval("ifThenElse(false, 1/0, 2)"), Value::Int(2));
        assert_eq!(eval("ifThenElse(Missing, 1, 2)"), Value::Undefined);
        assert_eq!(
            eval("ifThenElse(3, 1, 2)"),
            Value::Int(1),
            "nonzero int is true"
        );
        assert_eq!(eval("ifThenElse(0.0, 1, 2)"), Value::Int(2));
        assert_eq!(eval("ifThenElse(\"s\", 1, 2)"), Value::Error);
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(eval("floor(2.7)"), Value::Int(2));
        assert_eq!(eval("ceiling(2.1)"), Value::Int(3));
        assert_eq!(eval("round(2.5)"), Value::Int(3));
        assert_eq!(eval("floor(7)"), Value::Int(7));
        assert_eq!(eval("abs(-3)"), Value::Int(3));
        assert_eq!(eval("abs(-3.5)"), Value::Real(3.5));
        assert_eq!(eval("pow(2, 10)"), Value::Int(1024));
        assert_eq!(eval("pow(2.0, -1)"), Value::Real(0.5));
        assert_eq!(eval("quantize(13, 8)"), Value::Int(16));
        assert_eq!(eval("quantize(16, 8)"), Value::Int(16));
        assert_eq!(eval("quantize(0, 8)"), Value::Int(0));
        assert_eq!(eval("floor(\"x\")"), Value::Error);
    }

    #[test]
    fn conversions() {
        assert_eq!(eval("int(2.9)"), Value::Int(2));
        assert_eq!(eval("int(\"42\")"), Value::Int(42));
        assert_eq!(eval("int(\" 42 \")"), Value::Int(42));
        assert_eq!(eval("int(\"3.9\")"), Value::Int(3));
        assert_eq!(eval("int(true)"), Value::Int(1));
        assert_eq!(eval("int(\"zap\")"), Value::Error);
        assert_eq!(eval("real(2)"), Value::Real(2.0));
        assert_eq!(eval("real(\"0.5\")"), Value::Real(0.5));
        assert_eq!(eval("string(42)"), Value::str("42"));
        assert_eq!(eval("string(1.5)"), Value::str("1.5"));
        assert_eq!(eval("string(true)"), Value::str("true"));
        assert_eq!(eval("string(Missing)"), Value::Undefined);
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval(r#"strcat("a", 1, "-", 2.5)"#), Value::str("a1-2.5"));
        assert_eq!(eval(r#"substr("workstation", 4)"#), Value::str("station"));
        assert_eq!(eval(r#"substr("workstation", 0, 4)"#), Value::str("work"));
        assert_eq!(eval(r#"substr("workstation", -7, 3)"#), Value::str("sta"));
        assert_eq!(eval(r#"substr("abcdef", 1, -1)"#), Value::str("bcde"));
        assert_eq!(eval(r#"strcmp("a", "b")"#), Value::Int(-1));
        assert_eq!(eval(r#"strcmp("b", "a")"#), Value::Int(1));
        assert_eq!(
            eval(r#"strcmp("A", "a")"#),
            Value::Int(-1),
            "strcmp is case-sensitive"
        );
        assert_eq!(eval(r#"stricmp("A", "a")"#), Value::Int(0));
        assert_eq!(eval(r#"toUpper("MiXeD")"#), Value::str("MIXED"));
        assert_eq!(eval(r#"toLower("MiXeD")"#), Value::str("mixed"));
    }

    #[test]
    fn split_and_join() {
        assert_eq!(
            eval(r#"split("a, b,c")"#),
            Value::list(vec![Value::str("a"), Value::str("b"), Value::str("c")])
        );
        assert_eq!(
            eval(r#"split("a:b::c", ":")"#),
            Value::list(vec![Value::str("a"), Value::str("b"), Value::str("c")])
        );
        assert_eq!(eval(r#"join(", ", {"x", "y"})"#), Value::str("x, y"));
        assert_eq!(eval(r#"join({"x", "y"})"#), Value::str("xy"));
        assert_eq!(eval(r#"join("-", {1, 2})"#), Value::str("1-2"));
    }

    #[test]
    fn string_lists() {
        assert_eq!(
            eval(r#"stringListMember("b", "a, b, c")"#),
            Value::Bool(true)
        );
        assert_eq!(
            eval(r#"stringListMember("B", "a, b, c")"#),
            Value::Bool(false)
        );
        assert_eq!(
            eval(r#"stringListIMember("B", "a, b, c")"#),
            Value::Bool(true)
        );
        assert_eq!(eval(r#"stringListSize("a, b, c")"#), Value::Int(3));
        assert_eq!(eval(r#"stringListSize("a:b", ":")"#), Value::Int(2));
    }

    #[test]
    fn size_function() {
        assert_eq!(eval(r#"size("hello")"#), Value::Int(5));
        assert_eq!(eval("size({1, 2, 3})"), Value::Int(3));
        assert_eq!(eval("size([a = 1; b = 2])"), Value::Int(2));
        assert_eq!(eval("size(1)"), Value::Error);
    }

    #[test]
    fn aggregates() {
        assert_eq!(eval("sum({1, 2, 3})"), Value::Int(6));
        assert_eq!(eval("sum({1, 2.5})"), Value::Real(3.5));
        assert_eq!(eval("avg({1, 2, 3, 4})"), Value::Real(2.5));
        assert_eq!(eval("min({3, 1, 2})"), Value::Int(1));
        assert_eq!(eval("max({3, 1.5, 2})"), Value::Real(3.0));
        assert_eq!(eval("sum({})"), Value::Undefined);
        assert_eq!(eval("sum({1, \"x\"})"), Value::Error);
        assert_eq!(eval("sum({1, Missing})"), Value::Undefined);
    }

    #[test]
    fn any_all_compare_fn() {
        assert_eq!(eval(r#"anyCompare("<", {5, 10}, 6)"#), Value::Bool(true));
        assert_eq!(eval(r#"anyCompare("<", {8, 10}, 6)"#), Value::Bool(false));
        assert_eq!(eval(r#"allCompare(">=", {6, 10}, 6)"#), Value::Bool(true));
        assert_eq!(eval(r#"allCompare(">=", {5, 10}, 6)"#), Value::Bool(false));
        assert_eq!(eval(r#"anyCompare("zap", {1}, 1)"#), Value::Error);
    }

    #[test]
    fn time_uses_policy_clock() {
        assert_eq!(eval("time()"), Value::Error, "no clock configured");
        let p = EvalPolicy {
            now: Some(1_000_000),
            ..EvalPolicy::default()
        };
        assert_eq!(eval_with("time()", &p), Value::Int(1_000_000));
        assert_eq!(eval_with("time(1)", &p), Value::Error);
    }

    #[test]
    fn random_is_deterministic_per_policy_seed() {
        let a = eval("random(100)");
        let b = eval("random(100)");
        assert_eq!(a, b, "same seed, same stream position");
        match eval("random()") {
            Value::Real(r) => assert!((0.0..1.0).contains(&r)),
            other => panic!("{other:?}"),
        }
        assert_eq!(eval("random(-1)"), Value::Error);
        assert_eq!(eval("random(0)"), Value::Error);
    }

    #[test]
    fn regexp_builtin() {
        assert_eq!(
            eval(r#"regexp("wisc", "leonardo.cs.wisc.edu")"#),
            Value::Bool(true)
        );
        assert_eq!(
            eval(r#"regexp("^node[0-9]+$", "node42")"#),
            Value::Bool(true)
        );
        assert_eq!(
            eval(r#"regexp("^node[0-9]+$", "nodeX")"#),
            Value::Bool(false)
        );
        assert_eq!(eval(r#"regexp("INTEL", "intel", "i")"#), Value::Bool(true));
        assert_eq!(eval(r#"regexp("abc", "xabcx", "f")"#), Value::Bool(false));
        assert_eq!(eval(r#"regexp("(", "x")"#), Value::Error, "bad pattern");
        assert_eq!(
            eval(r#"regexp("a", "b", "z")"#),
            Value::Error,
            "bad options"
        );
        assert_eq!(eval(r#"regexp(1, "x")"#), Value::Error);
        assert_eq!(eval(r#"regexp(Missing, "x")"#), Value::Undefined);
    }

    #[test]
    fn string_list_regexp_member_builtin() {
        assert_eq!(
            eval(r#"stringListRegexpMember("^b", "alpha, beta, gamma")"#),
            Value::Bool(true)
        );
        assert_eq!(
            eval(r#"stringListRegexpMember("^z", "alpha, beta, gamma")"#),
            Value::Bool(false)
        );
        assert_eq!(
            eval(r#"stringListRegexpMember("^B", "alpha:beta", ":", "i")"#),
            Value::Bool(true)
        );
    }

    #[test]
    fn unknown_function_is_error() {
        assert_eq!(eval("noSuchFn(1, 2)"), Value::Error);
    }

    #[test]
    fn functions_resolve_attrs() {
        assert_eq!(
            eval_in(
                r#"[Friends = {"tannenba", "wright"}]"#,
                r#"member("wright", Friends)"#
            ),
            Value::Bool(true)
        );
    }

    #[test]
    fn format_real_roundtrippable() {
        assert_eq!(format_real(1.0), "1.0");
        assert_eq!(format_real(0.5), "0.5");
        assert_eq!(format_real(1e300), "1e300");
    }
}
