//! Abstract syntax tree for ClassAd expressions.
//!
//! Expressions are immutable once built; classads store them behind [`Arc`]
//! so ads can be cloned cheaply into ad stores and across the parallel
//! matcher's worker threads.

use std::fmt;
use std::sync::Arc;

/// An attribute (or function) name.
///
/// ClassAd names are **case-insensitive** but case-preserving: `Memory`,
/// `MEMORY` and `memory` denote the same attribute, and the pretty-printer
/// reproduces whichever spelling was written. `AttrName` caches the
/// case-folded form so lookups never re-fold.
#[derive(Clone)]
pub struct AttrName {
    display: Arc<str>,
    canon: Arc<str>,
}

impl AttrName {
    /// Create a name, folding the canonical form to ASCII lowercase.
    pub fn new(name: &str) -> Self {
        let display: Arc<str> = Arc::from(name);
        let canon: Arc<str> = if name.bytes().any(|b| b.is_ascii_uppercase()) {
            Arc::from(name.to_ascii_lowercase().as_str())
        } else {
            display.clone()
        };
        AttrName { display, canon }
    }

    /// The name as written in the source.
    pub fn as_str(&self) -> &str {
        &self.display
    }

    /// The case-folded (ASCII-lowercase) form used for comparisons.
    pub fn canonical(&self) -> &str {
        &self.canon
    }

    /// The cached canonical form as a shared handle. Cloning an `Arc<str>`
    /// is a refcount bump, so hot paths (cycle-detection keys, dependency
    /// sets) can key on the canonical name without re-folding or copying.
    pub fn canonical_arc(&self) -> Arc<str> {
        self.canon.clone()
    }
}

impl PartialEq for AttrName {
    fn eq(&self, other: &Self) -> bool {
        self.canon == other.canon
    }
}

impl Eq for AttrName {}

impl std::hash::Hash for AttrName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.canon.hash(state)
    }
}

impl fmt::Debug for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttrName({})", self.display)
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::new(s)
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName::new(&s)
    }
}

/// Explicit scope qualifiers on attribute references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// `self.X` (alias: `my.X`) — the ad containing the reference.
    My,
    /// `other.X` (alias: `target.X`) — the candidate ad on the other side
    /// of the match.
    Target,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Arithmetic identity `+e` (still type-checks its operand).
    Pos,
    /// Logical negation `!e` (three-valued).
    Not,
    /// Bitwise complement `~e` (integers only).
    BitNot,
}

/// Binary operators, in source syntax order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` — strict equality (strings case-insensitive).
    Eq,
    /// `!=` — strict inequality.
    Ne,
    /// `is` / `=?=` — non-strict identity (never `undefined`).
    Is,
    /// `isnt` / `=!=` — non-strict non-identity.
    Isnt,
    /// `&&` — non-strict three-valued conjunction.
    And,
    /// `||` — non-strict three-valued disjunction.
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `>>>` (logical)
    Ushr,
}

impl BinOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Is => "is",
            BinOp::Isnt => "isnt",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Ushr => ">>>",
        }
    }
}

impl UnOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Pos => "+",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// Literal constants appearing directly in expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `undefined`
    Undefined,
    /// `error`
    Error,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(Arc<str>),
}

/// A ClassAd expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Lit(Literal),
    /// An unqualified attribute reference, e.g. `Memory`.
    ///
    /// Resolution order in a match context: the referencing ad itself,
    /// then enclosing (parent) ads, then — if the evaluation policy allows,
    /// which it does by default — the *other* ad. The fallback is what makes
    /// the paper's Figure 2 constraint (`Arch == "INTEL"` in a job ad with
    /// no `Arch` attribute) resolve against the machine ad.
    Attr(AttrName),
    /// A scope-qualified reference: `self.X` or `other.X`.
    ScopedAttr(Scope, AttrName),
    /// Selection from an arbitrary expression: `expr.X`.
    Select(Box<Expr>, AttrName),
    /// Subscript: `expr[index]` — list element or ad attribute by name.
    Index(Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional `cond ? then : else`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call, e.g. `member(other.Owner, ResearchGroup)`.
    Call(AttrName, Vec<Expr>),
    /// List constructor `{ e1, e2, ... }`.
    List(Vec<Expr>),
    /// Record (nested classad) constructor `[ a = e1; b = e2; ]`.
    Record(Vec<(AttrName, Expr)>),
}

impl Expr {
    /// Shorthand: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Literal::Int(v))
    }

    /// Shorthand: real literal.
    pub fn real(v: f64) -> Expr {
        Expr::Lit(Literal::Real(v))
    }

    /// Shorthand: string literal.
    pub fn str(v: &str) -> Expr {
        Expr::Lit(Literal::Str(Arc::from(v)))
    }

    /// Shorthand: boolean literal.
    pub fn bool(v: bool) -> Expr {
        Expr::Lit(Literal::Bool(v))
    }

    /// Shorthand: unqualified attribute reference.
    pub fn attr(name: &str) -> Expr {
        Expr::Attr(AttrName::new(name))
    }

    /// Shorthand: `other.name`.
    pub fn other(name: &str) -> Expr {
        Expr::ScopedAttr(Scope::Target, AttrName::new(name))
    }

    /// Shorthand: `self.name`.
    pub fn self_(name: &str) -> Expr {
        Expr::ScopedAttr(Scope::My, AttrName::new(name))
    }

    /// Shorthand: binary operation.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// True if this expression is a constant literal (no references).
    pub fn is_literal(&self) -> bool {
        matches!(self, Expr::Lit(_))
    }

    /// Walk the expression tree, calling `f` on every node (preorder).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Attr(_) | Expr::ScopedAttr(..) => {}
            Expr::Select(e, _) => e.visit(f),
            Expr::Index(e, i) => {
                e.visit(f);
                i.visit(f);
            }
            Expr::Unary(_, e) => e.visit(f),
            Expr::Binary(_, l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Expr::Cond(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::List(items) => {
                for i in items {
                    i.visit(f);
                }
            }
            Expr::Record(fields) => {
                for (_, e) in fields {
                    e.visit(f);
                }
            }
        }
    }

    /// Collect the canonical names of all *external* attributes this
    /// expression references — i.e. `other.X` references plus unqualified
    /// references (which may fall through to the other ad).
    pub fn external_refs(&self) -> Vec<AttrName> {
        let mut out = Vec::new();
        self.visit(&mut |e| match e {
            Expr::Attr(n) => out.push(n.clone()),
            Expr::ScopedAttr(Scope::Target, n) => out.push(n.clone()),
            _ => {}
        });
        out
    }
}

impl Drop for Expr {
    /// Iterative drop: expressions can form very deep trees (long `&&`
    /// chains, generated ads), and the default recursive drop glue would
    /// overflow the stack. Children are detached onto an explicit worklist
    /// instead.
    fn drop(&mut self) {
        if is_leaf(self) {
            return;
        }
        let mut stack: Vec<Expr> = Vec::new();
        detach_children(self, &mut stack);
        while let Some(mut e) = stack.pop() {
            detach_children(&mut e, &mut stack);
        }
    }
}

fn is_leaf(e: &Expr) -> bool {
    matches!(e, Expr::Lit(_) | Expr::Attr(_) | Expr::ScopedAttr(..))
}

fn detach_children(e: &mut Expr, out: &mut Vec<Expr>) {
    fn take(b: &mut Expr) -> Expr {
        std::mem::replace(b, Expr::Lit(Literal::Bool(false)))
    }
    match e {
        Expr::Lit(_) | Expr::Attr(_) | Expr::ScopedAttr(..) => {}
        Expr::Select(b, _) | Expr::Unary(_, b) => {
            if !is_leaf(b) {
                out.push(take(b));
            }
        }
        Expr::Index(a, b) | Expr::Binary(_, a, b) => {
            if !is_leaf(a) {
                out.push(take(a));
            }
            if !is_leaf(b) {
                out.push(take(b));
            }
        }
        Expr::Cond(a, b, c) => {
            for x in [a, b, c] {
                if !is_leaf(x) {
                    out.push(take(x));
                }
            }
        }
        Expr::Call(_, args) | Expr::List(args) => {
            out.extend(args.drain(..).filter(|x| !is_leaf(x)));
        }
        Expr::Record(fields) => {
            out.extend(fields.drain(..).map(|(_, x)| x).filter(|x| !is_leaf(x)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_name_case_insensitive_eq_and_hash() {
        use std::collections::HashSet;
        let a = AttrName::new("Memory");
        let b = AttrName::new("MEMORY");
        assert_eq!(a, b);
        assert_eq!(a.canonical(), "memory");
        assert_eq!(a.as_str(), "Memory");
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn attr_name_lowercase_shares_allocation() {
        let a = AttrName::new("already_lower");
        assert_eq!(a.as_str(), a.canonical());
    }

    #[test]
    fn expr_builders() {
        let e = Expr::bin(BinOp::Ge, Expr::other("Memory"), Expr::self_("Memory"));
        match &e {
            Expr::Binary(BinOp::Ge, l, r) => {
                assert_eq!(**l, Expr::ScopedAttr(Scope::Target, "memory".into()));
                assert_eq!(**r, Expr::ScopedAttr(Scope::My, "Memory".into()));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let e = Expr::Cond(
            Box::new(Expr::attr("a")),
            Box::new(Expr::List(vec![Expr::int(1), Expr::int(2)])),
            Box::new(Expr::Call("f".into(), vec![Expr::str("x")])),
        );
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn external_refs_collects_bare_and_target() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Eq, Expr::other("Arch"), Expr::str("INTEL")),
            Expr::bin(BinOp::Ge, Expr::attr("Disk"), Expr::self_("MinDisk")),
        );
        let refs: Vec<String> = e
            .external_refs()
            .iter()
            .map(|n| n.canonical().to_string())
            .collect();
        assert_eq!(refs, vec!["arch", "disk"]);
    }

    #[test]
    fn op_symbols() {
        assert_eq!(BinOp::Ushr.symbol(), ">>>");
        assert_eq!(UnOp::Not.symbol(), "!");
    }
}
