//! The classad object: an insertion-ordered, case-insensitive mapping from
//! attribute names to expressions.
//!
//! "A classad is a mapping from attribute names to expressions" (paper
//! §3.1). Attribute names are case-insensitive; insertion order is preserved
//! so ads round-trip through the pretty-printer in their original shape.

use crate::ast::{AttrName, Expr, Literal};
use std::collections::HashMap;
use std::sync::Arc;

/// A classified advertisement: the unit of both data and query in the
/// matchmaking framework.
///
/// ```
/// use classad::{ClassAd, Expr};
///
/// let mut ad = ClassAd::new();
/// ad.set("Type", Expr::str("Machine"));
/// ad.set("Memory", Expr::int(64));
/// assert_eq!(ad.len(), 2);
/// assert!(ad.get("memory").is_some()); // names are case-insensitive
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClassAd {
    entries: Vec<(AttrName, Arc<Expr>)>,
    index: HashMap<Arc<str>, usize>,
}

impl ClassAd {
    /// Create an empty ad.
    pub fn new() -> Self {
        ClassAd::default()
    }

    /// Create an empty ad with capacity for `n` attributes.
    pub fn with_capacity(n: usize) -> Self {
        ClassAd {
            entries: Vec::with_capacity(n),
            index: HashMap::with_capacity(n),
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the ad has no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace an attribute. Replacement keeps the attribute's
    /// original position (and the *new* spelling of its name).
    pub fn insert(&mut self, name: AttrName, expr: Arc<Expr>) {
        match self.index.get(name.canonical()) {
            Some(&i) => {
                self.entries[i] = (name, expr);
            }
            None => {
                let canon: Arc<str> = Arc::from(name.canonical());
                self.entries.push((name, expr));
                self.index.insert(canon, self.entries.len() - 1);
            }
        }
    }

    /// Convenience insert from any name-like and an owned expression.
    pub fn set(&mut self, name: impl Into<AttrName>, expr: Expr) {
        self.insert(name.into(), Arc::new(expr));
    }

    /// Convenience: set an attribute to a literal string.
    pub fn set_str(&mut self, name: impl Into<AttrName>, v: &str) {
        self.set(name, Expr::str(v));
    }

    /// Convenience: set an attribute to a literal integer.
    pub fn set_int(&mut self, name: impl Into<AttrName>, v: i64) {
        self.set(name, Expr::int(v));
    }

    /// Convenience: set an attribute to a literal real.
    pub fn set_real(&mut self, name: impl Into<AttrName>, v: f64) {
        self.set(name, Expr::real(v));
    }

    /// Convenience: set an attribute to a literal boolean.
    pub fn set_bool(&mut self, name: impl Into<AttrName>, v: bool) {
        self.set(name, Expr::bool(v));
    }

    /// Look up an attribute by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&Arc<Expr>> {
        let i = self.lookup(name)?;
        Some(&self.entries[i].1)
    }

    /// Look up an attribute, returning its stored (case-preserving) name
    /// and expression.
    pub fn get_entry(&self, name: &str) -> Option<(&AttrName, &Arc<Expr>)> {
        let i = self.lookup(name)?;
        let (n, e) = &self.entries[i];
        Some((n, e))
    }

    /// `true` if the attribute exists (case-insensitive).
    pub fn contains(&self, name: &str) -> bool {
        self.lookup(name).is_some()
    }

    /// Remove an attribute, returning its expression if present.
    ///
    /// Removal is O(n): the tail shifts down so iteration order stays the
    /// insertion order, and the index is rebuilt for shifted entries.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Expr>> {
        let i = self.lookup(name)?;
        let (n, e) = self.entries.remove(i);
        self.index.remove(n.canonical());
        for (j, (n, _)) in self.entries.iter().enumerate().skip(i) {
            if let Some(slot) = self.index.get_mut(n.canonical()) {
                *slot = j;
            }
        }
        Some(e)
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        if !name.bytes().any(|b| b.is_ascii_uppercase()) {
            return self.index.get(name).copied();
        }
        // Mixed-case probe: fold into a stack buffer instead of allocating
        // a String per lookup (this is the match-scan hot path). ASCII
        // lowercasing only rewrites bytes < 0x80, so UTF-8 stays valid.
        let bytes = name.as_bytes();
        if bytes.len() <= 64 {
            let mut buf = [0u8; 64];
            for (dst, src) in buf.iter_mut().zip(bytes) {
                *dst = src.to_ascii_lowercase();
            }
            let lower = std::str::from_utf8(&buf[..bytes.len()])
                .expect("ASCII case folding preserves UTF-8");
            self.index.get(lower).copied()
        } else {
            let lower = name.to_ascii_lowercase();
            self.index.get(lower.as_str()).copied()
        }
    }

    /// Iterate attributes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrName, &Arc<Expr>)> {
        self.entries.iter().map(|(n, e)| (n, e))
    }

    /// Iterate attribute names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &AttrName> {
        self.entries.iter().map(|(n, _)| n)
    }

    /// If the attribute is bound to a plain string literal, return it.
    /// This does *not* evaluate; use [`crate::eval`] for computed attributes.
    pub fn get_string(&self, name: &str) -> Option<&str> {
        match self.get(name).map(|e| e.as_ref()) {
            Some(Expr::Lit(Literal::Str(s))) => Some(s),
            _ => None,
        }
    }

    /// If the attribute is bound to a plain integer literal, return it.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        match self.get(name).map(|e| e.as_ref()) {
            Some(Expr::Lit(Literal::Int(i))) => Some(*i),
            _ => None,
        }
    }

    /// Merge `other`'s attributes into `self` (other wins on collision).
    pub fn update_from(&mut self, other: &ClassAd) {
        for (n, e) in other.iter() {
            self.insert(n.clone(), e.clone());
        }
    }

    /// Build an ad from an iterator of `(name, expr)` pairs.
    pub fn from_pairs<N: Into<AttrName>>(pairs: impl IntoIterator<Item = (N, Expr)>) -> Self {
        let mut ad = ClassAd::new();
        for (n, e) in pairs {
            ad.set(n, e);
        }
        ad
    }
}

impl PartialEq for ClassAd {
    /// Structural equality: same attribute set (case-insensitive) bound to
    /// structurally equal expressions. Order-insensitive.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.iter().all(|(n, e)| match other.get(n.canonical()) {
                Some(oe) => **e == **oe,
                None => false,
            })
    }
}

impl<'a> IntoIterator for &'a ClassAd {
    type Item = (&'a AttrName, &'a Arc<Expr>);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (AttrName, Arc<Expr>)>,
        fn(&'a (AttrName, Arc<Expr>)) -> (&'a AttrName, &'a Arc<Expr>),
    >;

    fn into_iter(self) -> Self::IntoIter {
        fn split(p: &(AttrName, Arc<Expr>)) -> (&AttrName, &Arc<Expr>) {
            (&p.0, &p.1)
        }
        self.entries.iter().map(split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_case_insensitive() {
        let mut ad = ClassAd::new();
        ad.set("Memory", Expr::int(64));
        assert!(ad.contains("memory"));
        assert!(ad.contains("MEMORY"));
        assert_eq!(ad.get_int("MeMoRy"), Some(64));
        assert_eq!(ad.len(), 1);
    }

    #[test]
    fn replace_keeps_position_updates_spelling() {
        let mut ad = ClassAd::new();
        ad.set("A", Expr::int(1));
        ad.set("B", Expr::int(2));
        ad.set("a", Expr::int(10));
        let names: Vec<&str> = ad.names().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["a", "B"]);
        assert_eq!(ad.get_int("A"), Some(10));
        assert_eq!(ad.len(), 2);
    }

    #[test]
    fn remove_shifts_and_preserves_order() {
        let mut ad = ClassAd::new();
        ad.set("A", Expr::int(1));
        ad.set("B", Expr::int(2));
        ad.set("C", Expr::int(3));
        let removed = ad.remove("b").unwrap();
        assert_eq!(*removed, Expr::int(2));
        assert_eq!(ad.len(), 2);
        let names: Vec<&str> = ad.names().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["A", "C"]);
        // Index still consistent after the shift.
        assert_eq!(ad.get_int("C"), Some(3));
        assert_eq!(ad.get_int("A"), Some(1));
        assert!(ad.remove("nope").is_none());
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let mut ad = ClassAd::new();
        for n in ["Z", "A", "M"] {
            ad.set(n, Expr::int(0));
        }
        let names: Vec<&str> = ad.names().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["Z", "A", "M"]);
    }

    #[test]
    fn literal_accessors() {
        let mut ad = ClassAd::new();
        ad.set_str("Arch", "INTEL");
        ad.set_int("Mips", 104);
        ad.set(
            "Computed",
            Expr::bin(crate::ast::BinOp::Add, Expr::int(1), Expr::int(2)),
        );
        assert_eq!(ad.get_string("arch"), Some("INTEL"));
        assert_eq!(ad.get_int("mips"), Some(104));
        assert_eq!(ad.get_string("mips"), None);
        assert_eq!(ad.get_int("computed"), None, "computed attrs need eval");
    }

    #[test]
    fn structural_equality_order_insensitive() {
        let mut a = ClassAd::new();
        a.set("X", Expr::int(1));
        a.set("Y", Expr::str("s"));
        let mut b = ClassAd::new();
        b.set("y", Expr::str("s"));
        b.set("x", Expr::int(1));
        assert_eq!(a, b);
        b.set("z", Expr::int(0));
        assert_ne!(a, b);
    }

    #[test]
    fn update_from_merges() {
        let mut a = ClassAd::new();
        a.set("X", Expr::int(1));
        a.set("Y", Expr::int(2));
        let mut b = ClassAd::new();
        b.set("Y", Expr::int(20));
        b.set("Z", Expr::int(30));
        a.update_from(&b);
        assert_eq!(a.get_int("X"), Some(1));
        assert_eq!(a.get_int("Y"), Some(20));
        assert_eq!(a.get_int("Z"), Some(30));
    }

    #[test]
    fn from_pairs_builder() {
        let ad = ClassAd::from_pairs([("Type", Expr::str("Job")), ("Memory", Expr::int(31))]);
        assert_eq!(ad.len(), 2);
        assert_eq!(ad.get_string("type"), Some("Job"));
    }

    #[test]
    fn into_iterator_for_ref() {
        let ad = ClassAd::from_pairs([("A", Expr::int(1)), ("B", Expr::int(2))]);
        let mut seen = Vec::new();
        for (n, _) in &ad {
            seen.push(n.as_str().to_string());
        }
        assert_eq!(seen, vec!["A", "B"]);
    }
}
