//! Static attribute-dependency analysis over expressions.
//!
//! Matchmaking evaluates each request's `Constraint`/`Rank` against every
//! offer; the negotiator's autoclustering layer (crates/core) partitions
//! requests into equivalence classes whose members are guaranteed to score
//! identically against any offer. That guarantee rests on knowing, for a
//! given expression, *which attributes of which ad* its evaluation may
//! read. This module computes that statically.
//!
//! Soundness notes (why a syntactic walk suffices):
//!
//! * Attribute reads only happen through [`Expr::Attr`] (bare name,
//!   resolved self-then-other under the default policy) and
//!   [`Expr::ScopedAttr`] (`self.X` / `other.X`). `Select`/`Index` pick
//!   components out of already-computed *values*, and record constructors
//!   evaluate eagerly, so their inner references appear in the same tree
//!   and are seen by the walk.
//! * No builtin resolves an attribute from a runtime-computed string, so
//!   the reference set of an expression is closed under its syntax.
//! * `random()` draws from a stream seeded purely by
//!   [`crate::eval::EvalPolicy::random_seed`] (fresh per evaluator) and
//!   `time()` returns the policy clock, so two structurally identical
//!   expressions evaluated under the same policy read the same stream.

use crate::ast::{Expr, Scope};
use crate::classad::ClassAd;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Canonical names of attributes `expr` may read from the ad that contains
/// it: bare references (which resolve in `self` first) plus `self.X`.
pub fn self_refs(expr: &Expr, out: &mut BTreeSet<Arc<str>>) {
    expr.visit(&mut |e| match e {
        Expr::Attr(n) | Expr::ScopedAttr(Scope::My, n) => {
            out.insert(n.canonical_arc());
        }
        _ => {}
    });
}

/// Canonical names of attributes `expr` may read from the *other* ad of a
/// match: `other.X` plus bare references (which fall back to the other ad
/// when absent in `self` under the default policy).
pub fn other_refs(expr: &Expr, out: &mut BTreeSet<Arc<str>>) {
    expr.visit(&mut |e| match e {
        Expr::Attr(n) | Expr::ScopedAttr(Scope::Target, n) => {
            out.insert(n.canonical_arc());
        }
        _ => {}
    });
}

/// Expand a seed set of canonical attribute names to everything reachable
/// from it through `ad`'s own attribute expressions.
///
/// For every name in the set that is bound in `ad`, the bound expression's
/// [`self_refs`] are added, transitively, until a fixed point. Names not
/// bound in `ad` stay in the set (the *absence* of a binding is itself
/// information the caller may need — e.g. for cluster signatures, where
/// "missing" must distinguish from "bound to X").
///
/// Cycles (`X = X + 1`) terminate naturally: the visited set only grows.
pub fn dependency_closure(ad: &ClassAd, seeds: BTreeSet<Arc<str>>) -> BTreeSet<Arc<str>> {
    let mut visited = seeds;
    let mut work: Vec<Arc<str>> = visited.iter().cloned().collect();
    while let Some(name) = work.pop() {
        if let Some(expr) = ad.get(&name) {
            let mut refs = BTreeSet::new();
            self_refs(expr, &mut refs);
            for r in refs {
                if visited.insert(r.clone()) {
                    work.push(r);
                }
            }
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_classad, parse_expr};

    fn names(set: &BTreeSet<Arc<str>>) -> Vec<&str> {
        set.iter().map(|s| s.as_ref()).collect()
    }

    #[test]
    fn self_refs_collects_bare_and_my() {
        let e = parse_expr("self.Memory >= 32 && Arch == \"INTEL\" && other.Mips > 10").unwrap();
        let mut out = BTreeSet::new();
        self_refs(&e, &mut out);
        assert_eq!(names(&out), vec!["arch", "memory"]);
    }

    #[test]
    fn other_refs_collects_bare_and_target() {
        let e = parse_expr("self.Memory >= 32 && Arch == \"INTEL\" && other.Mips > 10").unwrap();
        let mut out = BTreeSet::new();
        other_refs(&e, &mut out);
        assert_eq!(names(&out), vec!["arch", "mips"]);
    }

    #[test]
    fn refs_reach_nested_structures() {
        // References inside selects, indexes, calls, lists and records are
        // all part of the same syntactic tree.
        let e = parse_expr("[a = Inner].a + Xs[Idx] + member(Needle, {Hay1, Hay2})").unwrap();
        let mut out = BTreeSet::new();
        self_refs(&e, &mut out);
        assert_eq!(
            names(&out),
            vec!["hay1", "hay2", "idx", "inner", "needle", "xs"]
        );
    }

    #[test]
    fn closure_follows_chains_and_survives_cycles() {
        let ad = parse_classad(
            "[ Rank = Score * 2; Score = Base + Boost; Base = 1; Looper = Looper + 1 ]",
        )
        .unwrap();
        let seeds: BTreeSet<Arc<str>> = [Arc::from("rank"), Arc::from("looper")].into();
        let closed = dependency_closure(&ad, seeds);
        // `boost` is unbound but stays in the set; `looper` self-cycle ends.
        assert_eq!(
            names(&closed),
            vec!["base", "boost", "looper", "rank", "score"]
        );
    }

    #[test]
    fn closure_keeps_unbound_seeds() {
        let ad = parse_classad("[ A = 1 ]").unwrap();
        let seeds: BTreeSet<Arc<str>> = [Arc::from("zzz")].into();
        let closed = dependency_closure(&ad, seeds);
        assert_eq!(names(&closed), vec!["zzz"]);
    }
}
