//! Bilateral matching semantics: symmetric constraint satisfaction and
//! rank evaluation (paper §3.2).
//!
//! "The classads ... assume a matchmaking algorithm that considers a pair of
//! ads to be incompatible unless their Constraint expressions both evaluate
//! to true. The Rank attributes is then used to choose among compatible
//! matches." Undefined constraints are treated as `false` (the match fails);
//! non-numeric ranks are treated as zero.

use crate::classad::ClassAd;
use crate::eval::{EvalPolicy, Evaluator, Side};
use crate::value::Value;

/// Names of the attributes the advertising protocol gives meaning to.
///
/// The paper uses `Constraint` and `Rank`; later Condor releases renamed
/// `Constraint` to `Requirements`. Both spellings are accepted by default:
/// the first present attribute from `constraint_attrs` is used.
#[derive(Debug, Clone)]
pub struct MatchConventions {
    /// Candidate names for the constraint attribute, in priority order.
    pub constraint_attrs: Vec<String>,
    /// Name of the rank attribute.
    pub rank_attr: String,
    /// What a *missing* constraint attribute means: `true` ("accept
    /// anything", useful for one-way queries) or `false` ("never match",
    /// the strict reading of the advertising protocol).
    pub missing_constraint_matches: bool,
}

impl Default for MatchConventions {
    fn default() -> Self {
        MatchConventions {
            constraint_attrs: vec!["Constraint".to_string(), "Requirements".to_string()],
            rank_attr: "Rank".to_string(),
            missing_constraint_matches: true,
        }
    }
}

impl MatchConventions {
    /// The name of the constraint attribute present in `ad`, if any.
    pub fn constraint_attr_of(&self, ad: &ClassAd) -> Option<&str> {
        self.constraint_attrs
            .iter()
            .map(|s| s.as_str())
            .find(|n| ad.contains(n))
    }
}

/// The outcome of evaluating a pair of ads against each other.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    /// `left`'s constraint, evaluated with `right` as the candidate.
    pub left_constraint: bool,
    /// `right`'s constraint, evaluated with `left` as the candidate.
    pub right_constraint: bool,
    /// `left`'s rank of `right` (non-numeric ⇒ 0).
    pub left_rank: f64,
    /// `right`'s rank of `left` (non-numeric ⇒ 0).
    pub right_rank: f64,
}

impl MatchResult {
    /// Both constraints hold.
    pub fn matched(&self) -> bool {
        self.left_constraint && self.right_constraint
    }
}

/// Does `ad`'s constraint accept `candidate`? One-way check; `undefined`
/// and `error` count as rejection.
pub fn constraint_holds(
    ad: &ClassAd,
    candidate: &ClassAd,
    policy: &EvalPolicy,
    conv: &MatchConventions,
) -> bool {
    let Some(attr) = conv.constraint_attr_of(ad) else {
        return conv.missing_constraint_matches;
    };
    let mut ev = Evaluator::pair(ad, candidate, policy);
    ev.eval_attr(Side::Left, attr).as_bool() == Some(true)
}

/// `ad`'s rank of `candidate`. "Non-integer values are treated as zero":
/// any non-numeric rank (including `undefined`, `error`, and a missing
/// attribute) maps to `0.0`. Booleans count as 0/1 for consistency with
/// arithmetic promotion.
pub fn rank_of(
    ad: &ClassAd,
    candidate: &ClassAd,
    policy: &EvalPolicy,
    conv: &MatchConventions,
) -> f64 {
    let mut ev = Evaluator::pair(ad, candidate, policy);
    let v = ev.eval_attr(Side::Left, &conv.rank_attr);
    rank_value(&v)
}

/// Map an evaluated rank to its numeric goodness.
pub fn rank_value(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Real(r) if r.is_finite() => *r,
        Value::Bool(b) => *b as i64 as f64,
        _ => 0.0,
    }
}

/// Evaluate both constraints and both ranks for a pair of ads.
pub fn evaluate_match(
    left: &ClassAd,
    right: &ClassAd,
    policy: &EvalPolicy,
    conv: &MatchConventions,
) -> MatchResult {
    MatchResult {
        left_constraint: constraint_holds(left, right, policy, conv),
        right_constraint: constraint_holds(right, left, policy, conv),
        left_rank: rank_of(left, right, policy, conv),
        right_rank: rank_of(right, left, policy, conv),
    }
}

/// Do two ads match symmetrically (both constraints true)?
pub fn symmetric_match(
    left: &ClassAd,
    right: &ClassAd,
    policy: &EvalPolicy,
    conv: &MatchConventions,
) -> bool {
    constraint_holds(left, right, policy, conv) && constraint_holds(right, left, policy, conv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{FIGURE1_MACHINE, FIGURE2_JOB};
    use crate::parser::parse_classad;

    fn conv() -> MatchConventions {
        MatchConventions::default()
    }

    fn pol() -> EvalPolicy {
        EvalPolicy::default()
    }

    #[test]
    fn figure_ads_match_symmetrically() {
        let machine = parse_classad(FIGURE1_MACHINE).unwrap();
        let job = parse_classad(FIGURE2_JOB).unwrap();
        let r = evaluate_match(&job, &machine, &pol(), &conv());
        assert!(r.matched(), "{r:?}");
        assert!(r.left_constraint);
        assert!(r.right_constraint);
        assert!(
            (r.left_rank - 23.893).abs() < 1e-9,
            "job rank of machine: {}",
            r.left_rank
        );
        assert_eq!(r.right_rank, 10.0, "machine rank of research-group job");
    }

    #[test]
    fn wrong_arch_fails_job_constraint() {
        let mut machine = parse_classad(FIGURE1_MACHINE).unwrap();
        machine.set_str("Arch", "SPARC");
        let job = parse_classad(FIGURE2_JOB).unwrap();
        assert!(!constraint_holds(&job, &machine, &pol(), &conv()));
        assert!(!symmetric_match(&job, &machine, &pol(), &conv()));
        // The machine still accepts the job; failure is one-sided.
        assert!(constraint_holds(&machine, &job, &pol(), &conv()));
    }

    #[test]
    fn insufficient_memory_fails() {
        let machine = parse_classad(FIGURE1_MACHINE).unwrap();
        let mut job = parse_classad(FIGURE2_JOB).unwrap();
        job.set_int("Memory", 128); // machine only has 64
        assert!(!symmetric_match(&job, &machine, &pol(), &conv()));
    }

    #[test]
    fn undefined_constraint_fails_match() {
        // Paper: "the match fails if the Constraint evaluates to undefined".
        let a = parse_classad("[Constraint = other.NoSuchAttr > 10]").unwrap();
        let b = parse_classad("[Constraint = true]").unwrap();
        assert!(!constraint_holds(&a, &b, &pol(), &conv()));
        assert!(constraint_holds(&b, &a, &pol(), &conv()));
        assert!(!symmetric_match(&a, &b, &pol(), &conv()));
    }

    #[test]
    fn missing_constraint_policy() {
        let bare = parse_classad("[x = 1]").unwrap();
        let other = parse_classad("[Constraint = true]").unwrap();
        assert!(symmetric_match(&bare, &other, &pol(), &conv()));
        let strict = MatchConventions {
            missing_constraint_matches: false,
            ..conv()
        };
        assert!(!symmetric_match(&bare, &other, &pol(), &strict));
    }

    #[test]
    fn requirements_alias_accepted() {
        let a = parse_classad("[Requirements = other.Memory >= 32]").unwrap();
        let big = parse_classad("[Constraint = true; Memory = 64]").unwrap();
        let small = parse_classad("[Constraint = true; Memory = 16]").unwrap();
        assert!(symmetric_match(&a, &big, &pol(), &conv()));
        assert!(!symmetric_match(&a, &small, &pol(), &conv()));
    }

    #[test]
    fn constraint_attr_priority_order() {
        // When both spellings are present, `Constraint` (listed first) wins.
        let a = parse_classad("[Constraint = false; Requirements = true]").unwrap();
        let b = parse_classad("[Constraint = true]").unwrap();
        assert!(!symmetric_match(&a, &b, &pol(), &conv()));
    }

    #[test]
    fn rank_non_numeric_is_zero() {
        let cases = [
            ("[Rank = \"fast\"]", 0.0),
            ("[Rank = undefined]", 0.0),
            ("[Rank = 1/0]", 0.0),
            ("[x = 1]", 0.0),
            ("[Rank = true]", 1.0),
            ("[Rank = 7]", 7.0),
            ("[Rank = 2.5]", 2.5),
            ("[Rank = 1.0/0.0]", 0.0),
        ];
        let target = parse_classad("[]").unwrap();
        for (src, want) in cases {
            let ad = parse_classad(src).unwrap();
            assert_eq!(rank_of(&ad, &target, &pol(), &conv()), want, "{src}");
        }
    }

    #[test]
    fn rank_sees_other_ad() {
        let ad = parse_classad("[Rank = other.Mips]").unwrap();
        let fast = parse_classad("[Mips = 104]").unwrap();
        let slow = parse_classad("[Mips = 10]").unwrap();
        assert!(rank_of(&ad, &fast, &pol(), &conv()) > rank_of(&ad, &slow, &pol(), &conv()));
    }

    #[test]
    fn match_result_requires_both() {
        let a = parse_classad("[Constraint = true]").unwrap();
        let b = parse_classad("[Constraint = false]").unwrap();
        let r = evaluate_match(&a, &b, &pol(), &conv());
        assert!(r.left_constraint);
        assert!(!r.right_constraint);
        assert!(!r.matched());
    }
}
