//! A small regular-expression engine for the `regexp()` builtin.
//!
//! Self-contained (no external crates), linear-time: patterns compile to a
//! Thompson NFA which is simulated with explicit state sets, so there is
//! no backtracking and no pathological input — important because patterns
//! arrive in *ads*, i.e. from untrusted remote entities.
//!
//! Supported syntax: literals, `.`, `*`, `+`, `?`, alternation `|`,
//! grouping `(...)`, character classes `[a-z]` / negated `[^...]`,
//! anchors `^` `$`, and the escapes `\d \D \w \W \s \S` plus escaped
//! metacharacters. Matching is *unanchored* by default (find anywhere),
//! like HTCondor's PCRE-based `regexp()`; compile with
//! [`RegexOptions::full_match`] to require the whole string.

use std::fmt;

/// Errors from pattern compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte position in the pattern.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for RegexError {}

/// Compilation options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegexOptions {
    /// ASCII case-insensitive matching (the classad `"i"` option).
    pub case_insensitive: bool,
    /// Require the pattern to cover the entire string (the classad `"f"`
    /// option in this implementation).
    pub full_match: bool,
}

impl RegexOptions {
    /// Parse an HTCondor-style option string; unknown letters are errors.
    pub fn parse(s: &str) -> Result<RegexOptions, RegexError> {
        let mut o = RegexOptions::default();
        for (i, c) in s.chars().enumerate() {
            match c {
                'i' | 'I' => o.case_insensitive = true,
                'f' | 'F' => o.full_match = true,
                // m/s/x accepted and ignored for PCRE-option compatibility.
                'm' | 's' | 'x' => {}
                other => {
                    return Err(RegexError {
                        pos: i,
                        message: format!("unknown option `{other}`"),
                    })
                }
            }
        }
        Ok(o)
    }
}

// ---------------------------------------------------------------------------
// Pattern AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Node {
    Empty,
    Char(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    StartAnchor,
    EndAnchor,
    Concat(Vec<Node>),
    Alt(Vec<Node>),
    Star(Box<Node>),
    Plus(Box<Node>),
    Opt(Box<Node>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ClassItem {
    Single(char),
    Range(char, char),
    Digit(bool),
    Word(bool),
    Space(bool),
}

struct PatternParser<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl<'a> PatternParser<'a> {
    fn err(&self, message: impl Into<String>) -> RegexError {
        RegexError {
            pos: self.pos.min(self.chars.len()),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_alt(&mut self) -> Result<Node, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Node::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Node, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Node::Empty,
            1 => items.pop().unwrap(),
            _ => Node::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Node, RegexError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Node::Star(Box::new(atom)))
            }
            Some('+') => {
                self.bump();
                Ok(Node::Plus(Box::new(atom)))
            }
            Some('?') => {
                self.bump();
                Ok(Node::Opt(Box::new(atom)))
            }
            Some('{') => Err(self.err("counted repetition `{m,n}` is not supported")),
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some(')') => Err(self.err("unmatched `)`")),
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::Any),
            Some('^') => Ok(Node::StartAnchor),
            Some('$') => Ok(Node::EndAnchor),
            Some('*') | Some('+') | Some('?') => Err(self.err("repetition with nothing to repeat")),
            Some('\\') => self.parse_escape(),
            Some(c) => Ok(Node::Char(c)),
        }
    }

    fn parse_escape(&mut self) -> Result<Node, RegexError> {
        let Some(c) = self.bump() else {
            return Err(self.err("dangling backslash"));
        };
        Ok(match c {
            'd' => Node::Class {
                negated: false,
                items: vec![ClassItem::Digit(false)],
            },
            'D' => Node::Class {
                negated: false,
                items: vec![ClassItem::Digit(true)],
            },
            'w' => Node::Class {
                negated: false,
                items: vec![ClassItem::Word(false)],
            },
            'W' => Node::Class {
                negated: false,
                items: vec![ClassItem::Word(true)],
            },
            's' => Node::Class {
                negated: false,
                items: vec![ClassItem::Space(false)],
            },
            'S' => Node::Class {
                negated: false,
                items: vec![ClassItem::Space(true)],
            },
            'n' => Node::Char('\n'),
            't' => Node::Char('\t'),
            'r' => Node::Char('\r'),
            // Any escaped punctuation matches itself.
            c if !c.is_alphanumeric() => Node::Char(c),
            other => return Err(self.err(format!("unknown escape `\\{other}`"))),
        })
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unclosed character class"));
            };
            if c == ']' && !items.is_empty() {
                break;
            }
            let lo = if c == '\\' {
                let Some(e) = self.bump() else {
                    return Err(self.err("dangling backslash in class"));
                };
                match e {
                    'd' => {
                        items.push(ClassItem::Digit(false));
                        continue;
                    }
                    'w' => {
                        items.push(ClassItem::Word(false));
                        continue;
                    }
                    's' => {
                        items.push(ClassItem::Space(false));
                        continue;
                    }
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            } else {
                c
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let Some(hi) = self.bump() else {
                    return Err(self.err("unterminated range"));
                };
                if hi < lo {
                    return Err(self.err(format!("invalid range `{lo}-{hi}`")));
                }
                items.push(ClassItem::Range(lo, hi));
            } else {
                items.push(ClassItem::Single(lo));
            }
        }
        let _ = self.src;
        Ok(Node::Class { negated, items })
    }
}

// ---------------------------------------------------------------------------
// NFA compilation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Inst {
    /// Match one character satisfying the test, advance.
    Consume(CharTest),
    /// Split: try both successors.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Match only at string start.
    AssertStart,
    /// Match only at string end.
    AssertEnd,
    /// Accept.
    Accept,
}

#[derive(Debug, Clone)]
enum CharTest {
    Char(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
}

impl CharTest {
    fn matches(&self, c: char, ci: bool) -> bool {
        let norm = |x: char| if ci { x.to_ascii_lowercase() } else { x };
        match self {
            CharTest::Char(p) => norm(*p) == norm(c),
            CharTest::Any => true,
            CharTest::Class { negated, items } => {
                let c2 = norm(c);
                let mut hit = false;
                for item in items {
                    hit |= match *item {
                        ClassItem::Single(s) => norm(s) == c2,
                        ClassItem::Range(lo, hi) => {
                            (norm(lo)..=norm(hi)).contains(&c2) || (lo..=hi).contains(&c)
                        }
                        ClassItem::Digit(neg) => c.is_ascii_digit() != neg,
                        ClassItem::Word(neg) => (c.is_alphanumeric() || c == '_') != neg,
                        ClassItem::Space(neg) => c.is_whitespace() != neg,
                    };
                    if hit {
                        break;
                    }
                }
                hit != *negated
            }
        }
    }
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Vec<Inst>,
    options: RegexOptions,
}

/// Guard against pathological pattern sizes arriving in ads.
const MAX_PATTERN_LEN: usize = 4096;

impl Regex {
    /// Compile `pattern` with `options`.
    pub fn new(pattern: &str, options: RegexOptions) -> Result<Regex, RegexError> {
        if pattern.len() > MAX_PATTERN_LEN {
            return Err(RegexError {
                pos: 0,
                message: "pattern too long".into(),
            });
        }
        let mut p = PatternParser {
            chars: pattern.chars().collect(),
            pos: 0,
            src: pattern,
        };
        let ast = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(p.err("trailing pattern input"));
        }
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Accept);
        Ok(Regex { prog, options })
    }

    /// Does the pattern match `text` (unanchored unless `full_match`)?
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        if self.options.full_match {
            return self.run(&chars, 0, true);
        }
        // Unanchored: try every start offset. The state-set simulation is
        // O(prog) per char, so the whole search is O(n² · prog) worst
        // case — fine for ad-sized strings, and still immune to
        // exponential blowup.
        (0..=chars.len()).any(|start| self.run(&chars, start, false))
    }

    fn run(&self, chars: &[char], start: usize, to_end: bool) -> bool {
        let ci = self.options.case_insensitive;
        let mut current: Vec<usize> = Vec::with_capacity(self.prog.len());
        let mut on_current = vec![false; self.prog.len()];
        let mut next: Vec<usize> = Vec::with_capacity(self.prog.len());
        let mut on_next = vec![false; self.prog.len()];

        // ε-closure insert.
        fn add(
            prog: &[Inst],
            pc: usize,
            set: &mut Vec<usize>,
            on: &mut [bool],
            at_start: bool,
            at_end: bool,
        ) {
            if on[pc] {
                return;
            }
            on[pc] = true;
            match &prog[pc] {
                Inst::Split(a, b) => {
                    add(prog, *a, set, on, at_start, at_end);
                    add(prog, *b, set, on, at_start, at_end);
                }
                Inst::Jmp(t) => add(prog, *t, set, on, at_start, at_end),
                Inst::AssertStart => {
                    if at_start {
                        add(prog, pc + 1, set, on, at_start, at_end);
                    }
                }
                Inst::AssertEnd => {
                    if at_end {
                        add(prog, pc + 1, set, on, at_start, at_end);
                    }
                }
                _ => set.push(pc),
            }
        }

        let n = chars.len();
        add(
            &self.prog,
            0,
            &mut current,
            &mut on_current,
            start == 0,
            start == n,
        );
        for (offset, &c) in chars[start..].iter().enumerate() {
            let i = start + offset;
            // Accept before consuming more input (unanchored suffix).
            if !to_end
                && current
                    .iter()
                    .any(|&pc| matches!(self.prog[pc], Inst::Accept))
            {
                return true;
            }
            next.clear();
            on_next.iter_mut().for_each(|b| *b = false);
            for &pc in &current {
                match &self.prog[pc] {
                    Inst::Consume(test) if test.matches(c, ci) => {
                        add(
                            &self.prog,
                            pc + 1,
                            &mut next,
                            &mut on_next,
                            false,
                            i + 1 == n,
                        );
                    }
                    _ => {}
                }
            }
            std::mem::swap(&mut current, &mut next);
            std::mem::swap(&mut on_current, &mut on_next);
            if current.is_empty() {
                return false;
            }
        }
        current
            .iter()
            .any(|&pc| matches!(self.prog[pc], Inst::Accept))
    }
}

fn compile(node: &Node, prog: &mut Vec<Inst>) {
    match node {
        Node::Empty => {}
        Node::Char(c) => prog.push(Inst::Consume(CharTest::Char(*c))),
        Node::Any => prog.push(Inst::Consume(CharTest::Any)),
        Node::Class { negated, items } => prog.push(Inst::Consume(CharTest::Class {
            negated: *negated,
            items: items.clone(),
        })),
        Node::StartAnchor => prog.push(Inst::AssertStart),
        Node::EndAnchor => prog.push(Inst::AssertEnd),
        Node::Concat(items) => {
            for item in items {
                compile(item, prog);
            }
        }
        Node::Alt(branches) => {
            // Chain of splits; each branch jumps to the common end.
            let mut jmp_slots = Vec::new();
            for (i, b) in branches.iter().enumerate() {
                if i + 1 < branches.len() {
                    let split_at = prog.len();
                    prog.push(Inst::Split(0, 0)); // patched below
                    let branch_start = prog.len();
                    compile(b, prog);
                    jmp_slots.push(prog.len());
                    prog.push(Inst::Jmp(0)); // patched below
                    let after = prog.len();
                    prog[split_at] = Inst::Split(branch_start, after);
                } else {
                    compile(b, prog);
                }
            }
            let end = prog.len();
            for slot in jmp_slots {
                prog[slot] = Inst::Jmp(end);
            }
        }
        Node::Star(inner) => {
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            let body = prog.len();
            compile(inner, prog);
            prog.push(Inst::Jmp(split_at));
            let after = prog.len();
            prog[split_at] = Inst::Split(body, after);
        }
        Node::Plus(inner) => {
            let body = prog.len();
            compile(inner, prog);
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            prog[split_at] = Inst::Split(body, split_at + 1);
        }
        Node::Opt(inner) => {
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            let body = prog.len();
            compile(inner, prog);
            let after = prog.len();
            prog[split_at] = Inst::Split(body, after);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat, RegexOptions::default())
            .unwrap()
            .is_match(text)
    }

    fn mf(pat: &str, text: &str) -> bool {
        Regex::new(
            pat,
            RegexOptions {
                full_match: true,
                ..Default::default()
            },
        )
        .unwrap()
        .is_match(text)
    }

    #[test]
    fn literals_unanchored() {
        assert!(m("wisc", "leonardo.cs.wisc.edu"));
        assert!(!m("mit", "leonardo.cs.wisc.edu"));
        assert!(m("", "anything"));
        assert!(m("", ""));
    }

    #[test]
    fn dot_and_escapes() {
        assert!(m(r"cs\.wisc", "leonardo.cs.wisc.edu"));
        assert!(!m(r"cs\.wisc", "csXwisc"));
        assert!(m("c.w", "cXw"));
        assert!(m(r"\d\d\d", "node042x"));
        assert!(!m(r"\d\d\d", "node42"));
        assert!(m(r"\w+", "a_b9"));
        assert!(m(r"\s", "a b"));
        assert!(!m(r"\s", "ab"));
        assert!(m(r"\D", "7a7"));
        assert!(!m(r"\D", "77"));
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab+c", "abc"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!mf("ab?c", "abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("INTEL|SPARC", "SPARC"));
        assert!(m("node(0|1)+", "node0110"));
        assert!(!mf("node(0|1)+", "node2"));
        assert!(m("(ab)+", "abab"));
        assert!(mf("(a|b)*", "abba"));
        assert!(mf("(a|b)*", ""));
    }

    #[test]
    fn classes() {
        assert!(m("[a-z]+", "HELLO there"));
        assert!(!mf("[a-z]+", "HELLO"));
        assert!(m("[^0-9]", "a1"));
        assert!(!m("[^0-9a]", "a1"));
        assert!(m(r"[\d]", "x5"));
        assert!(m("[-x]", "-"));
        assert!(m("[]x]", "]"), "leading ] is literal");
        assert!(mf("node[0-9][0-9]", "node42"));
    }

    #[test]
    fn anchors() {
        assert!(m("^node", "node42"));
        assert!(!m("^node", "xnode42"));
        assert!(m("edu$", "cs.wisc.edu"));
        assert!(!m("edu$", "edu.wisc"));
        assert!(m("^exact$", "exact"));
        assert!(!m("^exact$", "inexact"));
    }

    #[test]
    fn case_insensitive() {
        let re = Regex::new(
            "intel",
            RegexOptions {
                case_insensitive: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(re.is_match("INTEL"));
        assert!(re.is_match("Intel inside"));
        assert!(!Regex::new("intel", RegexOptions::default())
            .unwrap()
            .is_match("INTEL"));
        // Classes and ranges fold too.
        let re = Regex::new(
            "^[a-z]+$",
            RegexOptions {
                case_insensitive: true,
                full_match: false,
            },
        )
        .unwrap();
        assert!(re.is_match("MiXeD"));
    }

    #[test]
    fn full_match_option() {
        assert!(mf("abc", "abc"));
        assert!(!mf("abc", "xabcx"));
        assert!(m("abc", "xabcx"));
    }

    #[test]
    fn no_exponential_blowup() {
        // The classic backtracking killer: (a*)*b against aⁿ.
        let pat = "(a*)*b";
        let text = "a".repeat(2000);
        let re = Regex::new(pat, RegexOptions::default()).unwrap();
        let start = std::time::Instant::now();
        assert!(!re.is_match(&text));
        assert!(start.elapsed().as_secs() < 5, "NFA must stay polynomial");
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::new("(", RegexOptions::default()).is_err());
        assert!(Regex::new(")", RegexOptions::default()).is_err());
        assert!(Regex::new("[abc", RegexOptions::default()).is_err());
        assert!(Regex::new("*a", RegexOptions::default()).is_err());
        assert!(Regex::new("a{2,3}", RegexOptions::default()).is_err());
        assert!(Regex::new(r"\q", RegexOptions::default()).is_err());
        assert!(Regex::new("[z-a]", RegexOptions::default()).is_err());
        let e = Regex::new("(", RegexOptions::default()).unwrap_err();
        assert!(e.to_string().contains("regex error"));
    }

    #[test]
    fn options_parse() {
        assert_eq!(
            RegexOptions::parse("if").unwrap(),
            RegexOptions {
                case_insensitive: true,
                full_match: true
            }
        );
        assert_eq!(RegexOptions::parse("").unwrap(), RegexOptions::default());
        assert!(RegexOptions::parse("msx").is_ok(), "pcre options tolerated");
        assert!(RegexOptions::parse("z").is_err());
    }

    #[test]
    fn unicode_text() {
        assert!(m("é+", "caféééé"));
        assert!(mf(".+", "日本語"));
    }

    #[test]
    fn realistic_ad_patterns() {
        // Hostname pattern over machine names.
        assert!(m(r"^node\d+\.pool\.example$", "node0042.pool.example"));
        assert!(!m(r"^node\d+\.pool\.example$", "node42.pool.example.evil"));
        // OS version pattern.
        assert!(m("^SOLARIS2(51|6)$", "SOLARIS251"));
        assert!(m("^SOLARIS2(51|6)$", "SOLARIS26"));
        assert!(!m("^SOLARIS2(51|6)$", "SOLARIS25"));
    }
}
