//! Expression evaluation: attribute resolution across two ads, three-valued
//! logic, cycle detection, and resource limits.
//!
//! Evaluation follows the paper (§3.2): the matchmaker "evaluates
//! expressions in an environment that allows each classad to access
//! attributes of the other". `self.X` refers to the ad containing the
//! reference, `other.X` to the candidate ad. An unqualified reference
//! resolves in the containing ad first; if the attribute is absent there it
//! falls back to the other ad (when one is present).
//!
//! The fallback deserves a note: the paper's prose says a bare name "assumes
//! the `self` prefix", but its own Figure 2 relies on `Arch == "INTEL"`
//! resolving against the *machine* ad (the job ad defines no `Arch`), as
//! Condor's implementation did. We therefore default to self-then-other
//! resolution; strict self-only resolution is available through
//! [`EvalPolicy::fallback_to_other`].
//!
//! A reference to an attribute that cannot be found anywhere evaluates to
//! `undefined`. Circular references and excessive recursion evaluate to
//! `error`. Evaluation never panics and never returns `Err` — failure is a
//! value.

use crate::ast::{AttrName, BinOp, Expr, Literal, Scope, UnOp};
use crate::builtins;
use crate::classad::ClassAd;
use crate::value::{
    apply_strict_binary, arith_neg, arith_pos, bit_not, combine_and, combine_or, logical_not, Value,
};
use std::sync::Arc;

/// Tunables for evaluation.
#[derive(Debug, Clone)]
pub struct EvalPolicy {
    /// Resolve unqualified names in the other ad when the containing ad
    /// lacks them (required by the paper's Figure 2; default `true`).
    pub fallback_to_other: bool,
    /// Maximum recursion depth before evaluation yields `error`.
    pub max_depth: u32,
    /// The value returned by the `time()` builtin, when set (seconds).
    /// Simulations inject their virtual clock here; `None` makes `time()`
    /// evaluate to `error`, keeping evaluation deterministic by default.
    pub now: Option<i64>,
    /// Seed for the `random(n)` builtin's deterministic stream.
    pub random_seed: u64,
}

impl Default for EvalPolicy {
    fn default() -> Self {
        EvalPolicy {
            fallback_to_other: true,
            max_depth: 256,
            now: None,
            random_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Which of the two ads an expression is being evaluated on behalf of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The "left" ad (conventionally the one whose attribute we started in).
    Left,
    /// The "right" ad.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// The evaluation engine. Create one per evaluation (they are cheap); it
/// tracks in-progress attributes for cycle detection and a recursion-depth
/// budget.
pub struct Evaluator<'a> {
    left: &'a ClassAd,
    right: Option<&'a ClassAd>,
    policy: &'a EvalPolicy,
    in_progress: Vec<(usize, Arc<str>)>,
    depth: u32,
    rng_state: u64,
}

impl<'a> Evaluator<'a> {
    /// Evaluator over a single ad (no `other`).
    pub fn single(ad: &'a ClassAd, policy: &'a EvalPolicy) -> Self {
        Evaluator {
            left: ad,
            right: None,
            policy,
            in_progress: Vec::new(),
            depth: 0,
            rng_state: policy.random_seed,
        }
    }

    /// Evaluator over a pair of ads in a match context.
    pub fn pair(left: &'a ClassAd, right: &'a ClassAd, policy: &'a EvalPolicy) -> Self {
        Evaluator {
            left,
            right: Some(right),
            policy,
            in_progress: Vec::new(),
            depth: 0,
            rng_state: policy.random_seed,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &'a EvalPolicy {
        self.policy
    }

    fn ad_for(&self, side: Side) -> Option<&'a ClassAd> {
        match side {
            Side::Left => Some(self.left),
            Side::Right => self.right,
        }
    }

    /// Next value from the deterministic `random()` stream (splitmix64).
    pub(crate) fn next_random(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Evaluate an attribute of the given side's root ad.
    pub fn eval_attr(&mut self, side: Side, name: &str) -> Value {
        let Some(ad) = self.ad_for(side) else {
            return Value::Undefined;
        };
        match ad.get_entry(name) {
            Some((attr, expr)) => {
                let expr = expr.clone();
                self.guarded_attr_eval(ad, attr, &expr, side)
            }
            None => Value::Undefined,
        }
    }

    fn guarded_attr_eval(
        &mut self,
        ad: &ClassAd,
        name: &AttrName,
        expr: &Expr,
        side: Side,
    ) -> Value {
        // `canonical_arc` shares the AttrName's cached fold — no allocation
        // per attribute evaluation on the match-scan hot path.
        let key = (ad as *const ClassAd as usize, name.canonical_arc());
        if self
            .in_progress
            .iter()
            .any(|(p, n)| *p == key.0 && **n == *key.1)
        {
            // Circular reference, e.g. `X = X + 1`.
            return Value::Error;
        }
        self.in_progress.push(key);
        let v = self.eval(expr, side);
        self.in_progress.pop();
        v
    }

    /// Evaluate an expression on behalf of `side`.
    pub fn eval(&mut self, expr: &Expr, side: Side) -> Value {
        if self.depth >= self.policy.max_depth {
            return Value::Error;
        }
        self.depth += 1;
        let v = self.eval_inner(expr, side);
        self.depth -= 1;
        v
    }

    fn eval_inner(&mut self, expr: &Expr, side: Side) -> Value {
        match expr {
            Expr::Lit(l) => literal_value(l),
            Expr::Attr(name) => self.resolve_bare(name, side),
            Expr::ScopedAttr(Scope::My, name) => self.resolve_scoped(side, name),
            Expr::ScopedAttr(Scope::Target, name) => self.resolve_scoped(side.flip(), name),
            Expr::Select(base, name) => {
                let b = self.eval(base, side);
                self.select(&b, name)
            }
            Expr::Index(base, idx) => {
                let b = self.eval(base, side);
                let i = self.eval(idx, side);
                self.index(&b, &i)
            }
            Expr::Unary(op, e) => {
                let v = self.eval(e, side);
                match op {
                    UnOp::Neg => arith_neg(&v),
                    UnOp::Pos => arith_pos(&v),
                    UnOp::Not => logical_not(&v),
                    UnOp::BitNot => bit_not(&v),
                }
            }
            Expr::Binary(BinOp::And, l, r) => {
                let lv = self.eval(l, side);
                // Short-circuit only on a definite false; `undefined && x`
                // must still inspect `x` (it may be false).
                if lv.as_bool() == Some(false) {
                    return Value::Bool(false);
                }
                let rv = self.eval(r, side);
                combine_and(&lv, &rv)
            }
            Expr::Binary(BinOp::Or, l, r) => {
                let lv = self.eval(l, side);
                if lv.as_bool() == Some(true) {
                    return Value::Bool(true);
                }
                let rv = self.eval(r, side);
                combine_or(&lv, &rv)
            }
            Expr::Binary(BinOp::Is, l, r) => {
                let lv = self.eval(l, side);
                let rv = self.eval(r, side);
                Value::Bool(lv.same_as(&rv))
            }
            Expr::Binary(BinOp::Isnt, l, r) => {
                let lv = self.eval(l, side);
                let rv = self.eval(r, side);
                Value::Bool(!lv.same_as(&rv))
            }
            Expr::Binary(op, l, r) => {
                let lv = self.eval(l, side);
                let rv = self.eval(r, side);
                apply_strict_binary(*op, &lv, &rv)
            }
            Expr::Cond(c, t, e) => {
                let cv = self.eval(c, side);
                match cv {
                    Value::Bool(true) => self.eval(t, side),
                    Value::Bool(false) => self.eval(e, side),
                    Value::Undefined => Value::Undefined,
                    _ => Value::Error,
                }
            }
            Expr::Call(name, args) => builtins::call(self, side, name.canonical(), args),
            Expr::List(items) => {
                let vs: Vec<Value> = items.iter().map(|e| self.eval(e, side)).collect();
                Value::list(vs)
            }
            Expr::Record(fields) => {
                // Record constructors evaluate eagerly in the enclosing
                // context; the resulting nested ad is fully constant. (A
                // deliberate simplification of lexical scoping — see
                // DESIGN.md. Gang matching pulls nested *expressions* from
                // the AST instead, so it is unaffected.)
                let mut ad = ClassAd::with_capacity(fields.len());
                for (n, fe) in fields {
                    let v = self.eval(fe, side);
                    ad.insert(n.clone(), Arc::new(value_to_expr(&v)));
                }
                Value::Ad(Arc::new(ad))
            }
        }
    }

    fn resolve_bare(&mut self, name: &AttrName, side: Side) -> Value {
        if let Some(ad) = self.ad_for(side) {
            if let Some((attr, expr)) = ad.get_entry(name.canonical()) {
                let expr = expr.clone();
                let attr = attr.clone();
                return self.guarded_attr_eval(ad, &attr, &expr, side);
            }
        }
        if self.policy.fallback_to_other {
            let other = side.flip();
            if let Some(ad) = self.ad_for(other) {
                if let Some((attr, expr)) = ad.get_entry(name.canonical()) {
                    let expr = expr.clone();
                    let attr = attr.clone();
                    // The other ad's expression evaluates in *its* context:
                    // its bare names see its own attributes first.
                    return self.guarded_attr_eval(ad, &attr, &expr, other);
                }
            }
        }
        Value::Undefined
    }

    fn resolve_scoped(&mut self, side: Side, name: &AttrName) -> Value {
        let Some(ad) = self.ad_for(side) else {
            return Value::Undefined;
        };
        match ad.get_entry(name.canonical()) {
            Some((attr, expr)) => {
                let expr = expr.clone();
                let attr = attr.clone();
                self.guarded_attr_eval(ad, &attr, &expr, side)
            }
            None => Value::Undefined,
        }
    }

    fn select(&mut self, base: &Value, name: &AttrName) -> Value {
        match base {
            Value::Ad(ad) => match ad.get(name.canonical()) {
                // Nested ad values are constant (see Record above), so a
                // plain single-ad evaluation suffices.
                Some(expr) => {
                    let expr = expr.clone();
                    let policy = self.policy;
                    let mut sub = Evaluator::single(ad, policy);
                    sub.eval(&expr, Side::Left)
                }
                None => Value::Undefined,
            },
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        }
    }

    fn index(&mut self, base: &Value, idx: &Value) -> Value {
        match (base, idx) {
            (Value::Error, _) | (_, Value::Error) => Value::Error,
            (Value::Undefined, _) | (_, Value::Undefined) => Value::Undefined,
            (Value::List(items), Value::Int(i)) => {
                if *i >= 0 && (*i as usize) < items.len() {
                    items[*i as usize].clone()
                } else {
                    Value::Error
                }
            }
            (Value::Ad(_), Value::Str(name)) => self.select(base, &AttrName::new(name)),
            _ => Value::Error,
        }
    }
}

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Undefined => Value::Undefined,
        Literal::Error => Value::Error,
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Int(i) => Value::Int(*i),
        Literal::Real(r) => Value::Real(*r),
        Literal::Str(s) => Value::Str(s.clone()),
    }
}

/// Convert a runtime value back into a constant expression (used when
/// materializing record constructors).
pub fn value_to_expr(v: &Value) -> Expr {
    match v {
        Value::Undefined => Expr::Lit(Literal::Undefined),
        Value::Error => Expr::Lit(Literal::Error),
        Value::Bool(b) => Expr::bool(*b),
        Value::Int(i) => Expr::int(*i),
        Value::Real(r) => Expr::real(*r),
        Value::Str(s) => Expr::Lit(Literal::Str(s.clone())),
        Value::List(items) => Expr::List(items.iter().map(value_to_expr).collect()),
        Value::Ad(ad) => Expr::Record(
            ad.iter()
                .map(|(n, e)| (n.clone(), e.as_ref().clone()))
                .collect(),
        ),
    }
}

impl ClassAd {
    /// Evaluate one of this ad's attributes in a single-ad context.
    pub fn eval_attr(&self, name: &str, policy: &EvalPolicy) -> Value {
        Evaluator::single(self, policy).eval_attr(Side::Left, name)
    }

    /// Evaluate an arbitrary expression against this ad.
    pub fn eval_expr(&self, expr: &Expr, policy: &EvalPolicy) -> Value {
        Evaluator::single(self, policy).eval(expr, Side::Left)
    }

    /// Evaluate one of this ad's attributes with `other` as the candidate ad.
    pub fn eval_attr_against(&self, name: &str, other: &ClassAd, policy: &EvalPolicy) -> Value {
        Evaluator::pair(self, other, policy).eval_attr(Side::Left, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_classad, parse_expr};

    fn pol() -> EvalPolicy {
        EvalPolicy::default()
    }

    fn eval1(ad_src: &str, expr: &str) -> Value {
        let ad = parse_classad(ad_src).unwrap();
        let e = parse_expr(expr).unwrap();
        ad.eval_expr(&e, &pol())
    }

    fn eval2(left: &str, right: &str, expr: &str) -> Value {
        let l = parse_classad(left).unwrap();
        let r = parse_classad(right).unwrap();
        let e = parse_expr(expr).unwrap();
        let p = pol();
        Evaluator::pair(&l, &r, &p).eval(&e, Side::Left)
    }

    #[test]
    fn literal_and_arithmetic() {
        assert_eq!(eval1("[]", "1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval1("[]", "(1 + 2) * 3"), Value::Int(9));
        assert_eq!(eval1("[]", "10 / 4"), Value::Int(2));
        assert_eq!(eval1("[]", "10.0 / 4"), Value::Real(2.5));
    }

    #[test]
    fn attribute_reference() {
        assert_eq!(eval1("[Memory = 64]", "Memory * 2"), Value::Int(128));
        assert_eq!(eval1("[A = B + 1; B = 2]", "A"), Value::Int(3));
    }

    #[test]
    fn missing_attribute_is_undefined() {
        assert_eq!(eval1("[]", "Memory"), Value::Undefined);
        assert_eq!(eval1("[]", "Memory > 32"), Value::Undefined);
        assert_eq!(eval1("[]", "self.Memory"), Value::Undefined);
        assert_eq!(eval1("[]", "other.Memory"), Value::Undefined);
    }

    #[test]
    fn paper_strictness_examples() {
        // All four of the paper's examples are undefined when the target
        // has no Memory attribute.
        for e in [
            "other.Memory > 32",
            "other.Memory == 32",
            "other.Memory != 32",
            "!(other.Memory == 32)",
        ] {
            assert_eq!(eval2("[]", "[]", e), Value::Undefined, "{e}");
        }
    }

    #[test]
    fn paper_is_undefined_example() {
        // "other.Memory is undefined || other.Memory < 32"
        assert_eq!(
            eval2("[]", "[]", "other.Memory is undefined || other.Memory < 32"),
            Value::Bool(true)
        );
        assert_eq!(
            eval2(
                "[]",
                "[Memory = 64]",
                "other.Memory is undefined || other.Memory < 32"
            ),
            Value::Bool(false)
        );
    }

    #[test]
    fn self_and_other_resolution() {
        assert_eq!(
            eval2(
                "[Memory = 31]",
                "[Memory = 64]",
                "other.Memory >= self.Memory"
            ),
            Value::Bool(true)
        );
        assert_eq!(
            eval2("[Memory = 31]", "[Memory = 64]", "other.Memory >= Memory"),
            Value::Bool(true)
        );
        assert_eq!(
            eval2(
                "[Memory = 128]",
                "[Memory = 64]",
                "other.Memory >= self.Memory"
            ),
            Value::Bool(false)
        );
    }

    #[test]
    fn bare_name_falls_back_to_other() {
        // The job ad has no Arch; the reference must resolve in the machine
        // ad (paper Figure 2).
        assert_eq!(
            eval2("[]", r#"[Arch = "INTEL"]"#, r#"Arch == "INTEL""#),
            Value::Bool(true)
        );
    }

    #[test]
    fn fallback_can_be_disabled() {
        let l = parse_classad("[]").unwrap();
        let r = parse_classad(r#"[Arch = "INTEL"]"#).unwrap();
        let e = parse_expr(r#"Arch == "INTEL""#).unwrap();
        let p = EvalPolicy {
            fallback_to_other: false,
            ..pol()
        };
        assert_eq!(
            Evaluator::pair(&l, &r, &p).eval(&e, Side::Left),
            Value::Undefined
        );
    }

    #[test]
    fn other_attribute_evaluates_in_its_own_context() {
        // right.Score references right's own Base, not left's.
        assert_eq!(
            eval2(
                "[Base = 100]",
                "[Base = 1; Score = Base + 1]",
                "other.Score"
            ),
            Value::Int(2)
        );
    }

    #[test]
    fn other_attribute_can_reference_back() {
        // Machine's Rank references other.Owner — i.e. the *left* ad.
        assert_eq!(
            eval2(
                r#"[Owner = "raman"]"#,
                r#"[Rank = member(other.Owner, Trusted); Trusted = { "raman" }]"#,
                "other.Rank"
            ),
            Value::Bool(true)
        );
    }

    #[test]
    fn circular_reference_is_error() {
        assert_eq!(eval1("[X = X + 1]", "X"), Value::Error);
        assert_eq!(eval1("[A = B; B = A]", "A"), Value::Error);
    }

    #[test]
    fn mutual_recursion_across_ads_is_error() {
        assert_eq!(eval2("[A = other.B]", "[B = other.A]", "A"), Value::Error);
    }

    #[test]
    fn depth_limit_is_error() {
        // A chain a1000 -> a999 -> ... -> a0 exceeds the recursion budget
        // long before it exhausts the stack.
        let mut src = String::from("[ a0 = 1");
        for i in 1..=1000 {
            src.push_str(&format!("; a{i} = a{} + 1", i - 1));
        }
        src.push(']');
        let ad = parse_classad(&src).unwrap();
        assert_eq!(ad.eval_attr("a1000", &pol()), Value::Error);
        // A chain well inside the budget evaluates fine.
        assert_eq!(ad.eval_attr("a100", &pol()), Value::Int(101));
    }

    #[test]
    fn conditional_three_valued() {
        assert_eq!(eval1("[]", "true ? 1 : 2"), Value::Int(1));
        assert_eq!(eval1("[]", "false ? 1 : 2"), Value::Int(2));
        assert_eq!(eval1("[]", "Missing ? 1 : 2"), Value::Undefined);
        assert_eq!(eval1("[]", "3 ? 1 : 2"), Value::Error);
    }

    #[test]
    fn short_circuit_skips_error() {
        assert_eq!(eval1("[]", "false && (1/0 == 1)"), Value::Bool(false));
        assert_eq!(eval1("[]", "true || (1/0 == 1)"), Value::Bool(true));
        // But symmetric non-strictness still sees a right-side false.
        assert_eq!(eval1("[]", "Missing && false"), Value::Bool(false));
        assert_eq!(eval1("[]", "(1/0 == 1) && false"), Value::Bool(false));
    }

    #[test]
    fn list_and_index() {
        assert_eq!(eval1("[xs = {10, 20, 30}]", "xs[1]"), Value::Int(20));
        assert_eq!(eval1("[xs = {10}]", "xs[5]"), Value::Error);
        assert_eq!(eval1("[xs = {10}]", "xs[-1]"), Value::Error);
        assert_eq!(eval1("[]", "Missing[0]"), Value::Undefined);
        assert_eq!(eval1("[x = 1]", "x[0]"), Value::Error);
    }

    #[test]
    fn record_select() {
        assert_eq!(eval1("[r = [a = 1; b = a + 1]]", "r.a"), Value::Int(1));
        // Eager record evaluation: `a` inside the record resolves in the
        // enclosing context at construction time.
        assert_eq!(eval1("[a = 5; r = [x = a * 2]]", "r.x"), Value::Int(10));
        assert_eq!(eval1("[r = [a = 1]]", "r.missing"), Value::Undefined);
        assert_eq!(eval1("[r = [a = 1]]", "r[\"a\"]"), Value::Int(1));
        assert_eq!(eval1("[x = 3]", "x.a"), Value::Error);
    }

    #[test]
    fn eval_attr_convenience() {
        let ad = parse_classad("[Rank = 2 * 3]").unwrap();
        assert_eq!(ad.eval_attr("rank", &pol()), Value::Int(6));
        assert_eq!(ad.eval_attr("missing", &pol()), Value::Undefined);
    }

    #[test]
    fn figure1_figure2_constraints_hold() {
        let machine = parse_classad(crate::fixtures::FIGURE1_MACHINE).unwrap();
        let job = parse_classad(crate::fixtures::FIGURE2_JOB).unwrap();
        let p = pol();
        // Job's constraint against the machine.
        let v = job.eval_attr_against("Constraint", &machine, &p);
        assert_eq!(v, Value::Bool(true), "job constraint must accept machine");
        // Machine's constraint against the job: owner "raman" is in
        // ResearchGroup, so Rank = 10 and the constraint is true.
        let v = machine.eval_attr_against("Constraint", &job, &p);
        assert_eq!(v, Value::Bool(true), "machine constraint must accept job");
        // Machine's Rank for this job.
        let v = machine.eval_attr_against("Rank", &job, &p);
        assert_eq!(v, Value::Int(10));
        // Job's Rank for this machine: 21893/1e3 + 64/32 = 21.893 + 2.
        let v = job.eval_attr_against("Rank", &machine, &p);
        match v {
            Value::Real(r) => assert!((r - 23.893).abs() < 1e-9, "rank was {r}"),
            other => panic!("expected real rank, got {other:?}"),
        }
    }

    #[test]
    fn figure1_rejects_untrusted() {
        let machine = parse_classad(crate::fixtures::FIGURE1_MACHINE).unwrap();
        let mut job = parse_classad(crate::fixtures::FIGURE2_JOB).unwrap();
        job.set_str("Owner", "rival");
        let v = machine.eval_attr_against("Constraint", &job, &pol());
        assert_ne!(v, Value::Bool(true), "untrusted user must not match");
    }
}
