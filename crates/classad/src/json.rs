//! JSON import/export for classads.
//!
//! The mapping keeps classads interoperable with ordinary tooling while
//! remaining lossless:
//!
//! * literal integers, reals, strings and booleans map to JSON scalars;
//! * lists map to arrays and nested records map to objects;
//! * `undefined` maps to `null`, `error` maps to `{"$error": true}`;
//! * any *computed* expression (the interesting part of a classad — its
//!   `Constraint` and `Rank`) maps to `{"$expr": "<classad source>"}`.
//!
//! The JSON reader/writer here is self-contained (no external crates),
//! handles `\uXXXX` escapes including surrogate pairs, and rejects malformed
//! input with positioned errors.

use crate::ast::{AttrName, Expr, Literal};
use crate::classad::ClassAd;
use crate::error::{ParseError, Span};
use crate::parser::parse_expr;
use crate::pretty::escape_string as classad_escape;
use std::fmt::Write as _;
use std::sync::Arc;

/// Serialize a classad to a compact JSON string.
pub fn to_json(ad: &ClassAd) -> String {
    let mut out = String::new();
    write_ad(&mut out, ad);
    out
}

fn write_ad(out: &mut String, ad: &ClassAd) {
    out.push('{');
    for (i, (name, expr)) in ad.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, name.as_str());
        out.push(':');
        write_expr(out, expr);
    }
    out.push('}');
}

fn write_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Lit(Literal::Undefined) => out.push_str("null"),
        Expr::Lit(Literal::Error) => out.push_str("{\"$error\":true}"),
        Expr::Lit(Literal::Bool(b)) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Lit(Literal::Int(i)) => {
            let _ = write!(out, "{i}");
        }
        Expr::Lit(Literal::Real(r)) => {
            if r.is_finite() {
                let s = format!("{r}");
                out.push_str(&s);
                if !(s.contains('.') || s.contains('e') || s.contains('E')) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no infinities; fall back to an expression marker.
                let _ = write!(out, "{{\"$expr\":{}}}", json_quote(&format!("{e}")));
            }
        }
        Expr::Lit(Literal::Str(s)) => write_json_string(out, s),
        Expr::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_expr(out, item);
            }
            out.push(']');
        }
        Expr::Record(fields) => {
            out.push('{');
            for (i, (n, fe)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, n.as_str());
                out.push(':');
                write_expr(out, fe);
            }
            out.push('}');
        }
        other => {
            let _ = write!(out, "{{\"$expr\":{}}}", json_quote(&format!("{other}")));
        }
    }
}

fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_json_string(&mut out, s);
    out
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (in the mapping produced by [`to_json`]) into a
/// classad. The top-level value must be an object.
pub fn from_json(src: &str) -> Result<ClassAd, ParseError> {
    let mut p = JsonParser {
        src: src.as_bytes(),
        text: src,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != src.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    match v {
        mut v @ Expr::Record(_) => {
            let Expr::Record(fields) = &mut v else {
                unreachable!()
            };
            let mut ad = ClassAd::with_capacity(fields.len());
            for (n, e) in fields.drain(..) {
                ad.insert(n, Arc::new(e));
            }
            Ok(ad)
        }
        _ => Err(ParseError::new(
            Span::default(),
            "top-level JSON value must be an object",
        )),
    }
}

struct JsonParser<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        // Count newlines over bytes: `pos` may sit mid-character when the
        // error is a malformed multi-byte sequence, and slicing the &str
        // there would panic.
        let upto = self.pos.min(self.src.len());
        let line = 1 + self.src[..upto].iter().filter(|&&b| b == b'\n').count() as u32;
        ParseError::new(Span::new(self.pos, self.pos, line, 1), msg.to_string())
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.src.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str) -> bool {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.lit("null") {
                    Ok(Expr::Lit(Literal::Undefined))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.lit("true") {
                    Ok(Expr::bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.lit("false") {
                    Ok(Expr::bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => {
                let s = self.string()?;
                Ok(Expr::Lit(Literal::Str(Arc::from(s.as_str()))))
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Expr::List(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    if self.eat(b',') {
                        continue;
                    }
                    self.expect(b']')?;
                    return Ok(Expr::List(items));
                }
            }
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Expr, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(AttrName, Expr)> = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Expr::Record(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((AttrName::new(&key), val));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            break;
        }
        // Marker objects.
        if fields.len() == 1 {
            let (k, v) = &fields[0];
            match k.canonical() {
                "$error" => return Ok(Expr::Lit(Literal::Error)),
                "$expr" => {
                    if let Expr::Lit(Literal::Str(src)) = v {
                        return parse_expr(src);
                    }
                    return Err(self.err("$expr marker must hold a string"));
                }
                _ => {}
            }
        }
        Ok(Expr::Record(fields))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the whole char.
                    let start = self.pos - 1;
                    let c = self.text[start..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("bad utf8"))?;
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        // `get` instead of indexing: a multi-byte char inside the escape
        // (e.g. `\u00é0`) would otherwise cut a char boundary and panic.
        let s = self
            .text
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated or malformed \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Expr, ParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_real = false;
        if self.eat(b'.') {
            is_real = true;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_real = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.text[start..self.pos];
        if is_real {
            text.parse::<f64>()
                .map(Expr::real)
                .map_err(|_| self.err("bad number"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Expr::int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Expr::real)
                    .map_err(|_| self.err("bad number")),
            }
        }
    }
}

/// Escape helper shared with textual classads (re-exported for tools that
/// emit both formats).
pub fn classad_string_literal(s: &str) -> String {
    classad_escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_classad;

    fn roundtrip(src: &str) {
        let ad = parse_classad(src).unwrap();
        let js = to_json(&ad);
        let back = from_json(&js).unwrap_or_else(|e| panic!("bad json `{js}`: {e}"));
        assert_eq!(ad, back, "json round-trip changed ad; json was `{js}`");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(r#"[ a = 1; b = 2.5; c = "hi"; d = true; e = false ]"#);
    }

    #[test]
    fn undefined_and_error_roundtrip() {
        roundtrip("[ u = undefined; e = error ]");
        let ad = parse_classad("[ u = undefined ]").unwrap();
        assert_eq!(to_json(&ad), "{\"u\":null}");
    }

    #[test]
    fn lists_and_records_roundtrip() {
        roundtrip(r#"[ xs = { 1, "two", 3.0 }; r = [ nested = { true } ] ]"#);
    }

    #[test]
    fn computed_expressions_roundtrip() {
        roundtrip(r#"[ Rank = KFlops/1E3 + other.Memory/32; Constraint = a && b || !c ]"#);
    }

    #[test]
    fn figure_ads_roundtrip_via_json() {
        roundtrip(crate::fixtures::FIGURE1_MACHINE);
        roundtrip(crate::fixtures::FIGURE2_JOB);
    }

    #[test]
    fn expr_marker_format() {
        let ad = parse_classad("[ Rank = 1 + 2 ]").unwrap();
        assert_eq!(to_json(&ad), "{\"Rank\":{\"$expr\":\"1 + 2\"}}");
    }

    #[test]
    fn real_formatting_keeps_type() {
        let ad = parse_classad("[ x = 2.0 ]").unwrap();
        let js = to_json(&ad);
        assert_eq!(js, "{\"x\":2.0}");
        let back = from_json(&js).unwrap();
        assert_eq!(
            back.get("x").map(|e| e.as_ref().clone()),
            Some(Expr::real(2.0))
        );
    }

    #[test]
    fn string_escapes() {
        roundtrip(r#"[ s = "line\nquote\"tab\t" ]"#);
        let back = from_json(r#"{"s":"Aé"}"#).unwrap();
        assert_eq!(back.get_string("s"), Some("Aé"));
        let back = from_json(r#"{"s":"😀"}"#).unwrap();
        assert_eq!(back.get_string("s"), Some("😀"));
    }

    #[test]
    fn multibyte_char_inside_escape_is_error_not_panic() {
        assert!(from_json("{\"s\":\"\\u00é0\"}").is_err());
        assert!(from_json("{\"s\":\"\\uﬀﬀ\"}").is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(from_json("{").is_err());
        assert!(from_json("{\"a\":}").is_err());
        assert!(from_json("[1]").is_err(), "top level must be object");
        assert!(from_json("{\"a\":1} extra").is_err());
        assert!(from_json("{\"a\":tru}").is_err());
        assert!(from_json("{\"s\":\"\\ud83d\"}").is_err(), "lone surrogate");
    }

    #[test]
    fn numbers_parse_types() {
        let ad = from_json(r#"{"i": -42, "r": 1e3, "d": 0.5}"#).unwrap();
        assert_eq!(ad.get_int("i"), Some(-42));
        assert_eq!(
            ad.get("r").map(|e| e.as_ref().clone()),
            Some(Expr::real(1000.0))
        );
        assert_eq!(
            ad.get("d").map(|e| e.as_ref().clone()),
            Some(Expr::real(0.5))
        );
    }

    #[test]
    fn nested_objects_become_records() {
        let ad = from_json(r#"{"outer": {"inner": [1, 2]}}"#).unwrap();
        match ad.get("outer").map(|e| e.as_ref()) {
            Some(Expr::Record(fields)) => {
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].0.as_str(), "inner");
                assert!(matches!(fields[0].1, Expr::List(_)));
            }
            other => panic!("{other:?}"),
        }
    }
}
