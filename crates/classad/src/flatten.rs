//! Partial evaluation ("flattening") of expressions against one ad.
//!
//! Flattening reduces everything an expression can know *now* — its own
//! ad's attributes, arithmetic over constants, conditionals with decided
//! conditions — while leaving references to the *other* ad (and anything
//! unresolvable) symbolic. The classic ClassAd library exposes the same
//! operation; matchmakers use it to pre-digest constraints once per ad
//! instead of re-deriving the local parts for every candidate, and
//! diagnosis tools use it to show users the *effective* constraint their
//! ad exports.
//!
//! ```
//! use classad::{parse_classad, parse_expr};
//! use classad::flatten::flatten;
//! use classad::EvalPolicy;
//!
//! let ad = parse_classad("[ MinMemory = 32; Threshold = MinMemory * 2 ]").unwrap();
//! let e = parse_expr("other.Memory >= Threshold && other.Arch == Arch").unwrap();
//! let flat = flatten(&e, &ad, &EvalPolicy::default());
//! assert_eq!(flat.to_string(), "other.Memory >= 64 && other.Arch == Arch");
//! ```
//!
//! Semantics preservation is the contract: for any pair evaluation,
//! `flatten(e, left)` evaluates to the same value as `e` (property-tested
//! in `tests/proptests.rs`). To honour it the folder is conservative:
//!
//! * only *fully constant, pure* subtrees are evaluated (calls to
//!   `time()`/`random()` never fold);
//! * three-valued shortcuts are applied only where they are dominant for
//!   **every** operand type: `false && x → false`, `true || x → true`,
//!   and constant-condition `?:`;
//! * a bare name defined by the ad is inlined only when its own
//!   definition flattens to a constant — otherwise the reference stays
//!   symbolic (it may involve the other ad).

use crate::ast::{AttrName, BinOp, Expr, Literal, Scope};
use crate::classad::ClassAd;
use crate::eval::{value_to_expr, EvalPolicy, Evaluator, Side};
use std::collections::HashSet;

/// Is this expression a fully materialized constant (no references, no
/// calls)?
pub fn is_constant(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) => true,
        Expr::List(items) => items.iter().all(is_constant),
        Expr::Record(fields) => fields.iter().all(|(_, fe)| is_constant(fe)),
        _ => false,
    }
}

/// Functions whose results depend on evaluation context, not just their
/// arguments; folding them would freeze time or randomness.
fn is_impure_call(name: &AttrName) -> bool {
    matches!(name.canonical(), "random" | "time")
}

/// Flatten `expr` against `ad`: fold everything locally decidable, keep
/// the rest symbolic.
pub fn flatten(expr: &Expr, ad: &ClassAd, policy: &EvalPolicy) -> Expr {
    let mut in_progress = HashSet::new();
    go(expr, ad, policy, &mut in_progress)
}

/// Evaluate an already-constant expression to a value and re-embed it
/// (normalizes e.g. list constructors of literals).
fn eval_constant(e: &Expr, policy: &EvalPolicy) -> Expr {
    let empty = ClassAd::new();
    let mut ev = Evaluator::single(&empty, policy);
    value_to_expr(&ev.eval(e, Side::Left))
}

fn go(expr: &Expr, ad: &ClassAd, policy: &EvalPolicy, seen: &mut HashSet<String>) -> Expr {
    match expr {
        Expr::Lit(_) => expr.clone(),
        Expr::ScopedAttr(Scope::Target, _) => expr.clone(),
        Expr::Attr(name) | Expr::ScopedAttr(Scope::My, name) => {
            let key = name.canonical().to_string();
            // Cycle guard: a self-referential definition stays symbolic.
            if seen.contains(&key) {
                return expr.clone();
            }
            match ad.get(name.canonical()) {
                Some(def) => {
                    seen.insert(key.clone());
                    let flat = go(def, ad, policy, seen);
                    seen.remove(&key);
                    if is_constant(&flat) {
                        flat
                    } else {
                        expr.clone()
                    }
                }
                None => match expr {
                    // `self.X` with X absent can never resolve elsewhere.
                    Expr::ScopedAttr(Scope::My, _) => Expr::Lit(Literal::Undefined),
                    // A bare name may still resolve in the other ad.
                    _ => expr.clone(),
                },
            }
        }
        Expr::Unary(op, inner) => {
            let i = go(inner, ad, policy, seen);
            let node = Expr::Unary(*op, Box::new(i));
            if is_foldable(&node) {
                eval_constant(&node, policy)
            } else {
                node
            }
        }
        Expr::Binary(op, l, r) => {
            let lf = go(l, ad, policy, seen);
            let rf = go(r, ad, policy, seen);
            // Dominant three-valued shortcuts, valid for ANY other operand
            // (including error and non-boolean):
            //   false && x == x && false == false
            //   true  || x == x || true  == true
            match op {
                BinOp::And if (is_bool_lit(&lf, false) || is_bool_lit(&rf, false)) => {
                    return Expr::bool(false);
                }
                BinOp::Or if (is_bool_lit(&lf, true) || is_bool_lit(&rf, true)) => {
                    return Expr::bool(true);
                }
                _ => {}
            }
            let node = Expr::Binary(*op, Box::new(lf), Box::new(rf));
            if is_foldable(&node) {
                eval_constant(&node, policy)
            } else {
                node
            }
        }
        Expr::Cond(c, t, e) => {
            let cf = go(c, ad, policy, seen);
            match &cf {
                Expr::Lit(Literal::Bool(true)) => go(t, ad, policy, seen),
                Expr::Lit(Literal::Bool(false)) => go(e, ad, policy, seen),
                Expr::Lit(Literal::Undefined) => Expr::Lit(Literal::Undefined),
                Expr::Lit(_) => Expr::Lit(Literal::Error),
                _ => Expr::Cond(
                    Box::new(cf),
                    Box::new(go(t, ad, policy, seen)),
                    Box::new(go(e, ad, policy, seen)),
                ),
            }
        }
        Expr::Call(name, args) => {
            let flat_args: Vec<Expr> = args.iter().map(|a| go(a, ad, policy, seen)).collect();
            let node = Expr::Call(name.clone(), flat_args);
            if !is_impure_call(name) && is_foldable(&node) {
                eval_constant(&node, policy)
            } else {
                node
            }
        }
        Expr::List(items) => Expr::List(items.iter().map(|i| go(i, ad, policy, seen)).collect()),
        Expr::Record(fields) => Expr::Record(
            fields
                .iter()
                .map(|(n, fe)| (n.clone(), go(fe, ad, policy, seen)))
                .collect(),
        ),
        Expr::Select(base, name) => {
            let b = go(base, ad, policy, seen);
            let node = Expr::Select(Box::new(b), name.clone());
            if is_foldable(&node) {
                eval_constant(&node, policy)
            } else {
                node
            }
        }
        Expr::Index(base, idx) => {
            let b = go(base, ad, policy, seen);
            let i = go(idx, ad, policy, seen);
            let node = Expr::Index(Box::new(b), Box::new(i));
            if is_foldable(&node) {
                eval_constant(&node, policy)
            } else {
                node
            }
        }
    }
}

fn is_bool_lit(e: &Expr, want: bool) -> bool {
    matches!(e, Expr::Lit(Literal::Bool(b)) if *b == want)
}

/// A node folds when every immediate child is a constant (the node itself
/// being a pure operator).
fn is_foldable(e: &Expr) -> bool {
    match e {
        Expr::Unary(_, i) => is_constant(i),
        Expr::Binary(_, l, r) => is_constant(l) && is_constant(r),
        Expr::Call(_, args) => args.iter().all(is_constant),
        Expr::Select(b, _) => is_constant(b),
        Expr::Index(b, i) => is_constant(b) && is_constant(i),
        _ => false,
    }
}

impl ClassAd {
    /// Flatten one of this ad's attributes against the ad itself — the
    /// "effective constraint" the ad exports to the matchmaker.
    pub fn flatten_attr(&self, name: &str, policy: &EvalPolicy) -> Option<Expr> {
        let e = self.get(name)?;
        Some(flatten(e, self, policy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_classad, parse_expr};

    fn flat(ad_src: &str, expr_src: &str) -> String {
        let ad = parse_classad(ad_src).unwrap();
        let e = parse_expr(expr_src).unwrap();
        flatten(&e, &ad, &EvalPolicy::default()).to_string()
    }

    #[test]
    fn constants_fold() {
        assert_eq!(flat("[]", "1 + 2 * 3"), "7");
        assert_eq!(flat("[]", "(1 < 2) && (3 < 4)"), "true");
        assert_eq!(flat("[]", "strcat(\"a\", \"b\")"), "\"ab\"");
        assert_eq!(flat("[]", "{1, 1 + 1}[1]"), "2");
    }

    #[test]
    fn local_attrs_inline() {
        assert_eq!(
            flat("[MinMemory = 32]", "other.Memory >= MinMemory"),
            "other.Memory >= 32"
        );
        assert_eq!(flat("[A = 2; B = A * 3]", "B + 1"), "7");
        assert_eq!(flat("[X = 5]", "self.X * self.X"), "25");
    }

    #[test]
    fn target_refs_stay_symbolic() {
        assert_eq!(
            flat("[Memory = 64]", "other.Memory >= Memory"),
            "other.Memory >= 64"
        );
        assert_eq!(
            flat("[]", "other.Arch == \"INTEL\""),
            "other.Arch == \"INTEL\""
        );
    }

    #[test]
    fn unresolved_bare_names_stay_symbolic() {
        // `Arch` may resolve against the other ad at match time.
        assert_eq!(flat("[]", "Arch == \"INTEL\""), "Arch == \"INTEL\"");
    }

    #[test]
    fn missing_self_ref_folds_to_undefined() {
        assert_eq!(flat("[]", "self.Nope"), "undefined");
        // And propagates through strict operators.
        assert_eq!(flat("[]", "self.Nope + 1"), "undefined");
    }

    #[test]
    fn attr_defined_by_target_expression_not_inlined() {
        // M's definition mentions the other ad: the reference must stay.
        assert_eq!(flat("[M = other.Memory * 2]", "M >= 64"), "M >= 64");
    }

    #[test]
    fn dominant_shortcuts() {
        assert_eq!(flat("[]", "false && other.X > 1"), "false");
        assert_eq!(flat("[]", "other.X > 1 && false"), "false");
        assert_eq!(flat("[]", "true || other.X > 1"), "true");
        // Non-dominant cases must NOT simplify (true && 5 is error, not 5).
        assert_eq!(flat("[]", "true && other.X > 1"), "true && other.X > 1");
        assert_eq!(flat("[]", "other.X > 1 || false"), "other.X > 1 || false");
    }

    #[test]
    fn conditional_decides_when_condition_constant() {
        assert_eq!(flat("[Fast = true]", "Fast ? other.Mips : 0"), "other.Mips");
        assert_eq!(flat("[Fast = false]", "Fast ? other.Mips : 0"), "0");
        assert_eq!(flat("[]", "self.Nope ? 1 : 2"), "undefined");
        assert_eq!(flat("[]", "3 ? 1 : 2"), "error");
        assert_eq!(
            flat("[]", "other.B ? 1 + 1 : 2 + 2"),
            "other.B ? 2 : 4",
            "branches still flatten under a symbolic condition"
        );
    }

    #[test]
    fn impure_calls_never_fold() {
        assert_eq!(flat("[]", "random(10)"), "random(10)");
        assert_eq!(flat("[]", "time()"), "time()");
        // But their arguments flatten.
        assert_eq!(flat("[N = 5]", "random(N * 2)"), "random(10)");
    }

    #[test]
    fn cycles_stay_symbolic() {
        assert_eq!(flat("[X = X + 1]", "X > 0"), "X > 0");
        assert_eq!(flat("[A = B; B = A]", "A"), "A");
    }

    #[test]
    fn figure2_constraint_flattens_against_job() {
        let job = parse_classad(crate::fixtures::FIGURE2_JOB).unwrap();
        let flatc = job
            .flatten_attr("Constraint", &EvalPolicy::default())
            .unwrap();
        let s = flatc.to_string();
        // `self.Memory` has been folded to 31; the target side remains.
        assert!(s.contains("other.Memory >= 31"), "{s}");
        assert!(s.contains("other.Type == \"Machine\""), "{s}");
        // Bare refs that the job ad cannot resolve are still there.
        assert!(s.contains("Arch == \"INTEL\""), "{s}");
    }

    #[test]
    fn figure1_rank_flattens_list_sources() {
        let machine = parse_classad(crate::fixtures::FIGURE1_MACHINE).unwrap();
        let flat_rank = machine
            .flatten_attr("Rank", &EvalPolicy::default())
            .unwrap();
        let s = flat_rank.to_string();
        // The member() calls reference other.Owner so they stay, but the
        // list arguments inline.
        assert!(s.contains("\"raman\""), "{s}");
        assert!(s.contains("other.Owner"), "{s}");
    }

    #[test]
    fn flatten_preserves_evaluation_pairwise() {
        // Hand-picked pairs; the exhaustive version is a proptest.
        let policy = EvalPolicy::default();
        let left = parse_classad(
            r#"[ Memory = 31; T = "Machine"; C = other.Type == T && other.Memory >= Memory ]"#,
        )
        .unwrap();
        let right =
            parse_classad(r#"[ Type = "Machine"; Memory = 64; Constraint = true ]"#).unwrap();
        let orig = left.get("C").unwrap().as_ref().clone();
        let flatc = flatten(&orig, &left, &policy);
        let v1 = Evaluator::pair(&left, &right, &policy).eval(&orig, Side::Left);
        let v2 = Evaluator::pair(&left, &right, &policy).eval(&flatc, Side::Left);
        assert!(v1.same_as(&v2), "{v1:?} vs {v2:?} (flat: {flatc})");
    }

    #[test]
    fn is_constant_classifier() {
        assert!(is_constant(&parse_expr("{1, \"a\", [x = 1]}").unwrap()));
        assert!(!is_constant(&parse_expr("{1, y}").unwrap()));
        assert!(!is_constant(&parse_expr("f()").unwrap()));
    }
}
