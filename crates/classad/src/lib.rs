//! # classad — the Classified Advertisement language
//!
//! An implementation of the ClassAd data model from *Raman, Livny &
//! Solomon, "Matchmaking: Distributed Resource Management for High
//! Throughput Computing" (HPDC 1998)*.
//!
//! A **classad** is a semi-structured mapping from case-insensitive
//! attribute names to expressions. The model folds the query language into
//! the data itself: an ad's `Constraint` attribute *is* its query over
//! candidate ads, and its `Rank` attribute is its preference function.
//! Expressions evaluate under a three-valued logic where missing
//! information yields `undefined` and contradictory information yields
//! `error`, so ads with entirely different schemas can still be matched
//! safely.
//!
//! ## Quick start
//!
//! ```
//! use classad::{parse_classad, symmetric_match, EvalPolicy, MatchConventions};
//!
//! let machine = parse_classad(r#"[
//!     Type = "Machine"; Arch = "INTEL"; Memory = 64;
//!     Constraint = other.Type == "Job";
//! ]"#).unwrap();
//!
//! let job = parse_classad(r#"[
//!     Type = "Job"; Memory = 31;
//!     Constraint = other.Type == "Machine" && Arch == "INTEL"
//!                  && other.Memory >= self.Memory;
//! ]"#).unwrap();
//!
//! let policy = EvalPolicy::default();
//! let conv = MatchConventions::default();
//! assert!(symmetric_match(&job, &machine, &policy, &conv));
//! ```
//!
//! ## Module map
//!
//! * [`lexer`] / [`parser`] — text → AST ([`Expr`], [`ClassAd`]).
//! * [`value`] — runtime [`Value`]s and strict operator semantics.
//! * [`eval`] — the [`Evaluator`]: `self`/`other` resolution, cycle
//!   detection, resource limits.
//! * [`builtins`] — the function library (`member`, `strcmp`, `size`, …).
//! * [`matching`] — [`symmetric_match`], [`rank_of`], [`evaluate_match`].
//! * [`analyze`] — traced match evaluation: *why* a pairing was rejected
//!   ([`traced_symmetric_match`], [`RejectReason`]).
//! * [`pretty`] — unparser; `Display` impls that round-trip.
//! * [`json`] — JSON import/export for interop and trace files.
//! * [`fixtures`] — the paper's Figure 1 and Figure 2 ads, verbatim.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod ast;
pub mod builtins;
pub mod classad;
pub mod deps;
pub mod error;
pub mod eval;
pub mod fixtures;
pub mod flatten;
pub mod json;
pub mod lexer;
pub mod matching;
pub mod parser;
pub mod pretty;
pub mod regex;
pub mod token;
pub mod value;

pub use analyze::{
    conjuncts_of, traced_constraint_holds, traced_symmetric_match, EvalTrace, RejectReason,
    RejectSide,
};
pub use ast::{AttrName, BinOp, Expr, Literal, Scope, UnOp};
pub use classad::ClassAd;
pub use error::{LexError, ParseError, Span};
pub use eval::{EvalPolicy, Evaluator, Side};
pub use matching::{
    constraint_holds, evaluate_match, rank_of, rank_value, symmetric_match, MatchConventions,
    MatchResult,
};
pub use parser::{parse_classad, parse_classads, parse_expr};
pub use value::{Value, ValueKind};
