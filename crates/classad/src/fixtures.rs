//! The verbatim example classads from the paper, shipped as fixtures so
//! tests, examples, and benchmarks all exercise exactly the ads the paper
//! presents.
//!
//! Values that the conference PDF renders illegibly (the `Disk` constant,
//! the `DayTime` sample, the job's `Args`) are filled with representative
//! constants; every attribute *name* and every expression structure is as
//! published.

/// Figure 1: "A classad describing a workstation" — `leonardo.cs.wisc.edu`,
/// including the owner's usage policy: users in `Untrusted` are never
/// served; research-group members always are (`Rank >= 10`); friends only
/// when the workstation is idle; everyone else only outside 8am–6pm.
pub const FIGURE1_MACHINE: &str = r#"
[
    Type         = "Machine";
    Activity     = "Idle";
    DayTime      = 36107;        // current time in seconds since midnight
    KeyboardIdle = 1432;         // seconds
    Disk         = 323496;       // kbytes
    Memory       = 64;           // megabytes
    State        = "Unclaimed";
    LoadAvg      = 0.042969;
    Mips         = 104;
    Arch         = "INTEL";
    OpSys        = "SOLARIS251";
    KFlops       = 21893;
    Name         = "leonardo.cs.wisc.edu";
    ResearchGroup = { "raman", "miron", "solomon", "jbasney" };
    Friends       = { "tannenba", "wright" };
    Untrusted     = { "rival", "riffraff" };
    Rank = member(other.Owner, ResearchGroup) * 10 +
           member(other.Owner, Friends);
    Constraint = !member(other.Owner, Untrusted) && Rank >= 10 ? true :
                 Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 :
                 DayTime < 8*60*60 || DayTime > 18*60*60;
]
"#;

/// Figure 2: "A classad describing a submitted job" — user `raman`'s
/// `run_sim` job, requiring an INTEL/SOLARIS251 machine with enough disk
/// and memory, and preferring fast machines with spare memory.
pub const FIGURE2_JOB: &str = r#"
[
    Type               = "Job";
    QDate              = 886799469;  // submit time, secs past 1/1/1970
    CompletionDate     = 0;
    Owner              = "raman";
    Cmd                = "run_sim";
    WantRemoteSyscalls = 1;
    WantCheckpoint     = 1;
    Iwd                = "/usr/raman/sim2";
    Args               = "-Q 17 3200 10";
    Memory             = 31;
    Rank       = KFlops/1E3 + other.Memory/32;
    Constraint = other.Type == "Machine" && Arch == "INTEL" &&
                 OpSys == "SOLARIS251" && Disk >= 10000 &&
                 other.Memory >= self.Memory;
]
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_classad;

    #[test]
    fn figure1_parses_with_expected_attributes() {
        let ad = parse_classad(FIGURE1_MACHINE).unwrap();
        assert_eq!(ad.len(), 18);
        for attr in [
            "Type",
            "Activity",
            "DayTime",
            "KeyboardIdle",
            "Disk",
            "Memory",
            "State",
            "LoadAvg",
            "Mips",
            "Arch",
            "OpSys",
            "KFlops",
            "Name",
            "ResearchGroup",
            "Friends",
            "Untrusted",
            "Rank",
            "Constraint",
        ] {
            assert!(ad.contains(attr), "missing {attr}");
        }
        assert_eq!(ad.get_string("Name"), Some("leonardo.cs.wisc.edu"));
    }

    #[test]
    fn figure2_parses_with_expected_attributes() {
        let ad = parse_classad(FIGURE2_JOB).unwrap();
        assert_eq!(ad.len(), 12);
        assert_eq!(ad.get_string("Owner"), Some("raman"));
        assert_eq!(ad.get_int("Memory"), Some(31));
    }
}
