//! Property tests for the self-ad rendering pipeline: any metrics
//! snapshot must render to a classad that (a) survives a print/parse
//! round trip and (b) evaluates `other.MyType == "<type>"` correctly —
//! the exact path a remote `condor_status --stats` query takes.

use condor_obs::{attr_name, self_ad, self_ad_constraint, HistogramSnapshot, MetricsSnapshot};
use proptest::prelude::*;

fn arb_metric_name() -> impl Strategy<Value = String> {
    // Registry names in the wild: snake_case segments, occasionally
    // digits, occasionally odd separators (attr_name must sanitize all).
    proptest::string::string_regex("[a-z][a-z0-9_]{0,20}(\\.[a-z0-9]{1,4})?").unwrap()
}

fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    let counters = proptest::collection::vec((arb_metric_name(), any::<u32>()), 0..8);
    let gauges = proptest::collection::vec((arb_metric_name(), -1000i64..1000), 0..8);
    let histos = proptest::collection::vec((arb_metric_name(), 0u64..50, 0.0f64..1e6), 0..4);
    (counters, gauges, histos).prop_map(|(cs, gs, hs)| {
        let mut snap = MetricsSnapshot::default();
        for (n, v) in cs {
            snap.counters.insert(n, v as u64);
        }
        for (n, v) in gs {
            snap.gauges.insert(n, v);
        }
        for (n, count, base) in hs {
            snap.histograms.insert(
                n,
                if count == 0 {
                    HistogramSnapshot::default()
                } else {
                    HistogramSnapshot {
                        count,
                        min: base,
                        max: base * 2.0 + 1.0,
                        mean: base * 1.5,
                        p50: base * 1.4,
                        p90: base * 1.9,
                        p99: base * 2.0,
                    }
                },
            );
        }
        snap
    })
}

fn arb_my_type() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("MatchmakerStats".to_string()),
        Just("ResourceAgentStats".to_string()),
        Just("CustomerAgentStats".to_string()),
        Just("SimulatorStats".to_string()),
        proptest::string::string_regex("[A-Z][A-Za-z0-9]{0,12}").unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_snapshot_renders_to_a_reparseable_ad(
        snap in arb_snapshot(),
        my_type in arb_my_type(),
    ) {
        let ad = self_ad("daemon#stats", &my_type, 42, &snap);
        let printed = ad.to_string();
        let back = classad::parse_classad(&printed)
            .unwrap_or_else(|e| panic!("self-ad failed to reparse: {e}\n{printed}"));
        prop_assert_eq!(&ad, &back, "print/parse changed the self-ad");
        // Every counter and gauge survives as a queryable int attribute.
        for (name, v) in &snap.counters {
            prop_assert_eq!(
                back.get_int(&attr_name(name)),
                Some(*v as i64),
                "counter {} lost",
                name
            );
        }
        for (name, v) in &snap.gauges {
            prop_assert_eq!(back.get_int(&attr_name(name)), Some(*v), "gauge {} lost", name);
        }
    }

    #[test]
    fn my_type_constraint_selects_exactly_the_right_ads(
        snap in arb_snapshot(),
        my_type in arb_my_type(),
        other_type in arb_my_type(),
    ) {
        let policy = classad::EvalPolicy::default();
        let conv = classad::MatchConventions::default();
        let ad = self_ad("daemon#stats", &my_type, 0, &snap);
        let query = |ty: &str| {
            classad::parse_classad(&format!("[ Constraint = {} ]", self_ad_constraint(ty)))
                .expect("constraint parses")
        };
        prop_assert!(
            classad::constraint_holds(&query(&my_type), &ad, &policy, &conv),
            "self-ad of type {} must satisfy its own type constraint",
            my_type
        );
        if other_type != my_type {
            prop_assert!(
                !classad::constraint_holds(&query(&other_type), &ad, &policy, &conv),
                "type {} must not satisfy a {} constraint",
                my_type,
                other_type
            );
        }
        // The self-ad's own Constraint = false: it never accepts a match.
        prop_assert!(!classad::constraint_holds(&ad, &query(&my_type), &policy, &conv));
    }
}
