//! Journal rotation under concurrent writers.
//!
//! The journal's contract is that the sequence numbering is monotone and
//! gap-free no matter how many threads append, including while size-based
//! rotation is shuffling generations underneath them. These tests hammer
//! one journal from many threads with a rotation threshold small enough
//! that rotation fires many times mid-run, then replay and check the
//! sequence.

use condor_obs::journal::{Event, Journal, JournalConfig};
use condor_obs::replay;
use condor_obs::trace::SpanContext;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "condor-obs-journal-concurrency-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn concurrent_appends_with_rotation_replay_gap_free() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 200;
    let dir = temp_dir("gapfree");
    let path = dir.join("j.jsonl");
    let journal = Arc::new(
        Journal::open(JournalConfig {
            path: path.clone(),
            // Each line is ~100 bytes, so this forces dozens of rotations
            // while the writers are still running.
            rotate_bytes: 4096,
            // Keep every generation: the assertion is about gaps, and a
            // generation falling off the end would create one by design.
            keep_rotated: 256,
            max_rotated: None,
            sync_on_rotate: false,
        })
        .unwrap(),
    );

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let journal = Arc::clone(&journal);
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let span = SpanContext {
                        trace_id: w + 1,
                        span_id: w * PER_WRITER + i + 1,
                        parent_span_id: 0,
                    };
                    let out = journal.append_traced(
                        Event::FrameRejected {
                            peer: format!("writer-{w}"),
                            reason: format!("append {i}"),
                        },
                        Some(span),
                    );
                    assert!(out.written, "append hit an I/O error mid-test");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = WRITERS * PER_WRITER;
    assert_eq!(journal.position(), total);
    assert_eq!(journal.io_errors(), 0);

    let records = replay(&path).unwrap();
    assert_eq!(
        records.len() as u64,
        total,
        "replay must see every record across all generations"
    );
    let mut seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    for (i, seq) in seqs.iter().enumerate() {
        assert_eq!(
            *seq,
            i as u64 + 1,
            "sequence must be contiguous 1..={total} with no gaps or duplicates"
        );
    }
    // Replay order is generation order; within the journal's contract the
    // records come back already monotone, not merely complete.
    assert!(
        records.windows(2).all(|w| w[1].seq == w[0].seq + 1),
        "replay must yield records in monotone sequence order"
    );
    // Every record kept its span stamp through the concurrent shuffle.
    assert!(records.iter().all(|r| r.span.is_some()));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_appends_interleave_with_readers() {
    // Writers append while a reader replays mid-stream: replay must never
    // observe a sequence that goes backwards, even when it races rotation.
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 150;
    let dir = temp_dir("readers");
    let path = dir.join("j.jsonl");
    let journal = Arc::new(
        Journal::open(JournalConfig {
            path: path.clone(),
            rotate_bytes: 2048,
            keep_rotated: 64,
            max_rotated: None,
            sync_on_rotate: false,
        })
        .unwrap(),
    );

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let journal = Arc::clone(&journal);
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    journal.append(Event::LeaseExpired {
                        expired: w * 1000 + i,
                    });
                }
            })
        })
        .collect();
    // Race a few replays against the writers; each snapshot must be
    // internally monotone (lines are whole and generations ordered).
    for _ in 0..5 {
        let snapshot = replay(&path).unwrap();
        assert!(
            snapshot.windows(2).all(|w| w[1].seq > w[0].seq),
            "mid-write replay saw a non-monotone sequence"
        );
    }
    for h in writers {
        h.join().unwrap();
    }
    let records = replay(&path).unwrap();
    assert_eq!(records.len() as u64, WRITERS * PER_WRITER);
    assert!(records.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    assert_eq!(journal.io_errors(), 0);
    let _ = std::fs::remove_dir_all(dir);
}
