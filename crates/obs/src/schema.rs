//! The shared metric-name schema.
//!
//! One set of names, three reporters: the live daemons (`condor-pool`),
//! the negotiator bridge (`matchmaker::service::record_cycle`), and the
//! simulator's metrics export (`condor-sim`). Keeping the names here —
//! rather than as string literals at each call site — is what makes "sim
//! and live pool report through one schema" a compiler-checked property
//! instead of a convention.
//!
//! Names are `snake_case`; they surface in self-ads as PascalCase
//! attributes (see [`crate::selfad::attr_name`]): `cycles` → `Cycles`,
//! `claims_accepted` → `ClaimsAccepted`.

/// `MyType` value of the matchmaker daemon's self-ad.
pub const MATCHMAKER_STATS: &str = "MatchmakerStats";
/// `MyType` value of a resource agent's self-ad.
pub const RESOURCE_AGENT_STATS: &str = "ResourceAgentStats";
/// `MyType` value of a customer agent's self-ad.
pub const CUSTOMER_AGENT_STATS: &str = "CustomerAgentStats";
/// `MyType` value of a simulation run's stats ad.
pub const SIMULATOR_STATS: &str = "SimulatorStats";

// ---- negotiation (matchmaker + simulator) ----

/// Negotiation cycles run.
pub const CYCLES: &str = "cycles";
/// Matches produced over all cycles.
pub const MATCHES: &str = "matches_total";
/// Requests considered over all cycles.
pub const REQUESTS_CONSIDERED: &str = "requests_considered_total";
/// Requests that found no compatible offer, over all cycles.
pub const UNMATCHED_REQUESTS: &str = "unmatched_requests_total";
/// Matches that preempt a running claim, over all cycles.
pub const PREEMPTIONS: &str = "preemptions_total";
/// Request equivalence classes formed by autoclustering, over all cycles.
pub const CLUSTERS_FORMED: &str = "clusters_formed_total";
/// Requests served from a cached cluster match list, over all cycles.
pub const MATCHLIST_HITS: &str = "matchlist_hits_total";
/// Full offer-pool scans, over all cycles.
pub const FULL_SCANS: &str = "full_scans_total";
/// Ads dropped by lease expiry, over all cycles.
pub const ADS_EXPIRED: &str = "ads_expired_total";
/// Per-(cluster, shard) scans performed on the incremental path, over all
/// cycles (surfaces as `ShardsScanned`).
pub const SHARDS_SCANNED: &str = "shards_scanned";
/// Per-(cluster, shard) cached candidate lists reused because the shard
/// was clean, over all cycles (surfaces as `ShardsSkipped`).
pub const SHARDS_SKIPPED: &str = "shards_skipped";
/// Provider ads in shards whose caches had to be rebuilt, over all cycles
/// (surfaces as `DirtyResources`).
pub const DIRTY_RESOURCES: &str = "dirty_resources";
/// Cycles that reused cross-cycle cached state (surfaces as
/// `IncrementalCycles`).
pub const INCREMENTAL_CYCLES: &str = "incremental_cycles";
/// Last cycle: requests considered.
pub const LAST_CYCLE_REQUESTS: &str = "last_cycle_requests";
/// Last cycle: offers considered.
pub const LAST_CYCLE_OFFERS: &str = "last_cycle_offers";
/// Last cycle: matches produced.
pub const LAST_CYCLE_MATCHES: &str = "last_cycle_matches";
/// Last cycle: unmatched requests.
pub const LAST_CYCLE_UNMATCHED: &str = "last_cycle_unmatched";
/// Recent cycle wall-clock duration, milliseconds (windowed histogram).
pub const CYCLE_DURATION_MS: &str = "cycle_duration_ms";

// ---- match-failure attribution (matchmaker; populated only when the
// negotiator runs with attribution on) ----

/// Rejected (cluster, offer) pairings classified, over all cycles.
pub const REJECTED_PAIRINGS: &str = "rejected_pairings_total";
/// Rejections where a constraint evaluated to a definite `false`.
pub const REJECT_REQ_FALSE: &str = "reject_requirements_false_total";
/// Rejections where a constraint evaluated to `undefined`.
pub const REJECT_UNDEFINED: &str = "reject_undefined_attr_total";
/// Rejections where a constraint evaluated to `error`/non-boolean.
pub const REJECT_ERROR: &str = "reject_eval_error_total";
/// Rejections because the offer was claimed and not preemptible.
pub const REJECT_BUSY: &str = "reject_busy_total";
/// Rejections because the offer went to a competing request.
pub const REJECT_LOST_RANK: &str = "reject_lost_rank_total";
/// Last cycle: rejected pairings classified.
pub const LAST_CYCLE_REJECTED: &str = "last_cycle_rejected";

// ---- match-lifecycle phase timings (windowed histograms) ----
//
// Each daemon times the phases it can observe with its own monotonic
// clock; the trace assembler (`condor_obs::trace`) recomputes the same
// phases from cross-daemon journal timestamps. The two views should
// agree to within the histogram window and clock resolution.

/// Matchmaker: customer ad accepted → matched in a negotiation cycle.
pub const PHASE_QUEUE_WAIT_MS: &str = "phase_queue_wait_ms";
/// Matchmaker: cycle start → both match notifications dispatched.
pub const PHASE_NEGOTIATION_MS: &str = "phase_negotiation_ms";
/// Resource agent: notification seen → the customer's claim arrived.
pub const PHASE_NOTIFY_CLAIM_GAP_MS: &str = "phase_notify_claim_gap_ms";
/// Customer agent: claim dial → claim reply (round trip).
pub const PHASE_CLAIM_RTT_MS: &str = "phase_claim_rtt_ms";
/// Resource agent: claim re-verification (requirement re-evaluation).
pub const PHASE_REVERIFY_MS: &str = "phase_reverify_ms";

// ---- wire / daemon ----

/// Connections admitted into the handler pool.
pub const CONNECTIONS_ACCEPTED: &str = "connections_accepted";
/// Connections refused because the pool was full.
pub const CONNECTIONS_REFUSED: &str = "connections_refused";
/// Connections currently being served (gauge).
pub const ACTIVE_CONNECTIONS: &str = "active_connections";
/// Decoded frames dispatched to the service.
pub const FRAMES_HANDLED: &str = "frames_handled";
/// Frames refused (undecodable bytes or out-of-protocol messages).
pub const FRAMES_REJECTED: &str = "frames_rejected";
/// Structured error replies sent before closing a connection.
pub const ERROR_REPLIES: &str = "error_replies";
/// Match notifications delivered to contact addresses.
pub const NOTIFICATIONS_SENT: &str = "notifications_sent";
/// Notification dials that failed (soft state: costs one cycle).
pub const NOTIFICATIONS_FAILED: &str = "notifications_failed";
/// Frames decoded off the wire (all peers).
pub const FRAMES_IN: &str = "frames_in";
/// Frames written to the wire (all peers).
pub const FRAMES_OUT: &str = "frames_out";
/// Bytes read off the wire, framing included.
pub const BYTES_IN: &str = "bytes_in";
/// Bytes written to the wire, framing included.
pub const BYTES_OUT: &str = "bytes_out";
/// Journal events dropped because an append failed at the I/O layer.
pub const JOURNAL_DROPPED: &str = "journal_dropped";
/// Journal lines from a future (unknown) event kind, skipped-and-counted
/// during seq resume so newer writers stay replayable by older readers.
pub const JOURNAL_UNKNOWN_KIND: &str = "journal_unknown_kind";

// ---- high availability ----

/// Agent requests answered with a leader-redirect error while standing by.
pub const LEADER_REDIRECTS: &str = "leader_redirects";
/// Elections this daemon has won (inaugurations, including takeovers).
pub const ELECTIONS_WON: &str = "elections_won";
/// Ad-store checkpoints written into the journal.
pub const CHECKPOINTS_WRITTEN: &str = "checkpoints_written";
/// Times an agent switched matchmakers after a probe or redirect.
pub const MATCHMAKER_FAILOVERS: &str = "matchmaker_failovers";

// ---- flocking (cross-pool federation) ----

/// Flock queries this matchmaker sent to peer pools.
pub const FLOCK_QUERIES_SENT: &str = "flock_queries_sent";
/// Flock queries this matchmaker received from peer pools.
pub const FLOCK_QUERIES_RECEIVED: &str = "flock_queries_received";
/// Remote grants this matchmaker relayed to its own customers
/// (origin-side flocked matches).
pub const FLOCK_MATCHES: &str = "flock_matches";
/// Local providers this matchmaker granted to peer pools.
pub const FLOCK_GRANTS: &str = "flock_grants";
/// Inbound flock queries rejected (loop detected, hop budget exhausted,
/// or no compatible free provider).
pub const FLOCK_REJECTS: &str = "flock_rejects";
/// Peer matchmakers currently reachable (gauge).
pub const FLOCK_PEERS_UP: &str = "flock_peers_up";
/// Peer matchmakers currently failed or backing off (gauge).
pub const FLOCK_PEERS_DOWN: &str = "flock_peers_down";
/// Peer matchmakers marked pre-flock (rejected the tags) and skipped
/// permanently (gauge).
pub const FLOCK_PEERS_NON_FLOCKING: &str = "flock_peers_non_flocking";
/// Requests whose autocluster was served by a peer pool, over all cycles.
pub const JOBS_FLOCKED: &str = "jobs_flocked";

// ---- pool history (condor-view collector) ----

/// Self-ad batches the embedded view collector has ingested.
pub const VIEW_COLLECTIONS: &str = "view_collections";
/// Observations the view collector's history store has recorded.
pub const VIEW_SAMPLES: &str = "view_samples_total";
/// Time series the history store currently retains (gauge).
pub const VIEW_SERIES: &str = "view_series";

// ---- alerting (condor-alarm monitor) ----

/// Alert rules currently in the firing state (gauge; surfaces as
/// `ActiveAlerts`).
pub const ACTIVE_ALERTS: &str = "active_alerts";
/// Raise transitions the alarm monitor has journaled, over its lifetime
/// (surfaces as `AlertsRaisedTotal`).
pub const ALERTS_RAISED: &str = "alerts_raised_total";
/// Clear transitions the alarm monitor has journaled, over its lifetime
/// (surfaces as `AlertsClearedTotal`).
pub const ALERTS_CLEARED: &str = "alerts_cleared_total";
/// Alert rules the monitor is evaluating (gauge; default pack + extras).
pub const ALERT_RULES: &str = "alert_rules";
/// Raise/clear transitions swallowed by flap suppression, over the
/// monitor's lifetime.
pub const ALERT_FLAPS_SUPPRESSED: &str = "alert_flaps_suppressed_total";
/// Evaluation sweeps the alarm monitor has completed.
pub const ALERT_EVALUATIONS: &str = "alert_evaluations";

// ---- agents (live pool + simulator) ----

/// Advertisements delivered to the matchmaker.
pub const ADS_SENT: &str = "ads_sent";
/// Advertisement dials that exhausted their retry budget.
pub const AD_FAILURES: &str = "ad_failures";
/// Self-ads (daemon ads) published to the matchmaker.
pub const SELF_ADS_SENT: &str = "self_ads_sent";
/// Match notifications received.
pub const NOTIFICATIONS_SEEN: &str = "notifications_seen";
/// Claim attempts (customer side: dials; simulator: requests sent).
pub const CLAIM_ATTEMPTS: &str = "claim_attempts";
/// Claims accepted.
pub const CLAIMS_ACCEPTED: &str = "claims_accepted";
/// Claims rejected.
pub const CLAIMS_REJECTED: &str = "claims_rejected";
/// Claim dials that never reached the provider (death, timeout).
pub const CLAIM_DIAL_FAILURES: &str = "claim_dial_failures";
/// Release messages honored.
pub const RELEASES: &str = "releases";
/// Whether the resource is currently claimed (gauge, 0/1).
pub const CLAIMED: &str = "claimed";
/// Jobs submitted.
pub const JOBS_SUBMITTED: &str = "jobs_submitted";
/// Jobs completed.
pub const JOBS_COMPLETED: &str = "jobs_completed";
/// Jobs abandoned after exhausting the retry budget.
pub const JOBS_FAILED: &str = "jobs_failed";
/// Jobs currently unplaced (gauge).
pub const JOBS_IDLE: &str = "jobs_idle";
/// Jobs currently holding a claim (gauge).
pub const JOBS_CLAIMED: &str = "jobs_claimed";
