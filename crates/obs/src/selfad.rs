//! Daemon self-ads: a component's identity and metrics as one classad.
//!
//! A self-ad travels the normal advertising path and lands in the
//! matchmaker's ad store next to the machine and job ads, so operators
//! query it with the same constraint language (`other.MyType ==
//! "MatchmakerStats"`). Two attributes keep it out of matchmaking's way:
//! `Constraint = false` means it never accepts a counterpart, and
//! `DaemonAd = true` lets the negotiator skip it entirely so cycle
//! statistics describe only real requests and offers.

use crate::registry::MetricsSnapshot;
use classad::ClassAd;

/// Marker attribute (`true`) identifying a daemon self-ad.
pub const DAEMON_AD_ATTR: &str = "DaemonAd";
/// Attribute naming the ad's schema (`MatchmakerStats`, ...).
pub const MY_TYPE_ATTR: &str = "MyType";

/// Convert a `snake_case` metric name to the PascalCase classad attribute
/// it publishes as (`cycle_duration_ms` → `CycleDurationMs`). Characters
/// that cannot appear in an attribute name are treated as separators, so
/// any registry name yields a parseable attribute.
pub fn attr_name(metric: &str) -> String {
    let mut out = String::with_capacity(metric.len());
    let mut upper_next = true;
    for ch in metric.chars() {
        if ch.is_ascii_alphanumeric() {
            if upper_next {
                out.extend(ch.to_uppercase());
            } else {
                out.push(ch);
            }
            upper_next = ch.is_ascii_digit();
        } else {
            upper_next = true;
        }
    }
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'M');
    }
    out
}

/// Build a daemon self-ad: identity, the metrics snapshot, and the
/// non-matching markers. `name` becomes the `Name` attribute (the ad
/// store's key — give each daemon a distinct one), `my_type` the schema
/// tag, and `uptime_secs` the seconds since the daemon started.
pub fn self_ad(name: &str, my_type: &str, uptime_secs: u64, snapshot: &MetricsSnapshot) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.set_str("Name", name);
    ad.set_str(MY_TYPE_ATTR, my_type);
    ad.set_bool(DAEMON_AD_ATTR, true);
    ad.set_bool("Constraint", false);
    ad.set_int("Rank", 0);
    ad.set_int("UptimeSecs", uptime_secs as i64);
    snapshot.set_attrs(&mut ad);
    ad
}

/// Is this ad a daemon self-ad? (The negotiator uses this to keep
/// self-ads out of requests and offers.)
pub fn is_daemon_ad(ad: &ClassAd) -> bool {
    matches!(
        ad.get(DAEMON_AD_ATTR).map(|e| e.as_ref()),
        Some(classad::Expr::Lit(classad::Literal::Bool(true)))
    )
}

/// The constraint string selecting self-ads of the given type, e.g.
/// `other.MyType == "MatchmakerStats"` — ready for
/// `Query::from_constraint` or a `--constraint` flag.
pub fn self_ad_constraint(my_type: &str) -> String {
    format!("other.{MY_TYPE_ATTR} == \"{my_type}\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::schema;

    #[test]
    fn attr_name_pascalizes() {
        assert_eq!(attr_name("cycles"), "Cycles");
        assert_eq!(attr_name("claims_accepted"), "ClaimsAccepted");
        assert_eq!(attr_name("cycle_duration_ms"), "CycleDurationMs");
        assert_eq!(attr_name("p99_latency"), "P99Latency");
        assert_eq!(attr_name("a-b.c"), "ABC");
        assert_eq!(attr_name("9lives"), "M9Lives");
        assert_eq!(attr_name(""), "M");
    }

    #[test]
    fn self_ad_is_marked_and_parseable() {
        let reg = Registry::new();
        reg.counter(schema::CYCLES).add(4);
        let ad = self_ad(
            "mm@host:9618",
            schema::MATCHMAKER_STATS,
            17,
            &reg.snapshot(),
        );
        assert!(is_daemon_ad(&ad));
        assert_eq!(ad.get_string("Name"), Some("mm@host:9618"));
        assert_eq!(ad.get_int("UptimeSecs"), Some(17));
        assert_eq!(ad.get_int("Cycles"), Some(4));
        // Round-trips through the concrete syntax.
        let reparsed = classad::parse_classad(&ad.to_string()).expect("self-ad parses");
        assert_eq!(
            reparsed.get_string(MY_TYPE_ATTR),
            Some(schema::MATCHMAKER_STATS)
        );
    }

    #[test]
    fn constraint_selects_matching_type_only() {
        let policy = classad::EvalPolicy::default();
        let conv = classad::MatchConventions::default();
        let reg = Registry::new();
        let ad = self_ad("ra@h:1", schema::RESOURCE_AGENT_STATS, 0, &reg.snapshot());
        let want = classad::parse_classad(&format!(
            "[ Constraint = {} ]",
            self_ad_constraint(schema::RESOURCE_AGENT_STATS)
        ))
        .unwrap();
        let reject = classad::parse_classad(&format!(
            "[ Constraint = {} ]",
            self_ad_constraint(schema::MATCHMAKER_STATS)
        ))
        .unwrap();
        assert!(classad::constraint_holds(&want, &ad, &policy, &conv));
        assert!(!classad::constraint_holds(&reject, &ad, &policy, &conv));
        // And the self-ad itself never accepts anything.
        assert!(!classad::constraint_holds(&ad, &want, &policy, &conv));
    }
}
