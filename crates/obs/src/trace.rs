//! Match-lifecycle distributed tracing: context types, span identifiers,
//! and a cross-daemon trace assembler.
//!
//! The matchmaking protocol is a multi-party causal chain — advertise,
//! negotiate, notify, claim, re-verify (paper §3–§4) — but each daemon's
//! journal records its own events in isolation. This module follows the
//! Dapper lineage: a [`TraceContext`] minted when a request enters the
//! system travels with every protocol message, each daemon opens a
//! [`SpanContext`] under it for the work it performs, and the journal
//! stamps the span onto the event record. [`TraceAssembler`] then replays
//! one or more journals and stitches the records back into per-trace span
//! trees, tolerant of clock skew, torn lines, and missing daemons.
//!
//! Identifier discipline: ids are non-zero `u64`s; `0` is reserved to mean
//! "no parent" (a trace root). Ids render as 16-digit lowercase hex
//! (see [`format_id`]/[`parse_id`]) both in journals and in CLI output.

use crate::journal::{Event, Record};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The trace coordinates carried on the wire with a protocol message:
/// which trace the message belongs to and which span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The end-to-end trace this message belongs to (non-zero).
    pub trace_id: u64,
    /// The sender's span that caused this message; `0` for a trace root
    /// (the customer minting a brand-new trace).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Mint a brand-new trace: fresh trace id, no parent span.
    pub fn mint() -> TraceContext {
        TraceContext {
            trace_id: fresh_id(),
            parent_span_id: 0,
        }
    }

    /// Open a span for work performed under this context. The span's
    /// parent is whatever caused this context to arrive.
    pub fn begin_span(&self) -> SpanContext {
        SpanContext {
            trace_id: self.trace_id,
            span_id: fresh_id(),
            parent_span_id: self.parent_span_id,
        }
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}",
            format_id(self.trace_id),
            format_id(self.parent_span_id)
        )
    }
}

/// One unit of attributed work inside a trace, as stamped onto a journal
/// record: the trace it belongs to, its own id, and its causal parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (non-zero).
    pub span_id: u64,
    /// The causing span; `0` when this span is a trace root.
    pub parent_span_id: u64,
}

impl SpanContext {
    /// The context to propagate downstream: messages caused by this span
    /// carry `{trace_id, parent_span_id: span_id}`.
    pub fn child_context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span_id: self.span_id,
        }
    }
}

/// Process-global id source: a splitmix64 stream seeded from the clock
/// and the process id, stepped by an atomic counter. Non-zero by
/// construction (`0` is the "no parent" sentinel), unique within a
/// process, and collision-unlikely across a pool's daemons.
pub fn fresh_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);
    let mut seed = SEED.load(Ordering::Relaxed);
    if seed == 0 {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        seed = clock ^ ((std::process::id() as u64) << 32) | 1;
        let _ = SEED.compare_exchange(0, seed, Ordering::Relaxed, Ordering::Relaxed);
        seed = SEED.load(Ordering::Relaxed);
    }
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        if id != 0 {
            return id;
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Render an id as the canonical 16-digit lowercase hex form.
pub fn format_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse an id in the form [`format_id`] produces (leading zeros optional).
pub fn parse_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

// ---- the assembler ----

/// Phase names the assembler derives from parent→child span edges. These
/// mirror the daemons' phase histograms (see [`crate::schema`]): the
/// assembler computes them from journal timestamps, the daemons from
/// monotonic clocks, and the two views should agree to within clock
/// resolution.
pub mod phase {
    /// Customer ad accepted → matched in a negotiation cycle.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Matched → both parties notified.
    pub const NEGOTIATION: &str = "negotiation";
    /// Notification sent → the provider adjudicated the direct claim.
    pub const NOTIFY_CLAIM_GAP: &str = "notify_claim_gap";
    /// Provider adjudicated → the customer recorded the outcome.
    pub const CLAIM_TURNAROUND: &str = "claim_turnaround";
}

/// Classify a parent→child edge by the two events' kinds.
fn phase_of(parent: &str, child: &str) -> Option<&'static str> {
    match (parent, child) {
        ("AdReceived", "MatchMade") => Some(phase::QUEUE_WAIT),
        ("MatchMade", "MatchNotified") => Some(phase::NEGOTIATION),
        ("MatchNotified", "ClaimEstablished") | ("MatchNotified", "ClaimRejected") => {
            Some(phase::NOTIFY_CLAIM_GAP)
        }
        ("ClaimEstablished", "ClaimEstablished") | ("ClaimEstablished", "ClaimRejected") => {
            Some(phase::CLAIM_TURNAROUND)
        }
        _ => None,
    }
}

/// One node of an assembled trace tree.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Label of the journal the record came from (e.g. `"matchmaker"`).
    pub source: String,
    /// The record's sequence number in its journal.
    pub seq: u64,
    /// Wall-clock milliseconds when the event was journaled.
    pub unix_ms: u64,
    /// This span's id.
    pub span_id: u64,
    /// The causal parent span (`0` = trace root).
    pub parent_span_id: u64,
    /// The journaled event.
    pub event: Event,
    /// Child spans, as indices into [`TraceTree::spans`].
    pub children: Vec<usize>,
}

/// A fully stitched trace: every journaled span of one trace id, linked
/// parent→child. Spans whose parent never showed up (a daemon whose
/// journal was not supplied, or lost to a torn line) are kept as extra
/// roots rather than dropped — missing evidence must not erase the
/// evidence that survived.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id all spans share.
    pub trace_id: u64,
    /// Every span, in `(unix_ms, seq)` order.
    pub spans: Vec<TraceSpan>,
    /// Indices of root spans (no parent, or parent missing).
    pub roots: Vec<usize>,
    /// `true` if any edge ran backwards in time beyond the assembler's
    /// skew tolerance (cross-daemon clock skew).
    pub skewed: bool,
    /// How many spans referenced a parent span that never showed up — a
    /// daemon's journal was missing or truncated mid-trace. Those spans
    /// are promoted to roots (see [`TraceTree::roots`]) so the partial
    /// tree still renders; this count says how much causality was lost.
    pub missing_spans: usize,
}

impl TraceTree {
    /// Wall-clock extent of the trace in milliseconds (latest span minus
    /// earliest span).
    pub fn total_ms(&self) -> u64 {
        let min = self.spans.iter().map(|s| s.unix_ms).min().unwrap_or(0);
        let max = self.spans.iter().map(|s| s.unix_ms).max().unwrap_or(0);
        max.saturating_sub(min)
    }

    /// Index of the first span whose event kind is `kind`, searching in
    /// time order.
    pub fn find(&self, kind: &str) -> Option<usize> {
        self.spans.iter().position(|s| s.event.kind() == kind)
    }

    /// The causal chain from a trace root down to `idx`, inclusive,
    /// root-first. Follows `parent_span_id` links, not timestamps.
    pub fn ancestry(&self, idx: usize) -> Vec<&TraceSpan> {
        let by_id: HashMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.span_id, i))
            .collect();
        let mut chain = vec![idx];
        let mut cur = idx;
        while let Some(&up) = by_id.get(&self.spans[cur].parent_span_id) {
            if chain.contains(&up) {
                break; // defensive: never loop on corrupt links
            }
            chain.push(up);
            cur = up;
        }
        chain.reverse();
        chain.into_iter().map(|i| &self.spans[i]).collect()
    }

    /// Per-edge phase durations `(phase, parent idx, child idx, ms)` for
    /// the recognized protocol phases. Durations are clamped at zero;
    /// edges that ran backwards beyond the skew tolerance were already
    /// flagged via [`TraceTree::skewed`] at assembly time.
    pub fn phases(&self) -> Vec<(&'static str, usize, usize, u64)> {
        let mut out = Vec::new();
        for (pi, parent) in self.spans.iter().enumerate() {
            for &ci in &parent.children {
                let child = &self.spans[ci];
                if let Some(name) = phase_of(parent.event.kind(), child.event.kind()) {
                    let ms = child.unix_ms.saturating_sub(parent.unix_ms);
                    out.push((name, pi, ci, ms));
                }
            }
        }
        out
    }

    /// A human-readable timeline: one line per span, indented by causal
    /// depth, with millisecond offsets from the trace's first event.
    pub fn render(&self) -> String {
        let start = self.spans.iter().map(|s| s.unix_ms).min().unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!(
            "trace {}  ({} spans, {} ms)\n",
            format_id(self.trace_id),
            self.spans.len(),
            self.total_ms()
        ));
        if self.skewed {
            out.push_str("  (warning: cross-journal clock skew detected)\n");
        }
        if self.missing_spans > 0 {
            out.push_str(&format!(
                "  (warning: {} span(s) reference parents missing from the supplied journals)\n",
                self.missing_spans
            ));
        }
        let mut stack: Vec<(usize, usize)> = self.roots.iter().rev().map(|&i| (i, 0)).collect();
        let mut seen = vec![false; self.spans.len()];
        while let Some((idx, depth)) = stack.pop() {
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            let s = &self.spans[idx];
            out.push_str(&format!(
                "  +{:>6}ms {:indent$}{} [{}] span={} parent={}\n",
                s.unix_ms.saturating_sub(start),
                "",
                s.event.kind(),
                s.source,
                format_id(s.span_id),
                format_id(s.parent_span_id),
                indent = depth * 2
            ));
            for &c in s.children.iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }
}

/// Aggregate statistics for one phase across every assembled trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Edges observed.
    pub count: u64,
    /// Smallest duration, ms.
    pub min_ms: u64,
    /// Largest duration, ms.
    pub max_ms: u64,
    /// Mean duration, ms.
    pub mean_ms: f64,
    /// Median duration, ms.
    pub p50_ms: u64,
    /// 99th-percentile duration, ms.
    pub p99_ms: u64,
}

/// Stitches journal records from one or more daemons into per-trace span
/// trees. Feed it replayed journals (see [`crate::replay`]) with a label
/// per source, then [`assemble`](TraceAssembler::assemble) individual
/// traces or take the aggregate [`summary`](TraceAssembler::summary).
#[derive(Debug, Default)]
pub struct TraceAssembler {
    records: Vec<(String, Record)>,
    skew_tolerance: Duration,
}

impl TraceAssembler {
    /// An assembler with the default clock-skew tolerance (500 ms):
    /// cross-journal edges may run up to that far backwards in time
    /// before the trace is flagged as skewed.
    pub fn new() -> TraceAssembler {
        TraceAssembler {
            records: Vec::new(),
            skew_tolerance: Duration::from_millis(500),
        }
    }

    /// Override the clock-skew tolerance.
    pub fn with_skew_tolerance(mut self, tolerance: Duration) -> TraceAssembler {
        self.skew_tolerance = tolerance;
        self
    }

    /// Add replayed records under a source label. Records without a span
    /// stamp (untraced events, pre-tracing journals) are ignored.
    pub fn add_journal(&mut self, label: &str, records: Vec<Record>) -> usize {
        let mut added = 0;
        for r in records {
            if r.span.is_some() {
                self.records.push((label.to_string(), r));
                added += 1;
            }
        }
        added
    }

    /// Replay the journal at `path` (rotated generations included) and add
    /// it under `label`. Returns how many traced records were added.
    pub fn add_journal_file(
        &mut self,
        label: &str,
        path: impl AsRef<Path>,
    ) -> std::io::Result<usize> {
        Ok(self.add_journal(label, crate::replay(path)?))
    }

    /// Every trace id present, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .records
            .iter()
            .filter_map(|(_, r)| r.span.map(|s| s.trace_id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Stitch one trace. Returns `None` when no record carries the id.
    pub fn assemble(&self, trace_id: u64) -> Option<TraceTree> {
        let mut spans: Vec<TraceSpan> = self
            .records
            .iter()
            .filter(|(_, r)| r.span.map(|s| s.trace_id) == Some(trace_id))
            .map(|(label, r)| {
                let span = r.span.expect("filtered on span presence");
                TraceSpan {
                    source: label.clone(),
                    seq: r.seq,
                    unix_ms: r.unix_ms,
                    span_id: span.span_id,
                    parent_span_id: span.parent_span_id,
                    event: r.event.clone(),
                    children: Vec::new(),
                }
            })
            .collect();
        if spans.is_empty() {
            return None;
        }
        spans.sort_by_key(|s| (s.unix_ms, s.seq));
        // First occurrence wins on duplicate span ids (replayed rotations).
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        for (i, s) in spans.iter().enumerate() {
            by_id.entry(s.span_id).or_insert(i);
        }
        let mut roots = Vec::new();
        let mut skewed = false;
        let mut missing_spans = 0;
        let tolerance_ms = self.skew_tolerance.as_millis() as u64;
        for i in 0..spans.len() {
            let parent = spans[i].parent_span_id;
            match by_id.get(&parent) {
                Some(&p) if p != i => {
                    if spans[p].unix_ms > spans[i].unix_ms + tolerance_ms {
                        skewed = true;
                    }
                    spans[p].children.push(i);
                }
                // Parent 0 (a root) or a span journaled by a daemon whose
                // journal we were not given: keep it as its own root. The
                // latter is counted so callers can tell a complete trace
                // from one assembled around a hole.
                _ => {
                    if parent != 0 {
                        missing_spans += 1;
                    }
                    roots.push(i);
                }
            }
        }
        Some(TraceTree {
            trace_id,
            spans,
            roots,
            skewed,
            missing_spans,
        })
    }

    /// Assemble every trace and aggregate per-phase durations.
    pub fn summary(&self) -> BTreeMap<&'static str, PhaseStats> {
        let mut buckets: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
        for id in self.trace_ids() {
            if let Some(tree) = self.assemble(id) {
                for (name, _, _, ms) in tree.phases() {
                    buckets.entry(name).or_default().push(ms);
                }
            }
        }
        buckets
            .into_iter()
            .map(|(name, mut v)| {
                v.sort_unstable();
                let count = v.len() as u64;
                let pct = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
                let stats = PhaseStats {
                    count,
                    min_ms: v[0],
                    max_ms: *v.last().expect("non-empty bucket"),
                    mean_ms: v.iter().sum::<u64>() as f64 / count as f64,
                    p50_ms: pct(0.50),
                    p99_ms: pct(0.99),
                };
                (name, stats)
            })
            .collect()
    }

    /// The `n` traces with the largest wall-clock extent, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<TraceTree> {
        let mut trees: Vec<TraceTree> = self
            .trace_ids()
            .into_iter()
            .filter_map(|id| self.assemble(id))
            .collect();
        trees.sort_by_key(|t| std::cmp::Reverse(t.total_ms()));
        trees.truncate(n);
        trees
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, unix_ms: u64, event: Event, span: SpanContext) -> Record {
        Record {
            seq,
            unix: unix_ms / 1000,
            unix_ms,
            event,
            span: Some(span),
        }
    }

    fn span(trace: u64, id: u64, parent: u64) -> SpanContext {
        SpanContext {
            trace_id: trace,
            span_id: id,
            parent_span_id: parent,
        }
    }

    fn lifecycle_records() -> (Vec<Record>, Vec<Record>, Vec<Record>) {
        let t = 0xABCD;
        let mm = vec![
            rec(
                1,
                1000,
                Event::AdReceived {
                    kind: "Customer".into(),
                    name: "job-1".into(),
                    contact: "ca:1".into(),
                },
                span(t, 10, 0),
            ),
            rec(
                2,
                1400,
                Event::MatchMade {
                    request: "job-1".into(),
                    offer: "m0".into(),
                },
                span(t, 20, 10),
            ),
            rec(
                3,
                1410,
                Event::MatchNotified {
                    request: "job-1".into(),
                    offer: "m0".into(),
                    delivered: true,
                },
                span(t, 30, 20),
            ),
        ];
        let ra = vec![rec(
            1,
            1450,
            Event::ClaimEstablished {
                provider: "m0".into(),
                customer: "u".into(),
            },
            span(t, 40, 30),
        )];
        let ca = vec![rec(
            1,
            1460,
            Event::ClaimEstablished {
                provider: "m0".into(),
                customer: "u".into(),
            },
            span(t, 50, 40),
        )];
        (mm, ra, ca)
    }

    #[test]
    fn ids_are_nonzero_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn id_hex_roundtrips() {
        for id in [1u64, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(parse_id(&format_id(id)), Some(id));
        }
        assert_eq!(parse_id(""), None);
        assert_eq!(parse_id("xyz"), None);
        assert_eq!(parse_id("00000000000000000"), None); // 17 digits
    }

    #[test]
    fn context_and_span_chain_causally() {
        let root = TraceContext::mint();
        assert_eq!(root.parent_span_id, 0);
        let a = root.begin_span();
        assert_eq!(a.trace_id, root.trace_id);
        assert_eq!(a.parent_span_id, 0);
        let downstream = a.child_context();
        assert_eq!(downstream.parent_span_id, a.span_id);
        let b = downstream.begin_span();
        assert_eq!(b.parent_span_id, a.span_id);
        assert_ne!(b.span_id, a.span_id);
    }

    #[test]
    fn assembles_the_full_lifecycle_in_causal_order() {
        let (mm, ra, ca) = lifecycle_records();
        let mut asm = TraceAssembler::new();
        assert_eq!(asm.add_journal("mm", mm), 3);
        assert_eq!(asm.add_journal("ra", ra), 1);
        assert_eq!(asm.add_journal("ca", ca), 1);
        assert_eq!(asm.trace_ids(), vec![0xABCD]);
        let tree = asm.assemble(0xABCD).unwrap();
        assert_eq!(tree.spans.len(), 5);
        assert_eq!(tree.roots.len(), 1);
        assert!(!tree.skewed);
        assert_eq!(tree.missing_spans, 0);
        let leaf = tree
            .spans
            .iter()
            .position(|s| s.source == "ca")
            .expect("the customer's claim record");
        let chain: Vec<&str> = tree.ancestry(leaf).iter().map(|s| s.event.kind()).collect();
        assert_eq!(
            chain,
            vec![
                "AdReceived",
                "MatchMade",
                "MatchNotified",
                "ClaimEstablished",
                "ClaimEstablished"
            ]
        );
        let phases = tree.phases();
        let get = |name: &str| {
            phases
                .iter()
                .find(|(n, ..)| *n == name)
                .map(|&(_, _, _, ms)| ms)
                .unwrap()
        };
        assert_eq!(get(phase::QUEUE_WAIT), 400);
        assert_eq!(get(phase::NEGOTIATION), 10);
        assert_eq!(get(phase::NOTIFY_CLAIM_GAP), 40);
        assert_eq!(get(phase::CLAIM_TURNAROUND), 10);
        assert!(tree.render().contains("MatchNotified"));
    }

    #[test]
    fn missing_daemon_leaves_orphans_as_roots() {
        let (mm, _ra, ca) = lifecycle_records();
        let mut asm = TraceAssembler::new();
        asm.add_journal("mm", mm);
        asm.add_journal("ca", ca); // the RA's journal is gone
        let tree = asm.assemble(0xABCD).unwrap();
        assert_eq!(tree.spans.len(), 4);
        // The CA span's parent (the RA claim span) is missing, so it
        // surfaces as a second root instead of vanishing — and the hole
        // is counted, so callers can tell partial evidence from a
        // genuinely complete trace.
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.missing_spans, 1);
        assert!(tree.render().contains("missing from the supplied journals"));
    }

    #[test]
    fn deleted_ra_journal_degrades_to_partial_tree() {
        use crate::journal::{Journal, JournalConfig};
        let dir =
            std::env::temp_dir().join(format!("condor-obs-trace-partial-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (mm, ra, ca) = lifecycle_records();
        for (label, recs) in [("mm", &mm), ("ra", &ra), ("ca", &ca)] {
            let j = Journal::open(JournalConfig::new(dir.join(format!("{label}.jsonl")))).unwrap();
            for r in recs {
                j.append_traced(r.event.clone(), r.span);
            }
        }
        // The RA host died and took its journal with it.
        std::fs::remove_file(dir.join("ra.jsonl")).unwrap();
        let mut asm = TraceAssembler::new();
        let mut lost_journals = 0;
        for label in ["mm", "ra", "ca"] {
            // replay() treats a vanished journal as empty rather than
            // failing the whole assembly; zero traced records is the
            // caller-visible signal that a daemon's evidence is gone.
            let added = asm
                .add_journal_file(label, dir.join(format!("{label}.jsonl")))
                .unwrap_or(0);
            if added == 0 {
                lost_journals += 1;
            }
        }
        assert_eq!(lost_journals, 1, "only the RA journal is gone");
        let tree = asm.assemble(0xABCD).expect("surviving spans still stitch");
        assert_eq!(tree.spans.len(), 4);
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.missing_spans, 1);
        let rendered = tree.render();
        assert!(rendered.contains("1 span(s) reference parents missing"));
        assert!(rendered.contains("MatchNotified"), "partial tree renders");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn clock_skew_beyond_tolerance_is_flagged() {
        let t = 7;
        let parent = rec(
            1,
            5000,
            Event::MatchNotified {
                request: "j".into(),
                offer: "m".into(),
                delivered: true,
            },
            span(t, 1, 0),
        );
        // The RA's clock is 2 s behind the matchmaker's.
        let child = rec(
            1,
            3000,
            Event::ClaimEstablished {
                provider: "m".into(),
                customer: "u".into(),
            },
            span(t, 2, 1),
        );
        let mut asm = TraceAssembler::new();
        asm.add_journal("mm", vec![parent.clone()]);
        asm.add_journal("ra", vec![child.clone()]);
        assert!(asm.assemble(t).unwrap().skewed);
        let mut lax = TraceAssembler::new().with_skew_tolerance(Duration::from_secs(5));
        lax.add_journal("mm", vec![parent]);
        lax.add_journal("ra", vec![child]);
        let tree = lax.assemble(t).unwrap();
        assert!(!tree.skewed);
        // The backwards edge clamps to zero rather than going negative.
        assert_eq!(tree.phases()[0].3, 0);
    }

    #[test]
    fn summary_and_slowest_aggregate_across_traces() {
        let (mm, ra, ca) = lifecycle_records();
        let mut asm = TraceAssembler::new();
        asm.add_journal("mm", mm);
        asm.add_journal("ra", ra);
        asm.add_journal("ca", ca);
        // A second, slower trace with just the matchmaker phases.
        let t2 = 0xEEEE;
        asm.add_journal(
            "mm",
            vec![
                rec(
                    4,
                    2000,
                    Event::AdReceived {
                        kind: "Customer".into(),
                        name: "job-2".into(),
                        contact: "ca:1".into(),
                    },
                    span(t2, 100, 0),
                ),
                rec(
                    5,
                    4000,
                    Event::MatchMade {
                        request: "job-2".into(),
                        offer: "m1".into(),
                    },
                    span(t2, 101, 100),
                ),
            ],
        );
        let summary = asm.summary();
        let qw = summary[phase::QUEUE_WAIT];
        assert_eq!(qw.count, 2);
        assert_eq!(qw.min_ms, 400);
        assert_eq!(qw.max_ms, 2000);
        assert_eq!(qw.p50_ms, 400);
        assert_eq!(qw.p99_ms, 400); // index floor on two samples
        assert!((qw.mean_ms - 1200.0).abs() < 1e-9);
        let slowest = asm.slowest(1);
        assert_eq!(slowest.len(), 1);
        assert_eq!(slowest[0].trace_id, t2);
    }

    #[test]
    fn untraced_records_are_ignored() {
        let mut asm = TraceAssembler::new();
        let added = asm.add_journal(
            "mm",
            vec![Record {
                seq: 1,
                unix: 1,
                unix_ms: 1000,
                event: Event::LeaseExpired { expired: 1 },
                span: None,
            }],
        );
        assert_eq!(added, 0);
        assert!(asm.trace_ids().is_empty());
        assert!(asm.assemble(1).is_none());
    }
}
