//! # condor-obs — self-describing observability
//!
//! The paper's central idea is that *the query language is the data model*
//! (§3.1): classads fold queries into semi-structured data. This crate
//! applies the same idea to the pool's own telemetry, following Robinson &
//! DeWitt's "Turning Cluster Management into Data Management": instead of
//! bolting an external metrics stack onto the daemons, every daemon
//! describes itself with a classad that travels through the *existing*
//! query path (`Message::Query` against the matchmaker's ad store), so
//! `condor_status`-style tools browse pool health with the same constraint
//! language they use to browse machines.
//!
//! Three layers:
//!
//! * [`Registry`] — a lock-cheap metrics registry. Counters and gauges are
//!   plain atomics behind `Arc` handles (the registry's map lock is paid
//!   only at registration and snapshot time); histograms are time-windowed
//!   sample buffers behind a `parking_lot::Mutex`. A
//!   [`MetricsSnapshot`] renders to a [`classad::ClassAd`] whose attribute
//!   names are the PascalCase form of the metric names.
//! * [`Journal`] — an append-only JSONL log of typed lifecycle [`Event`]s
//!   with monotone sequence numbers, size-based rotation, and a replay
//!   reader ([`replay`]) that reconstructs the typed events — rotated
//!   files first, oldest to newest.
//! * [`self_ad`] — the daemon-ad builder: identity (`MyType`, `Name`,
//!   uptime) plus a metrics snapshot plus any extra attributes, marked
//!   with `DaemonAd = true` so the negotiator leaves it alone and given
//!   `Constraint = false`/`Rank = 0` so it satisfies the advertising
//!   protocol without ever matching a job.
//!
//! The [`schema`] module pins the metric names shared by the live pool
//! (`condor-pool`), the negotiator bridge (`matchmaker`), and the
//! simulator (`condor-sim`), so all three report through one schema.
//!
//! The [`trace`] module adds the fourth layer: match-lifecycle
//! distributed tracing. A [`TraceContext`] travels with protocol
//! messages, daemons journal events under [`SpanContext`]s, and
//! [`TraceAssembler`] stitches the per-daemon journals back into causal
//! span trees.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod journal;
pub mod registry;
pub mod schema;
pub mod selfad;
pub mod trace;

pub use journal::{
    recover, replay, replay_with_stats, Appended, Event, Journal, JournalConfig, Record, Recovery,
    ReplayStats,
};
pub use registry::{
    Counter, Gauge, HistogramSnapshot, MetricsSnapshot, Registry, WindowedHistogram,
};
pub use selfad::{attr_name, is_daemon_ad, self_ad, self_ad_constraint, DAEMON_AD_ATTR};
pub use trace::{SpanContext, TraceAssembler, TraceContext, TraceSpan, TraceTree};
