//! The durable event journal: append-only JSONL with rotation and replay.
//!
//! Each line is one [`Record`] — a monotone sequence number, a unix
//! timestamp, and a typed lifecycle [`Event`] — encoded as a flat JSON
//! object. The format is deliberately minimal (string and unsigned-int
//! fields only, no nesting) so both the writer and the replay parser fit
//! in this file without a serialization framework; the workspace `serde`
//! shim is a no-op, so depending on it would buy nothing.
//!
//! Rotation is size-based: when the current file would exceed
//! `rotate_bytes`, `journal.jsonl` becomes `journal.jsonl.1`, `.1`
//! becomes `.2`, and so on up to `keep_rotated`; the oldest falls off.
//! After every rotation a retention sweep deletes any generation past
//! `max_rotated` (default: `keep_rotated`), so segments left behind by
//! an earlier run with a looser config are reclaimed instead of growing
//! without bound. [`replay`] walks the rotated files oldest-first, then
//! the current file, yielding records in sequence order.
//!
//! ## Schema versions
//!
//! * **v1** (PR 3): `seq`, `unix` (seconds), `event` + event fields.
//! * **v2** (this layer): adds `v:2`, `unix_ms` (millisecond stamp for
//!   phase timing), and — when the event happened under a trace — the
//!   span coordinates `trace`, `span`, `parent` as 16-hex-digit ids.
//!
//! The decoder is field-presence based, so v1 lines still replay (their
//! `unix_ms` is derived from `unix`, their span is `None`), and v1
//! readers that ignore unknown fields can still read v2 lines.

use crate::trace::{format_id, parse_id, SpanContext};
use parking_lot::Mutex;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// A typed pool lifecycle event.
///
/// Every variant carries only what is needed to reconstruct the pool's
/// story offline; high-volume detail stays in the metrics registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An advertisement was accepted into the ad store.
    AdReceived {
        /// `"Provider"` or `"Customer"`.
        kind: String,
        /// The ad's `Name` attribute.
        name: String,
        /// The advertiser's contact address.
        contact: String,
    },
    /// A negotiation cycle finished.
    CycleCompleted {
        /// Requests considered.
        requests: u64,
        /// Offers considered.
        offers: u64,
        /// Matches produced.
        matches: u64,
        /// Requests left unmatched.
        unmatched: u64,
        /// Wall-clock cycle duration, milliseconds.
        duration_ms: u64,
        /// Whether the cycle reused cross-cycle cached shard state
        /// (incremental path) rather than rebuilding everything.
        incremental: bool,
    },
    /// The negotiator paired a request with an offer (before delivery of
    /// the notifications; see [`Event::MatchNotified`] for that).
    MatchMade {
        /// The matched request's `Name`.
        request: String,
        /// The matched offer's `Name`.
        offer: String,
    },
    /// The matchmaker sent (or failed to send) a match notification.
    MatchNotified {
        /// The matched request's `Name`.
        request: String,
        /// The matched offer's `Name`.
        offer: String,
        /// Whether the notification dial succeeded.
        delivered: bool,
    },
    /// A provider accepted a claim.
    ClaimEstablished {
        /// The provider's `Name`.
        provider: String,
        /// The claiming customer's `Name`.
        customer: String,
    },
    /// A provider rejected a claim.
    ClaimRejected {
        /// The provider's `Name`.
        provider: String,
        /// The rejected customer's `Name`.
        customer: String,
        /// The provider's stated reason.
        reason: String,
    },
    /// The ad store dropped ads whose leases expired.
    LeaseExpired {
        /// How many ads expired together.
        expired: u64,
    },
    /// A daemon refused an incoming frame.
    FrameRejected {
        /// The peer's socket address (or `"?"` if unknown).
        peer: String,
        /// Why the frame was refused.
        reason: String,
    },
    /// An agent (re)started and reset its soft state.
    AgentRestarted {
        /// `"ResourceAgent"`, `"CustomerAgent"`, or `"MatchmakerDaemon"`.
        agent: String,
        /// The agent's `Name`.
        name: String,
    },
    /// A full-state checkpoint frozen into the journal stream (HA
    /// recovery). The `state` payload is an opaque snapshot — encoded and
    /// decoded by `condor-ha`, not interpreted here — and the counts let
    /// an operator (or `status_query --journal`) gauge the checkpoint
    /// without decoding it. Recovery replays from the **last** checkpoint
    /// plus the records after it (see [`recover`]).
    Checkpoint {
        /// The leadership epoch this checkpoint was taken under (0 for a
        /// non-HA daemon).
        epoch: u64,
        /// How many ads the snapshot holds.
        ads: u64,
        /// How many outstanding match records the snapshot holds.
        matches: u64,
        /// The encoded snapshot payload (opaque to the journal).
        state: String,
    },
    /// A request left unmatched by the local cycle was served by a peer
    /// pool: the origin matchmaker relayed the peer's delegation grant to
    /// the job's customer as an ordinary notification, and the claim
    /// proceeds directly to the remote provider.
    JobFlocked {
        /// The flocked request's `Name` (the cluster representative).
        request: String,
        /// The granted remote provider's `Name`.
        offer: String,
        /// The granting peer pool's matchmaker contact.
        peer: String,
    },
    /// This matchmaker granted one of its free providers to a peer pool's
    /// flocked representative (the remote side of [`Event::JobFlocked`]).
    FlockMatchMade {
        /// The forwarded representative request's `Name`.
        request: String,
        /// The granted local provider's `Name`.
        offer: String,
        /// The originating pool's matchmaker contact.
        origin: String,
    },
    /// The alarm monitor's hysteresis admitted a rule into the firing
    /// state: its constraint held against live telemetry for the required
    /// consecutive intervals. `detail` carries the rule-attribution text —
    /// which conjunct of the rule's constraint tripped, in the same
    /// `label()` format the match analyzer uses — so replay reconstructs
    /// not just *that* an alert fired but *why*.
    AlertRaised {
        /// The firing rule's `Name`.
        rule: String,
        /// The rule's `Severity` (`"critical"`, `"warning"`, ...).
        severity: String,
        /// Attribution: the conjunct that tripped, clipped rule text.
        detail: String,
    },
    /// A firing rule's constraint stopped holding for the required
    /// consecutive intervals and the alarm monitor returned it to ok.
    AlertCleared {
        /// The cleared rule's `Name`.
        rule: String,
        /// The rule's `Severity`.
        severity: String,
    },
    /// A negotiation cycle left requests unmatched and the attribution
    /// pass classified why (one event per cycle, covering every cluster
    /// with unmatched requests).
    CycleRejections {
        /// The cycle's ordinal (matches the `Cycle` attribute of an
        /// `Analyze` reply taken after the same cycle).
        cycle: u64,
        /// Clusters left with unmatched requests.
        clusters: u64,
        /// Rejected (cluster, offer) pairings classified.
        rejected: u64,
        /// Per-cluster rejection tables, rendered as
        /// `c<id>[names]: reason=count; ...` segments joined by `" | "`
        /// (see `matchmaker::negotiate::ClusterRejections::encode`).
        breakdown: String,
    },
}

impl Event {
    /// The event's type tag as written to the journal.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::AdReceived { .. } => "AdReceived",
            Event::CycleCompleted { .. } => "CycleCompleted",
            Event::MatchMade { .. } => "MatchMade",
            Event::MatchNotified { .. } => "MatchNotified",
            Event::ClaimEstablished { .. } => "ClaimEstablished",
            Event::ClaimRejected { .. } => "ClaimRejected",
            Event::LeaseExpired { .. } => "LeaseExpired",
            Event::FrameRejected { .. } => "FrameRejected",
            Event::AgentRestarted { .. } => "AgentRestarted",
            Event::Checkpoint { .. } => "Checkpoint",
            Event::JobFlocked { .. } => "JobFlocked",
            Event::FlockMatchMade { .. } => "FlockMatchMade",
            Event::AlertRaised { .. } => "AlertRaised",
            Event::AlertCleared { .. } => "AlertCleared",
            Event::CycleRejections { .. } => "CycleRejections",
        }
    }

    /// Whether this reader knows the event kind. A well-formed line whose
    /// kind is unknown came from a newer writer: replay skips and counts
    /// it instead of treating it as a torn write.
    fn known_kind(kind: &str) -> bool {
        matches!(
            kind,
            "AdReceived"
                | "CycleCompleted"
                | "MatchMade"
                | "MatchNotified"
                | "ClaimEstablished"
                | "ClaimRejected"
                | "LeaseExpired"
                | "FrameRejected"
                | "AgentRestarted"
                | "Checkpoint"
                | "JobFlocked"
                | "FlockMatchMade"
                | "AlertRaised"
                | "AlertCleared"
                | "CycleRejections"
        )
    }

    fn fields(&self) -> Vec<(&'static str, FieldValue)> {
        use FieldValue::{Bool, Str, U64};
        match self {
            Event::AdReceived {
                kind,
                name,
                contact,
            } => vec![
                ("kind", Str(kind.clone())),
                ("name", Str(name.clone())),
                ("contact", Str(contact.clone())),
            ],
            Event::CycleCompleted {
                requests,
                offers,
                matches,
                unmatched,
                duration_ms,
                incremental,
            } => vec![
                ("requests", U64(*requests)),
                ("offers", U64(*offers)),
                ("matches", U64(*matches)),
                ("unmatched", U64(*unmatched)),
                ("duration_ms", U64(*duration_ms)),
                ("incremental", Bool(*incremental)),
            ],
            Event::MatchMade { request, offer } => vec![
                ("request", Str(request.clone())),
                ("offer", Str(offer.clone())),
            ],
            Event::MatchNotified {
                request,
                offer,
                delivered,
            } => vec![
                ("request", Str(request.clone())),
                ("offer", Str(offer.clone())),
                ("delivered", Bool(*delivered)),
            ],
            Event::ClaimEstablished { provider, customer } => vec![
                ("provider", Str(provider.clone())),
                ("customer", Str(customer.clone())),
            ],
            Event::ClaimRejected {
                provider,
                customer,
                reason,
            } => vec![
                ("provider", Str(provider.clone())),
                ("customer", Str(customer.clone())),
                ("reason", Str(reason.clone())),
            ],
            Event::LeaseExpired { expired } => vec![("expired", U64(*expired))],
            Event::FrameRejected { peer, reason } => {
                vec![("peer", Str(peer.clone())), ("reason", Str(reason.clone()))]
            }
            Event::AgentRestarted { agent, name } => {
                vec![("agent", Str(agent.clone())), ("name", Str(name.clone()))]
            }
            Event::Checkpoint {
                epoch,
                ads,
                matches,
                state,
            } => vec![
                ("epoch", U64(*epoch)),
                ("ads", U64(*ads)),
                ("matches", U64(*matches)),
                ("state", Str(state.clone())),
            ],
            Event::JobFlocked {
                request,
                offer,
                peer,
            } => vec![
                ("request", Str(request.clone())),
                ("offer", Str(offer.clone())),
                ("peer", Str(peer.clone())),
            ],
            Event::FlockMatchMade {
                request,
                offer,
                origin,
            } => vec![
                ("request", Str(request.clone())),
                ("offer", Str(offer.clone())),
                ("origin", Str(origin.clone())),
            ],
            Event::AlertRaised {
                rule,
                severity,
                detail,
            } => vec![
                ("rule", Str(rule.clone())),
                ("severity", Str(severity.clone())),
                ("detail", Str(detail.clone())),
            ],
            Event::AlertCleared { rule, severity } => vec![
                ("rule", Str(rule.clone())),
                ("severity", Str(severity.clone())),
            ],
            Event::CycleRejections {
                cycle,
                clusters,
                rejected,
                breakdown,
            } => vec![
                ("cycle", U64(*cycle)),
                ("clusters", U64(*clusters)),
                ("rejected", U64(*rejected)),
                ("breakdown", Str(breakdown.clone())),
            ],
        }
    }

    fn from_fields(kind: &str, obj: &JsonObject) -> Option<Event> {
        Some(match kind {
            "AdReceived" => Event::AdReceived {
                kind: obj.str("kind")?,
                name: obj.str("name")?,
                contact: obj.str("contact")?,
            },
            "CycleCompleted" => Event::CycleCompleted {
                requests: obj.u64("requests")?,
                offers: obj.u64("offers")?,
                matches: obj.u64("matches")?,
                unmatched: obj.u64("unmatched")?,
                duration_ms: obj.u64("duration_ms")?,
                // Journals written before sharding lack the field.
                incremental: obj.bool("incremental").unwrap_or(false),
            },
            "MatchMade" => Event::MatchMade {
                request: obj.str("request")?,
                offer: obj.str("offer")?,
            },
            "MatchNotified" => Event::MatchNotified {
                request: obj.str("request")?,
                offer: obj.str("offer")?,
                delivered: obj.bool("delivered")?,
            },
            "ClaimEstablished" => Event::ClaimEstablished {
                provider: obj.str("provider")?,
                customer: obj.str("customer")?,
            },
            "ClaimRejected" => Event::ClaimRejected {
                provider: obj.str("provider")?,
                customer: obj.str("customer")?,
                reason: obj.str("reason")?,
            },
            "LeaseExpired" => Event::LeaseExpired {
                expired: obj.u64("expired")?,
            },
            "FrameRejected" => Event::FrameRejected {
                peer: obj.str("peer")?,
                reason: obj.str("reason")?,
            },
            "AgentRestarted" => Event::AgentRestarted {
                agent: obj.str("agent")?,
                name: obj.str("name")?,
            },
            "Checkpoint" => Event::Checkpoint {
                epoch: obj.u64("epoch")?,
                ads: obj.u64("ads")?,
                matches: obj.u64("matches")?,
                state: obj.str("state")?,
            },
            "JobFlocked" => Event::JobFlocked {
                request: obj.str("request")?,
                offer: obj.str("offer")?,
                peer: obj.str("peer")?,
            },
            "FlockMatchMade" => Event::FlockMatchMade {
                request: obj.str("request")?,
                offer: obj.str("offer")?,
                origin: obj.str("origin")?,
            },
            "AlertRaised" => Event::AlertRaised {
                rule: obj.str("rule")?,
                severity: obj.str("severity")?,
                detail: obj.str("detail")?,
            },
            "AlertCleared" => Event::AlertCleared {
                rule: obj.str("rule")?,
                severity: obj.str("severity")?,
            },
            "CycleRejections" => Event::CycleRejections {
                cycle: obj.u64("cycle")?,
                clusters: obj.u64("clusters")?,
                rejected: obj.u64("rejected")?,
                breakdown: obj.str("breakdown")?,
            },
            _ => return None,
        })
    }
}

/// One journal line: sequence number, wall-clock stamps, typed event,
/// and (for events that happened under a trace) span coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotone per-journal sequence number, starting at 1.
    pub seq: u64,
    /// Unix seconds when the event was appended.
    pub unix: u64,
    /// Unix milliseconds when the event was appended (schema v2; derived
    /// from `unix` when replaying v1 lines).
    pub unix_ms: u64,
    /// The event itself.
    pub event: Event,
    /// The span this event was recorded under, if it is part of a trace.
    pub span: Option<SpanContext>,
}

impl Record {
    /// Encode as one schema-v2 JSONL line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut line = String::with_capacity(128);
        line.push('{');
        push_field(&mut line, "v", &FieldValue::U64(2));
        line.push(',');
        push_field(&mut line, "seq", &FieldValue::U64(self.seq));
        line.push(',');
        push_field(&mut line, "unix", &FieldValue::U64(self.unix));
        line.push(',');
        push_field(&mut line, "unix_ms", &FieldValue::U64(self.unix_ms));
        if let Some(span) = &self.span {
            line.push(',');
            push_field(
                &mut line,
                "trace",
                &FieldValue::Str(format_id(span.trace_id)),
            );
            line.push(',');
            push_field(&mut line, "span", &FieldValue::Str(format_id(span.span_id)));
            line.push(',');
            push_field(
                &mut line,
                "parent",
                &FieldValue::Str(format_id(span.parent_span_id)),
            );
        }
        line.push(',');
        push_field(
            &mut line,
            "event",
            &FieldValue::Str(self.event.kind().to_string()),
        );
        for (k, v) in self.event.fields() {
            line.push(',');
            push_field(&mut line, k, &v);
        }
        line.push('}');
        line
    }

    /// Decode one line of either schema version; `None` on torn or
    /// foreign content *and* on well-formed lines of an unknown event
    /// kind (use [`decode_line`] to tell the two apart).
    pub fn decode(line: &str) -> Option<Record> {
        match decode_line(line) {
            DecodedLine::Record(rec) => Some(rec),
            _ => None,
        }
    }

    fn from_object(obj: &JsonObject) -> Option<Record> {
        let event = Event::from_fields(&obj.str("event")?, obj)?;
        let unix = obj.u64("unix")?;
        let unix_ms = obj.u64("unix_ms").unwrap_or(unix * 1000);
        let span = match (obj.str("trace"), obj.str("span")) {
            (Some(trace), Some(span)) => Some(SpanContext {
                trace_id: parse_id(&trace)?,
                span_id: parse_id(&span)?,
                parent_span_id: obj.str("parent").map(|p| parse_id(&p)).unwrap_or(Some(0))?,
            }),
            _ => None,
        };
        Some(Record {
            seq: obj.u64("seq")?,
            unix,
            unix_ms,
            event,
            span,
        })
    }
}

/// How one journal line classified during replay.
#[derive(Debug)]
enum DecodedLine {
    /// A well-formed record of a known event kind.
    Record(Record),
    /// Well-formed JSON with an `event` tag this reader does not know —
    /// a newer writer's event. The line's sequence number (when present)
    /// still advances the journal position so the writer never reuses it.
    UnknownKind {
        /// The skipped line's `seq` field, if it had one.
        seq: Option<u64>,
    },
    /// Torn write, foreign content, or a known kind with missing fields.
    Torn,
}

fn decode_line(line: &str) -> DecodedLine {
    let Some(obj) = JsonObject::parse(line) else {
        return DecodedLine::Torn;
    };
    let Some(kind) = obj.str("event") else {
        return DecodedLine::Torn;
    };
    if !Event::known_kind(&kind) {
        return DecodedLine::UnknownKind {
            seq: obj.u64("seq"),
        };
    }
    match Record::from_object(&obj) {
        Some(rec) => DecodedLine::Record(rec),
        None => DecodedLine::Torn,
    }
}

/// What [`Journal::append_traced`] reports back: the record as stamped,
/// and whether the line actually reached the OS (`written == false`
/// means the event was dropped at the I/O layer and only the error
/// counter remembers it).
#[derive(Debug, Clone)]
pub struct Appended {
    /// The record as written (or as it would have been written).
    pub record: Record,
    /// `false` when the write failed and the event was dropped.
    pub written: bool,
}

/// Where the journal lives and when it rotates.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Path of the current journal file (e.g. `pool/journal.jsonl`).
    /// Rotated generations live next to it as `<path>.1`, `<path>.2`, ...
    pub path: PathBuf,
    /// Rotate before an append would push the current file past this size.
    pub rotate_bytes: u64,
    /// How many rotated generations to keep (0 = delete on rotation).
    pub keep_rotated: usize,
    /// Hard ceiling on rotated generations on disk. After every rotation
    /// the journal sweeps `<path>.n` for `n` beyond this cap — deleting
    /// even stale segments written by an earlier run with a larger
    /// `keep_rotated`. `None` (the default) caps at `keep_rotated`.
    pub max_rotated: Option<usize>,
    /// Durability knob: when `true`, every append is `fsync`ed to disk
    /// before returning, and a filling segment is synced once more before
    /// it is renamed away at rotation. Appends already reach the OS
    /// unbuffered (`write_all` + `flush`), which survives a daemon crash;
    /// the sync additionally survives power loss, at the cost of one
    /// `fsync` per event. Alerting daemons set this so a raise/clear
    /// sequence can always be reconstructed from replay. Default `false`.
    pub sync_on_rotate: bool,
}

impl JournalConfig {
    /// A journal at `path` with defaults good for tests and small pools:
    /// rotate at 1 MiB, keep 3 generations.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JournalConfig {
            path: path.into(),
            rotate_bytes: 1 << 20,
            keep_rotated: 3,
            max_rotated: None,
            sync_on_rotate: false,
        }
    }
}

/// An append-only, size-rotated event journal. Cheap to share: appends
/// serialize on an internal mutex, and every append reaches the OS before
/// the call returns (`BufWriter`-free by design — events are rare and
/// durability is the point).
#[derive(Debug)]
pub struct Journal {
    cfg: JournalConfig,
    inner: Mutex<JournalInner>,
}

#[derive(Debug)]
struct JournalInner {
    file: File,
    bytes: u64,
    seq: u64,
    io_errors: u64,
    unknown_kind: u64,
}

impl Journal {
    /// Open (or create) the journal at `cfg.path`, resuming the sequence
    /// number after the last decodable record in the current file.
    pub fn open(cfg: JournalConfig) -> std::io::Result<Journal> {
        if let Some(dir) = cfg.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut seq = 0;
        let mut unknown_kind = 0;
        if let Ok(file) = File::open(&cfg.path) {
            for line in BufReader::new(file).lines() {
                let Ok(line) = line else { break };
                match decode_line(&line) {
                    DecodedLine::Record(rec) => seq = seq.max(rec.seq),
                    // A newer writer's event: skip it, but honor its
                    // sequence number so this writer never reuses it.
                    DecodedLine::UnknownKind { seq: s } => {
                        unknown_kind += 1;
                        if let Some(s) = s {
                            seq = seq.max(s);
                        }
                    }
                    DecodedLine::Torn => {}
                }
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&cfg.path)?;
        let bytes = file.metadata()?.len();
        Ok(Journal {
            cfg,
            inner: Mutex::new(JournalInner {
                file,
                bytes,
                seq,
                io_errors: 0,
                unknown_kind,
            }),
        })
    }

    /// Append one untraced event. See [`Journal::append_traced`].
    pub fn append(&self, event: Event) -> Record {
        self.append_traced(event, None).record
    }

    /// Append one event under an optional span, stamping the next
    /// sequence number and the current unix time. I/O failures are
    /// counted (see [`Journal::io_errors`]) and reported via
    /// [`Appended::written`] but never panic or poison the journal:
    /// observability must not take the pool down.
    pub fn append_traced(&self, event: Event, span: Option<SpanContext>) -> Appended {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let record = Record {
            seq: inner.seq,
            unix: unix_ms / 1000,
            unix_ms,
            event,
            span,
        };
        let mut line = record.encode();
        line.push('\n');
        if inner.bytes + line.len() as u64 > self.cfg.rotate_bytes && inner.bytes > 0 {
            if let Err(_e) = self.rotate(&mut inner) {
                inner.io_errors += 1;
            }
        }
        let synced = |file: &File| {
            if self.cfg.sync_on_rotate {
                file.sync_data()
            } else {
                Ok(())
            }
        };
        let written = match inner
            .file
            .write_all(line.as_bytes())
            .and_then(|()| inner.file.flush())
            .and_then(|()| synced(&inner.file))
        {
            Ok(()) => {
                inner.bytes += line.len() as u64;
                true
            }
            Err(_) => {
                inner.io_errors += 1;
                false
            }
        };
        Appended { record, written }
    }

    /// Shift `<path>.(n)` → `<path>.(n+1)` (dropping the oldest) and start
    /// a fresh current file.
    fn rotate(&self, inner: &mut JournalInner) -> std::io::Result<()> {
        // Make the outgoing segment durable before it is renamed away:
        // after this, its records can never be lost to a crash mid-shift.
        if self.cfg.sync_on_rotate {
            inner.file.sync_all()?;
        }
        if self.cfg.keep_rotated == 0 {
            inner.file = File::create(&self.cfg.path)?;
            inner.bytes = 0;
            self.sweep_rotated()?;
            return Ok(());
        }
        let gen_path = |n: usize| -> PathBuf {
            let mut s = self.cfg.path.as_os_str().to_os_string();
            s.push(format!(".{n}"));
            PathBuf::from(s)
        };
        let oldest = gen_path(self.cfg.keep_rotated);
        if oldest.exists() {
            std::fs::remove_file(&oldest)?;
        }
        for n in (1..self.cfg.keep_rotated).rev() {
            let from = gen_path(n);
            if from.exists() {
                std::fs::rename(&from, gen_path(n + 1))?;
            }
        }
        std::fs::rename(&self.cfg.path, gen_path(1))?;
        inner.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.cfg.path)?;
        inner.bytes = 0;
        self.sweep_rotated()?;
        Ok(())
    }

    /// Delete rotated generations beyond the retention cap
    /// (`max_rotated`, defaulting to `keep_rotated`). The shift in
    /// [`Journal::rotate`] only touches generations it created, so
    /// without this sweep a journal reopened with a smaller
    /// `keep_rotated` would carry its old tail forever.
    fn sweep_rotated(&self) -> std::io::Result<()> {
        let cap = self.cfg.max_rotated.unwrap_or(self.cfg.keep_rotated);
        let dir = match self.cfg.path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => std::path::Path::new("."),
        };
        let Some(name) = self.cfg.path.file_name().and_then(|n| n.to_str()) else {
            return Ok(());
        };
        let prefix = format!("{name}.");
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let file_name = entry.file_name();
            let Some(file_name) = file_name.to_str() else {
                continue;
            };
            let stale = file_name
                .strip_prefix(&prefix)
                .and_then(|suffix| suffix.parse::<usize>().ok())
                .is_some_and(|n| n > cap);
            if stale {
                std::fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// The next append's sequence number minus one: how many records this
    /// journal has ever written (across rotations).
    pub fn position(&self) -> u64 {
        self.inner.lock().seq
    }

    /// How many appends or rotations failed at the I/O layer.
    pub fn io_errors(&self) -> u64 {
        self.inner.lock().io_errors
    }

    /// How many well-formed lines of an unknown event kind the current
    /// file held at open time — evidence a newer writer shares (or
    /// shared) this journal. Surfaced in daemon self-ads as
    /// `JournalUnknownKind`.
    pub fn unknown_kind(&self) -> u64 {
        self.inner.lock().unknown_kind
    }

    /// The journal's current file path.
    pub fn path(&self) -> &Path {
        &self.cfg.path
    }
}

/// What [`replay_with_stats`] saw while walking the journal files, beyond
/// the records it returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records decoded and returned.
    pub records: u64,
    /// Well-formed lines of an event kind this reader does not know,
    /// skipped and counted — a newer writer's events stay replayable by
    /// older readers without poisoning the rest of the file.
    pub unknown_kind: u64,
    /// Lines that failed to decode at all (torn writes, foreign content).
    pub torn: u64,
}

/// Read every decodable record for the journal at `path`: rotated
/// generations first (oldest to newest), then the current file. Lines
/// that fail to parse (torn writes, foreign content) are skipped —
/// replay is best-effort reconstruction, not validation. Equivalent to
/// [`replay_with_stats`] with the stats discarded.
pub fn replay(path: impl AsRef<Path>) -> std::io::Result<Vec<Record>> {
    replay_with_stats(path).map(|(records, _)| records)
}

/// Like [`replay`], also reporting how many lines were skipped and why —
/// distinguishing a newer writer's unknown event kinds (forward
/// compatibility, counted in [`ReplayStats::unknown_kind`]) from torn or
/// foreign content.
pub fn replay_with_stats(path: impl AsRef<Path>) -> std::io::Result<(Vec<Record>, ReplayStats)> {
    let path = path.as_ref();
    let mut generations: Vec<PathBuf> = Vec::new();
    for n in 1.. {
        let mut s = path.as_os_str().to_os_string();
        s.push(format!(".{n}"));
        let p = PathBuf::from(s);
        if p.exists() {
            generations.push(p);
        } else {
            break;
        }
    }
    generations.reverse(); // highest generation = oldest records
    generations.push(path.to_path_buf());
    let mut records = Vec::new();
    let mut stats = ReplayStats::default();
    for p in generations {
        let Ok(file) = File::open(&p) else { continue };
        for line in BufReader::new(file).lines() {
            let line = line?;
            match decode_line(&line) {
                DecodedLine::Record(rec) => {
                    stats.records += 1;
                    records.push(rec);
                }
                DecodedLine::UnknownKind { .. } => stats.unknown_kind += 1,
                DecodedLine::Torn => {
                    // A trailing empty line is an artifact of
                    // line-buffered writes, not a torn record.
                    if !line.trim().is_empty() {
                        stats.torn += 1;
                    }
                }
            }
        }
    }
    Ok((records, stats))
}

/// What a recovering daemon reconstructs from a journal: the last
/// checkpoint (if any) plus the records appended after it — the
/// "last-checkpoint-plus-tail" cursor an HA standby replays before
/// answering its first cycle as leader.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The payload of the newest [`Event::Checkpoint`], `None` when the
    /// journal holds no checkpoint (recovery then relies on agents'
    /// natural re-advertising alone).
    pub state: Option<String>,
    /// The sequence number of that checkpoint record (0 when none).
    pub checkpoint_seq: u64,
    /// The leadership epoch the checkpoint was taken under (0 when none).
    pub epoch: u64,
    /// Every record strictly after the checkpoint, in replay order (the
    /// whole journal when there is no checkpoint).
    pub tail: Vec<Record>,
    /// Replay health over the full walk.
    pub stats: ReplayStats,
}

/// Walk the journal at `path` (rotated generations included) and position
/// a recovery cursor at the **last** [`Event::Checkpoint`]: its payload
/// plus everything after it. This is the restart path of an HA leader —
/// restore the checkpoint, then apply the tail.
pub fn recover(path: impl AsRef<Path>) -> std::io::Result<Recovery> {
    let (records, stats) = replay_with_stats(path)?;
    let mut cut = 0usize;
    let mut state = None;
    let mut checkpoint_seq = 0;
    let mut epoch = 0;
    for (i, rec) in records.iter().enumerate() {
        if let Event::Checkpoint {
            epoch: e, state: s, ..
        } = &rec.event
        {
            cut = i + 1;
            state = Some(s.clone());
            checkpoint_seq = rec.seq;
            epoch = *e;
        }
    }
    Ok(Recovery {
        state,
        checkpoint_seq,
        epoch,
        tail: records[cut..].to_vec(),
        stats,
    })
}

// ---- minimal flat JSON ----
//
// The journal's object shape is fixed: one flat object per line, values
// are strings, unsigned integers, or booleans. The encoder and parser
// below implement exactly that (with full string escaping), which is all
// the journal needs and keeps the crate dependency-free.

#[derive(Debug)]
enum FieldValue {
    Str(String),
    U64(u64),
    Bool(bool),
}

fn push_field(out: &mut String, key: &str, v: &FieldValue) {
    push_json_string(out, key);
    out.push(':');
    match v {
        FieldValue::Str(s) => push_json_string(out, s),
        FieldValue::U64(n) => {
            use fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed flat JSON object (string/u64/bool values only).
#[derive(Debug, Default)]
struct JsonObject {
    fields: Vec<(String, FieldValue)>,
}

impl JsonObject {
    fn str(&self, key: &str) -> Option<String> {
        self.fields.iter().find_map(|(k, v)| match v {
            FieldValue::Str(s) if k == key => Some(s.clone()),
            _ => None,
        })
    }

    fn u64(&self, key: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            FieldValue::U64(n) if k == key => Some(*n),
            _ => None,
        })
    }

    fn bool(&self, key: &str) -> Option<bool> {
        self.fields.iter().find_map(|(k, v)| match v {
            FieldValue::Bool(b) if k == key => Some(*b),
            _ => None,
        })
    }

    fn parse(line: &str) -> Option<JsonObject> {
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut obj = JsonObject::default();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
        } else {
            loop {
                p.skip_ws();
                let key = p.parse_string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                let value = p.parse_value()?;
                obj.fields.push((key, value));
                p.skip_ws();
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b'}') => {
                        p.pos += 1;
                        break;
                    }
                    _ => return None,
                }
            }
        }
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(obj)
        } else {
            None
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Option<FieldValue> {
        match self.peek()? {
            b'"' => self.parse_string().map(FieldValue::Str),
            b't' => self.parse_literal("true").map(|()| FieldValue::Bool(true)),
            b'f' => self
                .parse_literal("false")
                .map(|()| FieldValue::Bool(false)),
            b'0'..=b'9' => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()?
                    .parse()
                    .ok()
                    .map(FieldValue::U64)
            }
            _ => None,
        }
    }

    fn parse_literal(&mut self, lit: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("condor-obs-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::AdReceived {
                kind: "Provider".into(),
                name: "ra-\"quoted\"\n".into(),
                contact: "127.0.0.1:9618".into(),
            },
            Event::CycleCompleted {
                requests: 3,
                offers: 2,
                matches: 2,
                unmatched: 1,
                duration_ms: 12,
                incremental: true,
            },
            Event::MatchMade {
                request: "job-1".into(),
                offer: "ra-1".into(),
            },
            Event::MatchNotified {
                request: "job-1".into(),
                offer: "ra-1".into(),
                delivered: true,
            },
            Event::ClaimEstablished {
                provider: "ra-1".into(),
                customer: "alice".into(),
            },
            Event::ClaimRejected {
                provider: "ra-2".into(),
                customer: "bob".into(),
                reason: "stale ticket".into(),
            },
            Event::LeaseExpired { expired: 4 },
            Event::FrameRejected {
                peer: "10.0.0.7:1234".into(),
                reason: "bad tag 99".into(),
            },
            Event::AgentRestarted {
                agent: "CustomerAgent".into(),
                name: "alice".into(),
            },
            Event::Checkpoint {
                epoch: 3,
                ads: 12,
                matches: 1,
                state: "snapshot v1\nad \"with\\quotes\"\tand tabs".into(),
            },
            Event::JobFlocked {
                request: "job-1".into(),
                offer: "remote-ra".into(),
                peer: "10.0.0.9:9614".into(),
            },
            Event::FlockMatchMade {
                request: "job-9".into(),
                offer: "ra-3".into(),
                origin: "10.0.0.2:9614".into(),
            },
            Event::CycleRejections {
                cycle: 3,
                clusters: 2,
                rejected: 7,
                breakdown: "c0[j1+j2]: ReqFalse(request): other.Mips >= 1000=4 | c1[j9]: Busy=3"
                    .into(),
            },
            Event::AlertRaised {
                rule: "MatchmakerDown".into(),
                severity: "critical".into(),
                detail: "ReqFalse(rule): other.SourceAbsent == true".into(),
            },
            Event::AlertCleared {
                rule: "MatchmakerDown".into(),
                severity: "critical".into(),
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_a_line() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let span = (i % 2 == 0).then_some(SpanContext {
                trace_id: 0xDEAD_BEEF + i as u64,
                span_id: 42 + i as u64,
                parent_span_id: i as u64, // 0 on the first: root spans encode too
            });
            let rec = Record {
                seq: i as u64 + 1,
                unix: 1_700_000_000,
                unix_ms: 1_700_000_000_123,
                event,
                span,
            };
            let line = rec.encode();
            let back = Record::decode(&line).unwrap_or_else(|| panic!("decode failed: {line}"));
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn v1_lines_still_decode() {
        let line = "{\"seq\":7,\"unix\":1700000000,\"event\":\"LeaseExpired\",\"expired\":3}";
        let rec = Record::decode(line).unwrap();
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.unix, 1_700_000_000);
        assert_eq!(rec.unix_ms, 1_700_000_000_000, "derived from unix seconds");
        assert_eq!(rec.span, None);
        assert_eq!(rec.event, Event::LeaseExpired { expired: 3 });
    }

    #[test]
    fn append_traced_stamps_the_span_and_reports_written() {
        let dir = temp_dir("traced");
        let cfg = JournalConfig::new(dir.join("j.jsonl"));
        let j = Journal::open(cfg).unwrap();
        let span = SpanContext {
            trace_id: 0xAB,
            span_id: 0xCD,
            parent_span_id: 0,
        };
        let out = j.append_traced(Event::LeaseExpired { expired: 1 }, Some(span));
        assert!(out.written);
        assert!(out.record.unix_ms >= out.record.unix * 1000);
        let recs = replay(j.path()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].span, Some(span));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn append_resumes_sequence_after_reopen() {
        let dir = temp_dir("resume");
        let cfg = JournalConfig::new(dir.join("j.jsonl"));
        {
            let j = Journal::open(cfg.clone()).unwrap();
            j.append(Event::LeaseExpired { expired: 1 });
            j.append(Event::LeaseExpired { expired: 2 });
            assert_eq!(j.position(), 2);
        }
        let j = Journal::open(cfg).unwrap();
        let rec = j.append(Event::LeaseExpired { expired: 3 });
        assert_eq!(rec.seq, 3);
        let recs = replay(j.path()).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rotation_keeps_bounded_generations_and_replay_orders_them() {
        let dir = temp_dir("rotate");
        let path = dir.join("j.jsonl");
        let cfg = JournalConfig {
            path: path.clone(),
            rotate_bytes: 200,
            keep_rotated: 2,
            max_rotated: None,
            sync_on_rotate: false,
        };
        let j = Journal::open(cfg).unwrap();
        for i in 0..40 {
            j.append(Event::LeaseExpired { expired: i });
        }
        assert!(path.exists());
        let gen1 = PathBuf::from(format!("{}.1", path.display()));
        let gen2 = PathBuf::from(format!("{}.2", path.display()));
        let gen3 = PathBuf::from(format!("{}.3", path.display()));
        assert!(gen1.exists() && gen2.exists());
        assert!(
            !gen3.exists(),
            "keep_rotated = 2 must bound the generations"
        );
        let recs = replay(&path).unwrap();
        // Oldest generations fell off, but what remains is contiguous,
        // in order, and ends with the newest record.
        assert!(recs.len() < 40);
        assert!(recs.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert_eq!(recs.last().unwrap().seq, 40);
        assert_eq!(j.io_errors(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn max_rotated_sweeps_stale_generations() {
        let dir = temp_dir("sweep");
        let path = dir.join("j.jsonl");
        let gen = |n: usize| PathBuf::from(format!("{}.{n}", path.display()));
        // A previous deployment ran with a looser keep_rotated and left
        // six generations behind; this run caps retention at three.
        for n in 1..=6 {
            std::fs::write(gen(n), b"stale\n").unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), b"keep me\n").unwrap();
        let j = Journal::open(JournalConfig {
            path: path.clone(),
            rotate_bytes: 200,
            keep_rotated: 2,
            max_rotated: Some(3),
            sync_on_rotate: false,
        })
        .unwrap();
        for i in 0..40 {
            j.append(Event::LeaseExpired { expired: i });
        }
        // The shift window still maintains .1/.2; the sweep reclaimed
        // every generation past the cap but spared unrelated siblings.
        assert!(gen(1).exists() && gen(2).exists());
        for n in 4..=6 {
            assert!(!gen(n).exists(), "generation {n} must be swept");
        }
        assert!(dir.join("unrelated.txt").exists());
        assert_eq!(j.io_errors(), 0);
        // Replay still works: stale lines in surviving old generations
        // are skipped as torn, and live records stay in order.
        let recs = replay(&path).unwrap();
        assert!(recs.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert_eq!(recs.last().unwrap().seq, 40);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sync_on_rotate_keeps_rotation_and_replay_intact() {
        // The durability knob must not perturb the journal's observable
        // behavior: every record survives (sync happens before the rename
        // window), generations stay bounded, and no I/O error is counted.
        let dir = temp_dir("sync");
        let path = dir.join("j.jsonl");
        let j = Journal::open(JournalConfig {
            path: path.clone(),
            rotate_bytes: 256,
            // Keep every generation: the assertion is that nothing is
            // lost, and a generation falling off the end would lose
            // records by design.
            keep_rotated: 64,
            max_rotated: None,
            sync_on_rotate: true,
        })
        .unwrap();
        for i in 0..30 {
            let out = j.append_traced(
                Event::AlertRaised {
                    rule: format!("rule-{i}"),
                    severity: "warning".into(),
                    detail: "detail".into(),
                },
                None,
            );
            assert!(out.written, "synced append {i} must report written");
        }
        assert_eq!(j.io_errors(), 0);
        let recs = replay(&path).unwrap();
        assert_eq!(recs.len(), 30);
        assert!(recs.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn replay_skips_torn_and_foreign_lines() {
        let dir = temp_dir("torn");
        let path = dir.join("j.jsonl");
        let cfg = JournalConfig::new(path.clone());
        let j = Journal::open(cfg.clone()).unwrap();
        j.append(Event::LeaseExpired { expired: 1 });
        drop(j);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "{{\"seq\":2,\"unix\":0,\"event\":\"LeaseExp").unwrap(); // torn
        writeln!(f, "not json at all").unwrap();
        drop(f);
        let j = Journal::open(cfg).unwrap();
        j.append(Event::LeaseExpired { expired: 9 });
        let recs = replay(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].event, Event::LeaseExpired { expired: 9 });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn unknown_event_kinds_are_skipped_and_counted() {
        let dir = temp_dir("unknown");
        let path = dir.join("j.jsonl");
        let cfg = JournalConfig::new(path.clone());
        let j = Journal::open(cfg.clone()).unwrap();
        j.append(Event::LeaseExpired { expired: 1 });
        drop(j);
        // A future writer appends events this reader has never heard of,
        // advancing the sequence past what we know.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(
            f,
            "{{\"v\":2,\"seq\":2,\"unix\":0,\"unix_ms\":0,\"event\":\"QuantumFlux\",\"level\":9}}"
        )
        .unwrap();
        writeln!(
            f,
            "{{\"v\":2,\"seq\":3,\"unix\":0,\"unix_ms\":0,\"event\":\"QuantumFlux\",\"level\":10}}"
        )
        .unwrap();
        writeln!(f, "genuinely torn garba").unwrap();
        drop(f);
        // Replay keeps the known record and classifies the rest.
        let (recs, stats) = replay_with_stats(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(
            stats,
            ReplayStats {
                records: 1,
                unknown_kind: 2,
                torn: 1,
            }
        );
        // Reopening honors the foreign sequence numbers (no reuse) and
        // remembers how many lines it could not interpret.
        let j = Journal::open(cfg).unwrap();
        assert_eq!(j.unknown_kind(), 2);
        let rec = j.append(Event::LeaseExpired { expired: 2 });
        assert_eq!(rec.seq, 4, "seq resumes after the unknown kinds");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn recover_positions_the_cursor_after_the_last_checkpoint() {
        let dir = temp_dir("recover");
        let cfg = JournalConfig::new(dir.join("j.jsonl"));
        let j = Journal::open(cfg).unwrap();
        j.append(Event::LeaseExpired { expired: 1 });
        j.append(Event::Checkpoint {
            epoch: 1,
            ads: 5,
            matches: 0,
            state: "first".into(),
        });
        j.append(Event::LeaseExpired { expired: 2 });
        j.append(Event::Checkpoint {
            epoch: 2,
            ads: 7,
            matches: 1,
            state: "second".into(),
        });
        j.append(Event::LeaseExpired { expired: 3 });
        j.append(Event::MatchMade {
            request: "j1".into(),
            offer: "m1".into(),
        });
        let rec = recover(j.path()).unwrap();
        assert_eq!(rec.state.as_deref(), Some("second"));
        assert_eq!(rec.checkpoint_seq, 4);
        assert_eq!(rec.epoch, 2);
        assert_eq!(rec.tail.len(), 2, "only records after the checkpoint");
        assert_eq!(rec.tail[0].event, Event::LeaseExpired { expired: 3 });
        assert_eq!(rec.stats.records, 6);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn recover_without_checkpoint_returns_the_whole_journal() {
        let dir = temp_dir("recover-nocp");
        let cfg = JournalConfig::new(dir.join("j.jsonl"));
        let j = Journal::open(cfg).unwrap();
        j.append(Event::LeaseExpired { expired: 1 });
        j.append(Event::LeaseExpired { expired: 2 });
        let rec = recover(j.path()).unwrap();
        assert_eq!(rec.state, None);
        assert_eq!(rec.checkpoint_seq, 0);
        assert_eq!(rec.tail.len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checkpoint_payload_with_newlines_survives_the_line_format() {
        let state = "line1\nline2\twith\"quotes\"\\and\\slashes\nline3".to_string();
        let rec = Record {
            seq: 1,
            unix: 1_700_000_000,
            unix_ms: 1_700_000_000_000,
            event: Event::Checkpoint {
                epoch: 9,
                ads: 2,
                matches: 0,
                state: state.clone(),
            },
            span: None,
        };
        let line = rec.encode();
        assert!(!line.contains('\n'), "one record stays one line");
        let back = Record::decode(&line).unwrap();
        let Event::Checkpoint { state: decoded, .. } = back.event else {
            panic!("wrong kind")
        };
        assert_eq!(decoded, state);
    }

    #[test]
    fn cycle_rejections_round_trip_breakdown_verbatim() {
        let breakdown =
            "c0[never]: ReqFalse(request): other.Mips >= 1000=2; Undef(offer): Gpus=1".to_string();
        let rec = Record {
            seq: 1,
            unix: 1_700_000_000,
            unix_ms: 1_700_000_000_500,
            event: Event::CycleRejections {
                cycle: 12,
                clusters: 1,
                rejected: 3,
                breakdown: breakdown.clone(),
            },
            span: None,
        };
        let back = Record::decode(&rec.encode()).unwrap();
        let Event::CycleRejections {
            breakdown: decoded, ..
        } = back.event
        else {
            panic!("wrong kind")
        };
        assert_eq!(decoded, breakdown);
    }
}
