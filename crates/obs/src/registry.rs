//! The metrics registry: counters, gauges, and time-windowed histograms.
//!
//! Hot paths touch only atomics: a component registers its metrics once
//! (paying the registry's map lock), keeps the returned `Arc` handles in a
//! plain struct, and updates them with relaxed atomic operations.
//! Snapshots walk the registry maps and are the only readers, so they
//! never contend with instrumented code beyond the atomic loads.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotone counter (relaxed atomics: monotone, no ordering needs).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (e.g. active connections, idle jobs).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over the samples recorded within a sliding time window
/// (older samples age out), for quantities like cycle duration where the
/// *recent* distribution is what an operator wants.
#[derive(Debug)]
pub struct WindowedHistogram {
    window: Duration,
    samples: Mutex<VecDeque<(Instant, f64)>>,
}

/// Point-in-time summary of a [`WindowedHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples currently inside the window.
    pub count: u64,
    /// Smallest sample in the window.
    pub min: f64,
    /// Largest sample in the window.
    pub max: f64,
    /// Mean of the window.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl WindowedHistogram {
    /// A histogram forgetting samples older than `window`.
    pub fn new(window: Duration) -> Self {
        WindowedHistogram {
            window,
            samples: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one sample now. Non-finite samples are dropped (they would
    /// poison every percentile and cannot render into a classad).
    pub fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let now = Instant::now();
        let mut samples = self.samples.lock();
        samples.push_back((now, value));
        while samples
            .front()
            .is_some_and(|(t, _)| now.duration_since(*t) > self.window)
        {
            samples.pop_front();
        }
    }

    /// Summarize the samples still inside the window.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let now = Instant::now();
        let mut samples = self.samples.lock();
        while samples
            .front()
            .is_some_and(|(t, _)| now.duration_since(*t) > self.window)
        {
            samples.pop_front();
        }
        let mut values: Vec<f64> = samples.iter().map(|(_, v)| *v).collect();
        drop(samples);
        if values.is_empty() {
            return HistogramSnapshot::default();
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("non-finite samples are rejected"));
        let count = values.len() as u64;
        let sum: f64 = values.iter().sum();
        let pct = |p: f64| {
            let idx = ((p * (values.len() - 1) as f64).round() as usize).min(values.len() - 1);
            values[idx]
        };
        HistogramSnapshot {
            count,
            min: values[0],
            max: *values.last().expect("non-empty"),
            mean: sum / count as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }
}

/// A named collection of metrics. Cloneable handles come out; a
/// [`MetricsSnapshot`] goes in the other direction.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<WindowedHistogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the named counter. Names should be `snake_case`; they
    /// render as PascalCase classad attributes (see
    /// [`crate::selfad::attr_name`]).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().entry(name.to_string()).or_default())
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().entry(name.to_string()).or_default())
    }

    /// Get or create the named windowed histogram. The window is fixed at
    /// first registration; later calls reuse the existing histogram.
    pub fn histogram(&self, name: &str, window: Duration) -> Arc<WindowedHistogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(WindowedHistogram::new(window))),
        )
    }

    /// A consistent-enough snapshot of every registered metric (each
    /// metric is read atomically; the set is read under the map locks).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Every metric's value at one instant. Renders into a classad via
/// [`MetricsSnapshot::set_attrs`] (or the full self-ad via
/// [`crate::selfad::self_ad`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Write every metric into `ad` as an evaluated attribute: counters
    /// and gauges as integers, histograms as a family of
    /// `<Name>Count/Min/Max/Mean/P50/P90/P99` attributes (empty histograms
    /// contribute only their zero `Count`).
    pub fn set_attrs(&self, ad: &mut classad::ClassAd) {
        use crate::selfad::attr_name;
        for (name, v) in &self.counters {
            ad.set_int(attr_name(name), *v as i64);
        }
        for (name, v) in &self.gauges {
            ad.set_int(attr_name(name), *v);
        }
        for (name, h) in &self.histograms {
            let base = attr_name(name);
            ad.set_int(format!("{base}Count"), h.count as i64);
            if h.count > 0 {
                ad.set_real(format!("{base}Min"), h.min);
                ad.set_real(format!("{base}Max"), h.max);
                ad.set_real(format!("{base}Mean"), h.mean);
                ad.set_real(format!("{base}P50"), h.p50);
                ad.set_real(format!("{base}P90"), h.p90);
                ad.set_real(format!("{base}P99"), h.p99);
            }
        }
    }

    /// Look up a counter by metric name.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Look up a gauge by metric name.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("hits").get(), 3);
        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.snapshot().gauge("depth"), 3);
        assert_eq!(reg.snapshot().counter("hits"), 3);
        assert_eq!(reg.snapshot().counter("absent"), 0);
    }

    #[test]
    fn histogram_summarizes_and_rejects_non_finite() {
        let reg = Registry::new();
        let h = reg.histogram("lat", Duration::from_secs(3600));
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            h.record(v);
        }
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p99, 5.0);
    }

    #[test]
    fn histogram_window_ages_samples_out() {
        let h = WindowedHistogram::new(Duration::from_millis(30));
        h.record(10.0);
        std::thread::sleep(Duration::from_millis(60));
        h.record(20.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 20.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = WindowedHistogram::new(Duration::from_secs(1));
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn snapshot_renders_into_classad() {
        let reg = Registry::new();
        reg.counter("frames_handled").add(7);
        reg.gauge("active_connections").set(2);
        reg.histogram("cycle_duration_ms", Duration::from_secs(60))
            .record(1.5);
        let mut ad = classad::ClassAd::new();
        reg.snapshot().set_attrs(&mut ad);
        assert_eq!(ad.get_int("FramesHandled"), Some(7));
        assert_eq!(ad.get_int("ActiveConnections"), Some(2));
        assert_eq!(ad.get_int("CycleDurationMsCount"), Some(1));
        assert!(ad.contains("CycleDurationMsP99"));
    }
}
