//! The advertising, matchmaking, and claiming protocol messages (paper §3).
//!
//! The framework decomposes into five parts; this module defines the
//! *conventions and messages* for three of them:
//!
//! * the **advertising protocol** — what a classad must contain to
//!   participate in matchmaking ([`AdvertisingProtocol`],
//!   [`Advertisement`]);
//! * the **matchmaking protocol** — how matched parties are notified
//!   ([`MatchNotification`]);
//! * the **claiming protocol** — how a customer claims a provider directly,
//!   bypassing the matchmaker ([`ClaimRequest`], [`ClaimResponse`]).
//!
//! Messages carry their classads by value and encode to a length-prefixed
//! binary frame (see [`Message::encode`]) so agents can exchange them over
//! any byte stream. The matchmaker itself stays stateless with respect to
//! matches: once a [`MatchNotification`] is sent, everything else happens
//! between the two entities.

use crate::ticket::Ticket;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use classad::json::{from_json, to_json};
use classad::{ClassAd, MatchConventions};
use std::fmt;

pub use condor_obs::trace::TraceContext;

/// Logical timestamps, in seconds. The simulator drives these from its
/// virtual clock; a live deployment would use wall-clock seconds.
pub type Timestamp = u64;

/// Which side of a match an entity advertises as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A service/resource provider (e.g. a workstation's Resource-owner
    /// Agent).
    Provider,
    /// A service customer (e.g. a Customer Agent holding a job queue).
    Customer,
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EntityKind::Provider => "provider",
            EntityKind::Customer => "customer",
        })
    }
}

/// A classad submitted for matchmaking, together with the envelope data the
/// advertising protocol requires.
#[derive(Debug, Clone, PartialEq)]
pub struct Advertisement {
    /// Provider or customer.
    pub kind: EntityKind,
    /// The advertised classad.
    pub ad: ClassAd,
    /// Where the advertising entity can be reached for claiming.
    pub contact: String,
    /// Authorization ticket a provider hands to the matchmaker; relayed to
    /// the matched customer and verified at claim time (paper §4).
    pub ticket: Option<Ticket>,
    /// When this ad lapses if not refreshed (absolute, seconds).
    pub expires_at: Timestamp,
}

/// Errors the advertising protocol can raise when admitting an ad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A required attribute is missing from the classad.
    MissingAttribute(String),
    /// The contact address is empty.
    MissingContact,
    /// The contact address is not a resolvable `host:port` (only raised
    /// when the protocol demands real socket contacts — live deployments).
    BadContact(String),
    /// The ad has already expired at submission time.
    AlreadyExpired,
    /// A frame failed to decode.
    BadFrame(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::MissingAttribute(a) => write!(f, "ad lacks required attribute `{a}`"),
            ProtocolError::MissingContact => f.write_str("ad has no contact address"),
            ProtocolError::BadContact(c) => {
                write!(f, "contact `{c}` is not a usable host:port address")
            }
            ProtocolError::AlreadyExpired => f.write_str("ad is already expired"),
            ProtocolError::BadFrame(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The matchmaker's advertising protocol: which attributes an ad must carry
/// to be admitted, and which attribute names carry match semantics.
///
/// The paper's pool manager "states that every classad should include
/// expressions named Constraint and Rank" plus a contact address and, for
/// providers, an optional authorization ticket.
#[derive(Debug, Clone)]
pub struct AdvertisingProtocol {
    /// Attributes every ad must define (checked case-insensitively).
    pub required_attrs: Vec<String>,
    /// Attribute names carrying match semantics (`Constraint`, `Rank`).
    pub conventions: MatchConventions,
    /// Default lease length granted to ads that will be refreshed
    /// periodically, in seconds.
    pub default_lease: u64,
    /// Require `contact` to parse as a real socket address (`host:port`).
    /// Off by default so in-memory pools and the simulator can use symbolic
    /// contacts; a live TCP daemon turns this on, because it must be able
    /// to dial the contact back to deliver match notifications.
    pub require_socket_contact: bool,
}

impl Default for AdvertisingProtocol {
    fn default() -> Self {
        AdvertisingProtocol {
            // `Name` identifies the entity; `Constraint`/`Rank` presence is
            // checked through the conventions (either spelling accepted).
            required_attrs: vec!["Name".to_string()],
            conventions: MatchConventions::default(),
            default_lease: 300,
            require_socket_contact: false,
        }
    }
}

impl AdvertisingProtocol {
    /// Validate an advertisement against the protocol.
    pub fn validate(&self, adv: &Advertisement, now: Timestamp) -> Result<(), ProtocolError> {
        for attr in &self.required_attrs {
            if !adv.ad.contains(attr) {
                return Err(ProtocolError::MissingAttribute(attr.clone()));
            }
        }
        if self.conventions.constraint_attr_of(&adv.ad).is_none() {
            return Err(ProtocolError::MissingAttribute(
                self.conventions.constraint_attrs[0].clone(),
            ));
        }
        if adv.contact.is_empty() {
            return Err(ProtocolError::MissingContact);
        }
        if self.require_socket_contact {
            use std::net::ToSocketAddrs;
            let resolvable = adv
                .contact
                .to_socket_addrs()
                .map(|mut a| a.next().is_some())
                .unwrap_or(false);
            if !resolvable {
                return Err(ProtocolError::BadContact(adv.contact.clone()));
            }
        }
        if adv.expires_at <= now {
            return Err(ProtocolError::AlreadyExpired);
        }
        Ok(())
    }
}

/// Sent by the matchmaker to both matched parties (step 3 in the paper's
/// Figure 3): each side receives the *other* side's ad, the peer's contact
/// address, and — for the customer — the provider's authorization ticket.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchNotification {
    /// The ad of the entity being notified, as the matchmaker saw it
    /// (lets the entity detect how stale the matched state is).
    pub own_ad: ClassAd,
    /// The matched peer's ad.
    pub peer_ad: ClassAd,
    /// The peer's contact address.
    pub peer_contact: String,
    /// The provider's authorization ticket (present on the customer's copy).
    pub ticket: Option<Ticket>,
}

/// Step 4: the customer contacts the provider directly to establish the
/// claim.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimRequest {
    /// The ticket relayed through the matchmaker.
    pub ticket: Ticket,
    /// The customer's *current* ad — the provider re-verifies its
    /// constraint against this, not against the possibly-stale ad it
    /// advertised with.
    pub customer_ad: ClassAd,
    /// Customer contact address for the duration of the claim.
    pub customer_contact: String,
}

/// Why a provider refused a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimRejection {
    /// The ticket did not match the one the provider issued.
    BadTicket,
    /// The provider's constraint no longer accepts the customer (state
    /// changed since the ad was sent — the weak-consistency case).
    ConstraintFailed,
    /// The customer's constraint no longer accepts the provider's current
    /// state.
    CustomerConstraintFailed,
    /// The provider is already claimed and not preemptible by this request.
    Busy,
}

impl fmt::Display for ClaimRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClaimRejection::BadTicket => "authorization ticket mismatch",
            ClaimRejection::ConstraintFailed => "provider constraint no longer satisfied",
            ClaimRejection::CustomerConstraintFailed => "customer constraint no longer satisfied",
            ClaimRejection::Busy => "provider busy and not preemptible",
        })
    }
}

/// The provider's answer to a [`ClaimRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimResponse {
    /// Accepted or not.
    pub accepted: bool,
    /// Populated when rejected.
    pub rejection: Option<ClaimRejection>,
    /// The provider's current ad (so the customer can re-advertise
    /// accurately after a rejection).
    pub provider_ad: ClassAd,
}

/// All protocol messages, for framing over a byte stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Step 1: an entity advertises.
    Advertise(Advertisement),
    /// Step 3: the matchmaker notifies a matched entity.
    Notify(MatchNotification),
    /// Step 4a: the customer claims the provider.
    Claim(ClaimRequest),
    /// Step 4b: the provider answers.
    ClaimReply(ClaimResponse),
    /// A customer releases an established claim.
    Release {
        /// Ticket of the claim being released.
        ticket: Ticket,
    },
    /// A one-way query from a status/administrative tool (paper §4).
    Query {
        /// Constraint expression source selecting target ads.
        constraint: String,
        /// Restrict to providers/customers, or both when `None`.
        kind: Option<EntityKind>,
        /// Attributes to project in results; empty = whole ads.
        projection: Vec<String>,
    },
    /// The matchmaker's answer to a [`Message::Query`].
    QueryReply {
        /// The matching (possibly projected) ads.
        ads: Vec<ClassAd>,
    },
    /// A structured rejection an endpoint sends before closing the
    /// connection when the peer's frame was malformed or violated the
    /// endpoint's protocol — so a request/reply peer sees *why* instead of
    /// waiting on a stream whose decoder lost sync.
    Error {
        /// Human-readable description of what was rejected.
        detail: String,
    },
    /// Ask the matchmaker *why* a request is not matching (paper §4's
    /// one-way query protocol, extended with failure attribution). The
    /// matchmaker answers with a [`Message::AnalyzeReply`] carrying a
    /// `MatchAnalysis` classad; an older matchmaker that predates the tag
    /// answers [`Message::Error`] (`unknown tag 9`), which clients surface
    /// as a remote error — no framing desync on either side.
    Analyze {
        /// `Name` attribute of the request ad to analyze.
        name: String,
    },
    /// The matchmaker's answer to a [`Message::Analyze`]: a single
    /// `MatchAnalysis` classad (see `docs/protocol.md` §12 for its
    /// attributes).
    AnalyzeReply {
        /// The analysis ad.
        ad: ClassAd,
    },
    /// A matchmaker daemon bids for pool leadership (HA election; see
    /// `docs/protocol.md` §13). A bid proposes an epoch strictly greater
    /// than any lease the bidder has observed; peers answer with their
    /// current [`Message::LeaderLease`] (conceding or asserting). A
    /// pre-HA matchmaker answers [`Message::Error`] (`unknown tag 11`),
    /// which bidders treat as a concession — no framing desync.
    ElectionBid {
        /// The epoch the bidder proposes to lead.
        epoch: u64,
        /// The bidder's matchmaker contact address (`host:port`).
        candidate: String,
    },
    /// A leadership lease assertion: `leader` holds the pool for `epoch`
    /// until `expires_at`. Sent in reply to an [`Message::ElectionBid`]
    /// and broadcast by the leader as a heartbeat; standbys contend only
    /// once the lease they last saw has lapsed.
    LeaderLease {
        /// The epoch this lease belongs to. Higher epochs always win.
        epoch: u64,
        /// The leader's matchmaker contact address (`host:port`).
        leader: String,
        /// When the lease lapses if not refreshed (absolute, seconds).
        expires_at: Timestamp,
    },
    /// A matchmaker forwards one representative request ad from an
    /// unmatched autocluster to a peer pool's matchmaker (flocking; see
    /// `docs/protocol.md` §14). The representative ad carries the
    /// anti-loop state as ordinary attributes (`FlockHops` — remaining
    /// hop budget — and `FlockVisited` — pools already consulted). A
    /// pre-flock matchmaker answers [`Message::Error`] (`unknown tag
    /// 13`), which the sender treats as "peer does not flock" — no
    /// framing desync, normal traffic undisturbed.
    FlockQuery {
        /// The originating pool's matchmaker contact (`host:port`).
        origin: String,
        /// How many requests the forwarded representative stands for.
        members: u32,
        /// The representative request ad (constraint shared verbatim by
        /// every member of the autocluster).
        rep: ClassAd,
    },
    /// A peer matchmaker's answer to a [`Message::FlockQuery`]: either a
    /// delegation grant — the matched provider's full [`Advertisement`],
    /// whose contact and authorization ticket let the *origin* pool's
    /// customer claim the remote provider directly, with no state
    /// replicated between matchmakers — or no grant (healthy peer, no
    /// matching resource free right now).
    FlockOffer {
        /// The answering pool's matchmaker contact (`host:port`).
        pool: String,
        /// The matched provider's advertisement, if any.
        grant: Option<Advertisement>,
    },
    /// Ask a matchmaker's embedded view collector for retained time
    /// series (see `docs/protocol.md` §15). The constraint is an ordinary
    /// classad expression evaluated against each series' *metadata* ad
    /// (`Metric`, `Source`, `Tier`, ...), keeping the "stats are just
    /// ads" philosophy: history is browsed with the same language as the
    /// pool itself. A pre-view matchmaker answers [`Message::Error`]
    /// (`unknown tag 15`), which clients surface as a remote error — no
    /// framing desync on either side.
    HistoryQuery {
        /// Constraint expression source selecting series metadata ads.
        constraint: String,
        /// Cap on returned samples per series; `0` = the whole tier.
        limit: u32,
    },
    /// The view collector's answer to a [`Message::HistoryQuery`]: one
    /// classad per matching series, carrying the series metadata plus its
    /// samples rendered as attributes (see `docs/observability.md` §6).
    HistoryReply {
        /// The matching series ads.
        ads: Vec<ClassAd>,
    },
    /// Ask a matchmaker's embedded alarm monitor for its alert state (see
    /// `docs/protocol.md` §16). The constraint is an ordinary classad
    /// expression evaluated against each alert-state ad (`Rule`,
    /// `Severity`, `State`, ...), so alerts are browsed with the same
    /// language that raised them. A pre-alarm matchmaker answers
    /// [`Message::Error`] (`unknown tag 17`), which clients surface as a
    /// remote error — no framing desync on either side.
    AlertQuery {
        /// Constraint expression source selecting alert-state ads
        /// (`true` selects everything).
        constraint: String,
    },
    /// The alarm monitor's answer to a [`Message::AlertQuery`]: one
    /// classad per rule, carrying the rule's current state, hold/flap
    /// counters, and last raise attribution (see `docs/observability.md`
    /// §7).
    AlertReply {
        /// The matching alert-state ads.
        ads: Vec<ClassAd>,
    },
}

/// The wire tag assigned to each [`Message`] variant — the first byte of
/// every encoded frame. Collected here (rather than scattered through the
/// encoder) so the full tag space is auditable at a glance and tools can
/// name tags without re-deriving them.
///
/// Tag `0` is deliberately never assigned: a zero first byte is the most
/// common corruption pattern, and keeping it unknown means such frames
/// fail decoding immediately.
pub mod tag {
    /// Step 1: an entity advertises ([`super::Message::Advertise`]).
    pub const ADVERTISE: u8 = 1;
    /// Step 3: match notification ([`super::Message::Notify`]).
    pub const NOTIFY: u8 = 2;
    /// Step 4a: direct claim ([`super::Message::Claim`]).
    pub const CLAIM: u8 = 3;
    /// Step 4b: claim answer ([`super::Message::ClaimReply`]).
    pub const CLAIM_REPLY: u8 = 4;
    /// Claim release ([`super::Message::Release`]).
    pub const RELEASE: u8 = 5;
    /// Status-tool query ([`super::Message::Query`]).
    pub const QUERY: u8 = 6;
    /// Query answer ([`super::Message::QueryReply`]).
    pub const QUERY_REPLY: u8 = 7;
    /// Structured rejection ([`super::Message::Error`]).
    pub const ERROR: u8 = 8;
    /// Match-failure analysis request ([`super::Message::Analyze`]).
    pub const ANALYZE: u8 = 9;
    /// Analysis answer ([`super::Message::AnalyzeReply`]).
    pub const ANALYZE_REPLY: u8 = 10;
    /// HA leadership bid ([`super::Message::ElectionBid`]).
    pub const ELECTION_BID: u8 = 11;
    /// HA leadership lease ([`super::Message::LeaderLease`]).
    pub const LEADER_LEASE: u8 = 12;
    /// Cross-pool representative-ad forward ([`super::Message::FlockQuery`]).
    pub const FLOCK_QUERY: u8 = 13;
    /// Cross-pool delegation answer ([`super::Message::FlockOffer`]).
    pub const FLOCK_OFFER: u8 = 14;
    /// Time-series history request ([`super::Message::HistoryQuery`]).
    pub const HISTORY_QUERY: u8 = 15;
    /// Time-series history answer ([`super::Message::HistoryReply`]).
    pub const HISTORY_REPLY: u8 = 16;
    /// Alert-state request ([`super::Message::AlertQuery`]).
    pub const ALERT_QUERY: u8 = 17;
    /// Alert-state answer ([`super::Message::AlertReply`]).
    pub const ALERT_REPLY: u8 = 18;

    /// Every assigned tag, in order. Exhaustiveness tests iterate this so
    /// a new variant cannot land without joining the round-trip suite.
    pub const ALL: [u8; 18] = [
        ADVERTISE,
        NOTIFY,
        CLAIM,
        CLAIM_REPLY,
        RELEASE,
        QUERY,
        QUERY_REPLY,
        ERROR,
        ANALYZE,
        ANALYZE_REPLY,
        ELECTION_BID,
        LEADER_LEASE,
        FLOCK_QUERY,
        FLOCK_OFFER,
        HISTORY_QUERY,
        HISTORY_REPLY,
        ALERT_QUERY,
        ALERT_REPLY,
    ];
}

/// Whether a tag may carry the optional trace-context trailer (the five
/// match-lifecycle messages plus the two flock messages; see
/// `docs/protocol.md` §11 and §14). Queries and releases stay
/// trailer-free: they are not part of any match's causal chain. Flock
/// frames *do* carry it so a cross-pool match stitches into the same span
/// tree as a local one.
fn tag_carries_trace(t: u8) -> bool {
    matches!(
        t,
        tag::ADVERTISE
            | tag::NOTIFY
            | tag::CLAIM
            | tag::CLAIM_REPLY
            | tag::ERROR
            | tag::FLOCK_QUERY
            | tag::FLOCK_OFFER
    )
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_ad(buf: &mut BytesMut, ad: &ClassAd) {
    put_string(buf, &to_json(ad));
}

fn put_opt_ticket(buf: &mut BytesMut, t: &Option<Ticket>) {
    match t {
        Some(t) => {
            buf.put_u8(1);
            buf.put_u128(t.raw());
        }
        None => buf.put_u8(0),
    }
}

struct Reader {
    buf: Bytes,
}

impl Reader {
    fn need(&self, n: usize) -> Result<(), ProtocolError> {
        if self.buf.remaining() < n {
            Err(ProtocolError::BadFrame(format!(
                "needed {n} bytes, {} remaining",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    fn u128(&mut self) -> Result<u128, ProtocolError> {
        self.need(16)?;
        Ok(self.buf.get_u128())
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        self.need(4)?;
        let len = self.buf.get_u32() as usize;
        self.need(len)?;
        let bytes = self.buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec())
            .map_err(|e| ProtocolError::BadFrame(format!("invalid utf-8: {e}")))
    }

    fn ad(&mut self) -> Result<ClassAd, ProtocolError> {
        let js = self.string()?;
        from_json(&js).map_err(|e| ProtocolError::BadFrame(format!("bad ad json: {e}")))
    }

    fn opt_ticket(&mut self) -> Result<Option<Ticket>, ProtocolError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(Ticket::from_raw(self.u128()?))),
            other => Err(ProtocolError::BadFrame(format!("bad option tag {other}"))),
        }
    }
}

impl Message {
    /// Encode to a self-describing binary frame. The classads inside travel
    /// as JSON (see [`classad::json`]), everything else as fixed-width
    /// fields. Equivalent to [`Message::encode_traced`] with no context —
    /// the two produce byte-identical frames, which is what makes the
    /// trace trailer backward compatible: a peer that never minted a
    /// context emits exactly the pre-tracing wire format.
    pub fn encode(&self) -> Bytes {
        self.encode_traced(None)
    }

    /// Encode with an optional trace-context trailer. On the five
    /// match-lifecycle tags (`Advertise`, `Notify`, `Claim`, `ClaimReply`,
    /// `Error`) a context appends `marker(1) · trace_id(8) · parent_span_id(8)`
    /// after the message payload; `None` appends nothing. Other tags
    /// ignore the context entirely.
    pub fn encode_traced(&self, trace: Option<&TraceContext>) -> Bytes {
        let mut buf = BytesMut::with_capacity(256);
        match self {
            Message::Advertise(adv) => {
                buf.put_u8(tag::ADVERTISE);
                buf.put_u8(match adv.kind {
                    EntityKind::Provider => 0,
                    EntityKind::Customer => 1,
                });
                put_ad(&mut buf, &adv.ad);
                put_string(&mut buf, &adv.contact);
                put_opt_ticket(&mut buf, &adv.ticket);
                buf.put_u64(adv.expires_at);
            }
            Message::Notify(n) => {
                buf.put_u8(tag::NOTIFY);
                put_ad(&mut buf, &n.own_ad);
                put_ad(&mut buf, &n.peer_ad);
                put_string(&mut buf, &n.peer_contact);
                put_opt_ticket(&mut buf, &n.ticket);
            }
            Message::Claim(c) => {
                buf.put_u8(tag::CLAIM);
                buf.put_u128(c.ticket.raw());
                put_ad(&mut buf, &c.customer_ad);
                put_string(&mut buf, &c.customer_contact);
            }
            Message::ClaimReply(r) => {
                buf.put_u8(tag::CLAIM_REPLY);
                buf.put_u8(r.accepted as u8);
                buf.put_u8(match r.rejection {
                    None => 0,
                    Some(ClaimRejection::BadTicket) => 1,
                    Some(ClaimRejection::ConstraintFailed) => 2,
                    Some(ClaimRejection::CustomerConstraintFailed) => 3,
                    Some(ClaimRejection::Busy) => 4,
                });
                put_ad(&mut buf, &r.provider_ad);
            }
            Message::Release { ticket } => {
                buf.put_u8(tag::RELEASE);
                buf.put_u128(ticket.raw());
            }
            Message::Query {
                constraint,
                kind,
                projection,
            } => {
                buf.put_u8(tag::QUERY);
                buf.put_u8(match kind {
                    None => 0,
                    Some(EntityKind::Provider) => 1,
                    Some(EntityKind::Customer) => 2,
                });
                put_string(&mut buf, constraint);
                buf.put_u32(projection.len() as u32);
                for p in projection {
                    put_string(&mut buf, p);
                }
            }
            Message::QueryReply { ads } => {
                buf.put_u8(tag::QUERY_REPLY);
                buf.put_u32(ads.len() as u32);
                for ad in ads {
                    put_ad(&mut buf, ad);
                }
            }
            Message::Error { detail } => {
                buf.put_u8(tag::ERROR);
                put_string(&mut buf, detail);
            }
            Message::Analyze { name } => {
                buf.put_u8(tag::ANALYZE);
                put_string(&mut buf, name);
            }
            Message::AnalyzeReply { ad } => {
                buf.put_u8(tag::ANALYZE_REPLY);
                put_ad(&mut buf, ad);
            }
            Message::ElectionBid { epoch, candidate } => {
                buf.put_u8(tag::ELECTION_BID);
                buf.put_u64(*epoch);
                put_string(&mut buf, candidate);
            }
            Message::LeaderLease {
                epoch,
                leader,
                expires_at,
            } => {
                buf.put_u8(tag::LEADER_LEASE);
                buf.put_u64(*epoch);
                put_string(&mut buf, leader);
                buf.put_u64(*expires_at);
            }
            Message::FlockQuery {
                origin,
                members,
                rep,
            } => {
                buf.put_u8(tag::FLOCK_QUERY);
                put_string(&mut buf, origin);
                buf.put_u32(*members);
                put_ad(&mut buf, rep);
            }
            Message::FlockOffer { pool, grant } => {
                buf.put_u8(tag::FLOCK_OFFER);
                put_string(&mut buf, pool);
                match grant {
                    None => buf.put_u8(0),
                    Some(adv) => {
                        buf.put_u8(1);
                        buf.put_u8(match adv.kind {
                            EntityKind::Provider => 0,
                            EntityKind::Customer => 1,
                        });
                        put_ad(&mut buf, &adv.ad);
                        put_string(&mut buf, &adv.contact);
                        put_opt_ticket(&mut buf, &adv.ticket);
                        buf.put_u64(adv.expires_at);
                    }
                }
            }
            Message::HistoryQuery { constraint, limit } => {
                buf.put_u8(tag::HISTORY_QUERY);
                put_string(&mut buf, constraint);
                buf.put_u32(*limit);
            }
            Message::HistoryReply { ads } => {
                buf.put_u8(tag::HISTORY_REPLY);
                buf.put_u32(ads.len() as u32);
                for ad in ads {
                    put_ad(&mut buf, ad);
                }
            }
            Message::AlertQuery { constraint } => {
                buf.put_u8(tag::ALERT_QUERY);
                put_string(&mut buf, constraint);
            }
            Message::AlertReply { ads } => {
                buf.put_u8(tag::ALERT_REPLY);
                buf.put_u32(ads.len() as u32);
                for ad in ads {
                    put_ad(&mut buf, ad);
                }
            }
        }
        if let Some(ctx) = trace {
            if tag_carries_trace(buf[0]) {
                buf.put_u8(1);
                buf.put_u64(ctx.trace_id);
                buf.put_u64(ctx.parent_span_id);
            }
        }
        buf.freeze()
    }

    /// Decode a frame produced by [`Message::encode`]. Equivalent to
    /// [`Message::decode_traced`] with the context discarded.
    pub fn decode(bytes: Bytes) -> Result<Message, ProtocolError> {
        Self::decode_traced(bytes).map(|(msg, _)| msg)
    }

    /// Decode a frame plus its optional trace-context trailer. Frames from
    /// pre-tracing peers (no trailer) decode with `None`; an explicit
    /// zero marker also decodes with `None`.
    pub fn decode_traced(bytes: Bytes) -> Result<(Message, Option<TraceContext>), ProtocolError> {
        let mut r = Reader { buf: bytes };
        let tag = r.u8()?;
        let msg = match tag {
            tag::ADVERTISE => {
                let kind = match r.u8()? {
                    0 => EntityKind::Provider,
                    1 => EntityKind::Customer,
                    k => return Err(ProtocolError::BadFrame(format!("bad entity kind {k}"))),
                };
                Message::Advertise(Advertisement {
                    kind,
                    ad: r.ad()?,
                    contact: r.string()?,
                    ticket: r.opt_ticket()?,
                    expires_at: r.u64()?,
                })
            }
            tag::NOTIFY => Message::Notify(MatchNotification {
                own_ad: r.ad()?,
                peer_ad: r.ad()?,
                peer_contact: r.string()?,
                ticket: r.opt_ticket()?,
            }),
            tag::CLAIM => Message::Claim(ClaimRequest {
                ticket: Ticket::from_raw(r.u128()?),
                customer_ad: r.ad()?,
                customer_contact: r.string()?,
            }),
            tag::CLAIM_REPLY => {
                let accepted = r.u8()? != 0;
                let rejection = match r.u8()? {
                    0 => None,
                    1 => Some(ClaimRejection::BadTicket),
                    2 => Some(ClaimRejection::ConstraintFailed),
                    3 => Some(ClaimRejection::CustomerConstraintFailed),
                    4 => Some(ClaimRejection::Busy),
                    k => return Err(ProtocolError::BadFrame(format!("bad rejection {k}"))),
                };
                Message::ClaimReply(ClaimResponse {
                    accepted,
                    rejection,
                    provider_ad: r.ad()?,
                })
            }
            tag::RELEASE => Message::Release {
                ticket: Ticket::from_raw(r.u128()?),
            },
            tag::QUERY => {
                let kind = match r.u8()? {
                    0 => None,
                    1 => Some(EntityKind::Provider),
                    2 => Some(EntityKind::Customer),
                    k => return Err(ProtocolError::BadFrame(format!("bad query kind {k}"))),
                };
                let constraint = r.string()?;
                let n = r.u32()? as usize;
                if n > 1024 {
                    return Err(ProtocolError::BadFrame(format!("projection of {n} attrs")));
                }
                let mut projection = Vec::with_capacity(n);
                for _ in 0..n {
                    projection.push(r.string()?);
                }
                Message::Query {
                    constraint,
                    kind,
                    projection,
                }
            }
            tag::QUERY_REPLY => {
                let n = r.u32()? as usize;
                if n > 1_000_000 {
                    return Err(ProtocolError::BadFrame(format!("reply of {n} ads")));
                }
                let mut ads = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    ads.push(r.ad()?);
                }
                Message::QueryReply { ads }
            }
            tag::ERROR => Message::Error {
                detail: r.string()?,
            },
            tag::ANALYZE => Message::Analyze { name: r.string()? },
            tag::ANALYZE_REPLY => Message::AnalyzeReply { ad: r.ad()? },
            tag::ELECTION_BID => Message::ElectionBid {
                epoch: r.u64()?,
                candidate: r.string()?,
            },
            tag::LEADER_LEASE => Message::LeaderLease {
                epoch: r.u64()?,
                leader: r.string()?,
                expires_at: r.u64()?,
            },
            tag::FLOCK_QUERY => Message::FlockQuery {
                origin: r.string()?,
                members: r.u32()?,
                rep: r.ad()?,
            },
            tag::FLOCK_OFFER => {
                let pool = r.string()?;
                let grant = match r.u8()? {
                    0 => None,
                    1 => {
                        let kind = match r.u8()? {
                            0 => EntityKind::Provider,
                            1 => EntityKind::Customer,
                            k => {
                                return Err(ProtocolError::BadFrame(format!("bad entity kind {k}")))
                            }
                        };
                        Some(Advertisement {
                            kind,
                            ad: r.ad()?,
                            contact: r.string()?,
                            ticket: r.opt_ticket()?,
                            expires_at: r.u64()?,
                        })
                    }
                    k => return Err(ProtocolError::BadFrame(format!("bad grant flag {k}"))),
                };
                Message::FlockOffer { pool, grant }
            }
            tag::HISTORY_QUERY => Message::HistoryQuery {
                constraint: r.string()?,
                limit: r.u32()?,
            },
            tag::HISTORY_REPLY => {
                let n = r.u32()? as usize;
                if n > 1_000_000 {
                    return Err(ProtocolError::BadFrame(format!("reply of {n} series")));
                }
                let mut ads = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    ads.push(r.ad()?);
                }
                Message::HistoryReply { ads }
            }
            tag::ALERT_QUERY => Message::AlertQuery {
                constraint: r.string()?,
            },
            tag::ALERT_REPLY => {
                let n = r.u32()? as usize;
                if n > 1_000_000 {
                    return Err(ProtocolError::BadFrame(format!("reply of {n} alerts")));
                }
                let mut ads = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    ads.push(r.ad()?);
                }
                Message::AlertReply { ads }
            }
            other => return Err(ProtocolError::BadFrame(format!("unknown tag {other}"))),
        };
        let trace = if tag_carries_trace(tag) && r.buf.has_remaining() {
            match r.u8()? {
                0 => None,
                1 => {
                    let trace_id = r.u64()?;
                    let parent_span_id = r.u64()?;
                    Some(TraceContext {
                        trace_id,
                        parent_span_id,
                    })
                }
                other => return Err(ProtocolError::BadFrame(format!("bad trace marker {other}"))),
            }
        } else {
            None
        };
        if r.buf.has_remaining() {
            return Err(ProtocolError::BadFrame(format!(
                "{} trailing bytes",
                r.buf.remaining()
            )));
        }
        Ok((msg, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn sample_ad() -> ClassAd {
        parse_classad(
            r#"[ Name = "leonardo"; Type = "Machine"; Memory = 64;
                Constraint = other.Type == "Job"; Rank = 0 ]"#,
        )
        .unwrap()
    }

    fn sample_adv() -> Advertisement {
        Advertisement {
            kind: EntityKind::Provider,
            ad: sample_ad(),
            contact: "leonardo.cs.wisc.edu:9614".into(),
            ticket: Some(Ticket::from_raw(0xDEAD_BEEF)),
            expires_at: 1000,
        }
    }

    #[test]
    fn validation_accepts_conforming_ad() {
        let proto = AdvertisingProtocol::default();
        assert_eq!(proto.validate(&sample_adv(), 10), Ok(()));
    }

    #[test]
    fn validation_requires_name() {
        let proto = AdvertisingProtocol::default();
        let mut adv = sample_adv();
        adv.ad.remove("Name");
        assert_eq!(
            proto.validate(&adv, 10),
            Err(ProtocolError::MissingAttribute("Name".into()))
        );
    }

    #[test]
    fn validation_requires_constraint_by_either_spelling() {
        let proto = AdvertisingProtocol::default();
        let mut adv = sample_adv();
        adv.ad.remove("Constraint");
        assert!(matches!(
            proto.validate(&adv, 10),
            Err(ProtocolError::MissingAttribute(_))
        ));
        adv.ad.set("Requirements", classad::Expr::bool(true));
        assert_eq!(proto.validate(&adv, 10), Ok(()));
    }

    #[test]
    fn validation_requires_contact_and_lease() {
        let proto = AdvertisingProtocol::default();
        let mut adv = sample_adv();
        adv.contact.clear();
        assert_eq!(proto.validate(&adv, 10), Err(ProtocolError::MissingContact));
        let mut adv = sample_adv();
        adv.expires_at = 10;
        assert_eq!(proto.validate(&adv, 10), Err(ProtocolError::AlreadyExpired));
    }

    #[test]
    fn advertise_roundtrips() {
        let msg = Message::Advertise(sample_adv());
        let bytes = msg.encode();
        assert_eq!(Message::decode(bytes).unwrap(), msg);
    }

    #[test]
    fn notify_roundtrips() {
        let msg = Message::Notify(MatchNotification {
            own_ad: sample_ad(),
            peer_ad: parse_classad("[ Name = \"job-1\"; Constraint = true ]").unwrap(),
            peer_contact: "ca.cs.wisc.edu:1234".into(),
            ticket: None,
        });
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn claim_and_reply_roundtrip() {
        let claim = Message::Claim(ClaimRequest {
            ticket: Ticket::from_raw(42),
            customer_ad: sample_ad(),
            customer_contact: "ca:1".into(),
        });
        assert_eq!(Message::decode(claim.encode()).unwrap(), claim);
        for rejection in [
            None,
            Some(ClaimRejection::BadTicket),
            Some(ClaimRejection::ConstraintFailed),
            Some(ClaimRejection::CustomerConstraintFailed),
            Some(ClaimRejection::Busy),
        ] {
            let reply = Message::ClaimReply(ClaimResponse {
                accepted: rejection.is_none(),
                rejection,
                provider_ad: sample_ad(),
            });
            assert_eq!(Message::decode(reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn release_roundtrips() {
        let msg = Message::Release {
            ticket: Ticket::from_raw(7),
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn query_and_reply_roundtrip() {
        let q = Message::Query {
            constraint: r#"other.Arch == "INTEL" && other.Memory >= 64"#.into(),
            kind: Some(EntityKind::Provider),
            projection: vec!["Name".into(), "Mips".into()],
        };
        assert_eq!(Message::decode(q.encode()).unwrap(), q);
        let q = Message::Query {
            constraint: "true".into(),
            kind: None,
            projection: vec![],
        };
        assert_eq!(Message::decode(q.encode()).unwrap(), q);
        let reply = Message::QueryReply {
            ads: vec![sample_ad(), parse_classad("[ x = 1 ]").unwrap()],
        };
        assert_eq!(Message::decode(reply.encode()).unwrap(), reply);
        let empty = Message::QueryReply { ads: vec![] };
        assert_eq!(Message::decode(empty.encode()).unwrap(), empty);
    }

    #[test]
    fn error_roundtrips() {
        let msg = Message::Error {
            detail: "malformed frame: unknown tag 99".into(),
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
        let empty = Message::Error {
            detail: String::new(),
        };
        assert_eq!(Message::decode(empty.encode()).unwrap(), empty);
    }

    #[test]
    fn analyze_and_reply_roundtrip() {
        let msg = Message::Analyze {
            name: "job-17".into(),
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
        let reply = Message::AnalyzeReply {
            ad: parse_classad(r#"[ MyType = "MatchAnalysis"; Name = "job-17"; Found = false ]"#)
                .unwrap(),
        };
        assert_eq!(Message::decode(reply.encode()).unwrap(), reply);
    }

    #[test]
    fn analyze_tags_never_carry_trace_trailers() {
        // Analysis queries are not part of any match's causal chain, so —
        // like Query/Release — their frames stay trailer-free even when
        // the encoder holds a context.
        let ctx = TraceContext {
            trace_id: 1,
            parent_span_id: 2,
        };
        let msg = Message::Analyze { name: "j".into() };
        assert_eq!(msg.encode(), msg.encode_traced(Some(&ctx)));
        let reply = Message::AnalyzeReply {
            ad: parse_classad("[ Found = false ]").unwrap(),
        };
        assert_eq!(reply.encode(), reply.encode_traced(Some(&ctx)));
        // Trailing bytes after an analyze frame are rejected, not
        // misparsed as a trailer.
        let mut bytes = msg.encode().to_vec();
        bytes.push(1);
        assert!(Message::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn election_messages_roundtrip() {
        let bid = Message::ElectionBid {
            epoch: 7,
            candidate: "127.0.0.1:9614".into(),
        };
        assert_eq!(Message::decode(bid.encode()).unwrap(), bid);
        let lease = Message::LeaderLease {
            epoch: 7,
            leader: "127.0.0.1:9614".into(),
            expires_at: 1_700_000_000,
        };
        assert_eq!(Message::decode(lease.encode()).unwrap(), lease);
    }

    #[test]
    fn election_tags_never_carry_trace_trailers() {
        // Elections are pool-control traffic, not part of any match's
        // causal chain — like Query/Release they stay trailer-free.
        let ctx = TraceContext {
            trace_id: 1,
            parent_span_id: 2,
        };
        let bid = Message::ElectionBid {
            epoch: 1,
            candidate: "mm:1".into(),
        };
        assert_eq!(bid.encode(), bid.encode_traced(Some(&ctx)));
        let lease = Message::LeaderLease {
            epoch: 1,
            leader: "mm:1".into(),
            expires_at: 99,
        };
        assert_eq!(lease.encode(), lease.encode_traced(Some(&ctx)));
        // Trailing bytes after an election frame are rejected, not
        // misparsed as a trailer.
        let mut bytes = bid.encode().to_vec();
        bytes.push(1);
        assert!(Message::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn pre_ha_peers_reject_election_tags_cleanly() {
        // An old decoder sees tags 11/12 as unknown and raises BadFrame
        // (its daemon replies with a structured Error), which bidders
        // interpret as a concession from a pre-HA peer.
        let bid = Message::ElectionBid {
            epoch: 1,
            candidate: "mm:1".into(),
        };
        assert_eq!(bid.encode()[0], tag::ELECTION_BID);
        let lease = Message::LeaderLease {
            epoch: 1,
            leader: "mm:1".into(),
            expires_at: 99,
        };
        assert_eq!(lease.encode()[0], tag::LEADER_LEASE);
    }

    fn sample_message_for(t: u8) -> Message {
        match t {
            tag::ADVERTISE => Message::Advertise(sample_adv()),
            tag::NOTIFY => Message::Notify(MatchNotification {
                own_ad: sample_ad(),
                peer_ad: sample_ad(),
                peer_contact: "ca:1".into(),
                ticket: Some(Ticket::from_raw(3)),
            }),
            tag::CLAIM => Message::Claim(ClaimRequest {
                ticket: Ticket::from_raw(42),
                customer_ad: sample_ad(),
                customer_contact: "ca:1".into(),
            }),
            tag::CLAIM_REPLY => Message::ClaimReply(ClaimResponse {
                accepted: false,
                rejection: Some(ClaimRejection::Busy),
                provider_ad: sample_ad(),
            }),
            tag::RELEASE => Message::Release {
                ticket: Ticket::from_raw(7),
            },
            tag::QUERY => Message::Query {
                constraint: "other.Mips > 10".into(),
                kind: Some(EntityKind::Customer),
                projection: vec!["Name".into()],
            },
            tag::QUERY_REPLY => Message::QueryReply {
                ads: vec![sample_ad()],
            },
            tag::ERROR => Message::Error {
                detail: "nope".into(),
            },
            tag::ANALYZE => Message::Analyze {
                name: "job-17".into(),
            },
            tag::ANALYZE_REPLY => Message::AnalyzeReply { ad: sample_ad() },
            tag::ELECTION_BID => Message::ElectionBid {
                epoch: 9,
                candidate: "mm:1".into(),
            },
            tag::LEADER_LEASE => Message::LeaderLease {
                epoch: 9,
                leader: "mm:1".into(),
                expires_at: 1_700_000_000,
            },
            tag::FLOCK_QUERY => Message::FlockQuery {
                origin: "127.0.0.1:9614".into(),
                members: 12,
                rep: sample_ad(),
            },
            tag::FLOCK_OFFER => Message::FlockOffer {
                pool: "127.0.0.1:9615".into(),
                grant: Some(sample_adv()),
            },
            tag::HISTORY_QUERY => Message::HistoryQuery {
                constraint: r#"other.Metric == "Utilization""#.into(),
                limit: 360,
            },
            tag::HISTORY_REPLY => Message::HistoryReply {
                ads: vec![sample_ad()],
            },
            tag::ALERT_QUERY => Message::AlertQuery {
                constraint: r#"other.Severity == "critical""#.into(),
            },
            tag::ALERT_REPLY => Message::AlertReply {
                ads: vec![sample_ad()],
            },
            other => panic!("no sample message for tag {other}"),
        }
    }

    #[test]
    fn every_assigned_tag_round_trips_through_encode_decode() {
        // Exhaustive over the tag space: a new Message variant cannot ship
        // without registering in tag::ALL and round-tripping here.
        for (i, &t) in tag::ALL.iter().enumerate() {
            assert_eq!(t, i as u8 + 1, "tags are dense starting at 1");
            let msg = sample_message_for(t);
            let bytes = msg.encode();
            assert_eq!(bytes[0], t, "first frame byte is the tag");
            assert_eq!(Message::decode(bytes).unwrap(), msg);
        }
        // Tag 0 stays unassigned: a zeroed frame must fail, not parse.
        assert!(Message::decode(Bytes::from_static(&[0])).is_err());
        let next_free = *tag::ALL.iter().max().unwrap() + 1;
        assert!(Message::decode(Bytes::from(vec![next_free])).is_err());
    }

    #[test]
    fn flock_messages_roundtrip() {
        let query = Message::FlockQuery {
            origin: "127.0.0.1:9614".into(),
            members: 3,
            rep: parse_classad(
                r#"[ Name = "job-1"; Type = "Job"; FlockHops = 2;
                     FlockVisited = "127.0.0.1:9614";
                     Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
            )
            .unwrap(),
        };
        assert_eq!(Message::decode(query.encode()).unwrap(), query);
        // A grant carries the provider's full advertisement — contact and
        // delegation ticket included — so the origin pool's customer can
        // claim directly.
        let offer = Message::FlockOffer {
            pool: "127.0.0.1:9615".into(),
            grant: Some(sample_adv()),
        };
        assert_eq!(Message::decode(offer.encode()).unwrap(), offer);
        // And a healthy "no resource free" answer is an empty grant.
        let dry = Message::FlockOffer {
            pool: "127.0.0.1:9615".into(),
            grant: None,
        };
        assert_eq!(Message::decode(dry.encode()).unwrap(), dry);
    }

    #[test]
    fn flock_tags_carry_trace_trailers() {
        // Cross-pool matches must stitch into one span tree, so flock
        // frames carry the same optional trailer as the lifecycle tags.
        let ctx = TraceContext {
            trace_id: 0xFACE,
            parent_span_id: 0xB00C,
        };
        for t in [tag::FLOCK_QUERY, tag::FLOCK_OFFER] {
            let msg = sample_message_for(t);
            let (back, trace) = Message::decode_traced(msg.encode_traced(Some(&ctx))).unwrap();
            assert_eq!(back, msg);
            assert_eq!(trace, Some(ctx));
            // Traceless flock frames stay trailer-free and decode with None.
            let (_, none) = Message::decode_traced(msg.encode()).unwrap();
            assert_eq!(none, None);
        }
    }

    #[test]
    fn pre_flock_peers_reject_the_tags_cleanly() {
        // An old decoder sees tags 13/14 as unknown and raises BadFrame;
        // its daemon replies with a structured Error (`unknown tag 13`),
        // which the flock manager reads as "peer does not flock".
        let query = sample_message_for(tag::FLOCK_QUERY);
        assert_eq!(query.encode()[0], tag::FLOCK_QUERY);
        let err = match Message::decode(Bytes::from_static(&[29])) {
            Err(ProtocolError::BadFrame(m)) => m,
            other => panic!("expected BadFrame, got {other:?}"),
        };
        assert!(err.contains("unknown tag 29"), "{err}");
    }

    #[test]
    fn history_messages_roundtrip() {
        let q = Message::HistoryQuery {
            constraint: r#"other.Metric == "Utilization" && other.Tier == 0"#.into(),
            limit: 0,
        };
        assert_eq!(Message::decode(q.encode()).unwrap(), q);
        let reply = Message::HistoryReply {
            ads: vec![
                parse_classad(r#"[ MyType = "HistorySeries"; Metric = "Utilization" ]"#).unwrap(),
                sample_ad(),
            ],
        };
        assert_eq!(Message::decode(reply.encode()).unwrap(), reply);
        let dry = Message::HistoryReply { ads: vec![] };
        assert_eq!(Message::decode(dry.encode()).unwrap(), dry);
    }

    #[test]
    fn history_tags_never_carry_trace_trailers() {
        // History queries browse retained telemetry; like Query/Analyze
        // they are not part of any match's causal chain and stay
        // trailer-free even when the encoder holds a context.
        let ctx = TraceContext {
            trace_id: 1,
            parent_span_id: 2,
        };
        let q = Message::HistoryQuery {
            constraint: "true".into(),
            limit: 0,
        };
        assert_eq!(q.encode(), q.encode_traced(Some(&ctx)));
        let reply = Message::HistoryReply { ads: vec![] };
        assert_eq!(reply.encode(), reply.encode_traced(Some(&ctx)));
        // Trailing bytes after a history frame are rejected, not
        // misparsed as a trailer.
        let mut bytes = q.encode().to_vec();
        bytes.push(1);
        assert!(Message::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn pre_view_peers_reject_the_history_tags_cleanly() {
        // An old decoder sees tags 15/16 as unknown and raises BadFrame;
        // its daemon replies with a structured Error (`unknown tag 15`),
        // which history clients surface as a remote error.
        let q = sample_message_for(tag::HISTORY_QUERY);
        assert_eq!(q.encode()[0], tag::HISTORY_QUERY);
        let reply = sample_message_for(tag::HISTORY_REPLY);
        assert_eq!(reply.encode()[0], tag::HISTORY_REPLY);
    }

    #[test]
    fn alert_messages_roundtrip() {
        let q = Message::AlertQuery {
            constraint: r#"other.State == "firing" && other.Severity == "critical""#.into(),
        };
        assert_eq!(Message::decode(q.encode()).unwrap(), q);
        let reply = Message::AlertReply {
            ads: vec![
                parse_classad(r#"[ MyType = "AlertState"; Rule = "MatchmakerDown" ]"#).unwrap(),
                sample_ad(),
            ],
        };
        assert_eq!(Message::decode(reply.encode()).unwrap(), reply);
        let quiet = Message::AlertReply { ads: vec![] };
        assert_eq!(Message::decode(quiet.encode()).unwrap(), quiet);
    }

    #[test]
    fn alert_tags_never_carry_trace_trailers() {
        // Alert queries browse monitor state; like Query/History they are
        // not part of any match's causal chain and stay trailer-free even
        // when the encoder holds a context.
        let ctx = TraceContext {
            trace_id: 1,
            parent_span_id: 2,
        };
        let q = Message::AlertQuery {
            constraint: "true".into(),
        };
        assert_eq!(q.encode(), q.encode_traced(Some(&ctx)));
        let reply = Message::AlertReply { ads: vec![] };
        assert_eq!(reply.encode(), reply.encode_traced(Some(&ctx)));
        // Trailing bytes after an alert frame are rejected, not misparsed
        // as a trailer.
        let mut bytes = q.encode().to_vec();
        bytes.push(1);
        assert!(Message::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn pre_alarm_peers_reject_the_alert_tags_cleanly() {
        // An old decoder sees tags 17/18 as unknown and raises BadFrame;
        // its daemon replies with a structured Error (`unknown tag 17`),
        // which alert clients surface as a remote error.
        let q = sample_message_for(tag::ALERT_QUERY);
        assert_eq!(q.encode()[0], tag::ALERT_QUERY);
        let reply = sample_message_for(tag::ALERT_REPLY);
        assert_eq!(reply.encode()[0], tag::ALERT_REPLY);
    }

    #[test]
    fn pre_analyze_peers_reject_the_tag_cleanly() {
        // What an old decoder does with an Analyze frame: the tag is
        // unknown, so it raises BadFrame (and a daemon turns that into a
        // structured Error reply) instead of desyncing.
        let bytes = Message::Analyze { name: "j".into() }.encode();
        assert_eq!(bytes[0], tag::ANALYZE);
        let err = match Message::decode(Bytes::from_static(&[tag::ANALYZE_REPLY + 90])) {
            Err(ProtocolError::BadFrame(m)) => m,
            other => panic!("expected BadFrame, got {other:?}"),
        };
        assert!(err.contains("unknown tag 100"), "{err}");
    }

    #[test]
    fn socket_contact_enforced_when_required() {
        let proto = AdvertisingProtocol {
            require_socket_contact: true,
            ..Default::default()
        };
        let mut adv = sample_adv();
        adv.contact = "127.0.0.1:9614".into();
        assert_eq!(proto.validate(&adv, 10), Ok(()));
        adv.contact = "leonardo".into(); // no port
        assert_eq!(
            proto.validate(&adv, 10),
            Err(ProtocolError::BadContact("leonardo".into()))
        );
        // The default protocol keeps accepting symbolic contacts.
        let lax = AdvertisingProtocol::default();
        assert_eq!(lax.validate(&adv, 10), Ok(()));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(Bytes::from_static(&[])).is_err());
        assert!(Message::decode(Bytes::from_static(&[99])).is_err());
        assert!(Message::decode(Bytes::from_static(&[tag::RELEASE, 1, 2])).is_err());
        // Trailing bytes after a valid message.
        let mut good = Message::Release {
            ticket: Ticket::from_raw(7),
        }
        .encode()
        .to_vec();
        good.push(0);
        assert!(Message::decode(Bytes::from(good)).is_err());
    }

    #[test]
    fn trace_trailer_roundtrips_on_lifecycle_tags() {
        let ctx = TraceContext {
            trace_id: 0x1122_3344_5566_7788,
            parent_span_id: 0x99AA_BBCC_DDEE_FF00,
        };
        let messages = vec![
            Message::Advertise(sample_adv()),
            Message::Notify(MatchNotification {
                own_ad: sample_ad(),
                peer_ad: sample_ad(),
                peer_contact: "ca:1".into(),
                ticket: None,
            }),
            Message::Claim(ClaimRequest {
                ticket: Ticket::from_raw(42),
                customer_ad: sample_ad(),
                customer_contact: "ca:1".into(),
            }),
            Message::ClaimReply(ClaimResponse {
                accepted: true,
                rejection: None,
                provider_ad: sample_ad(),
            }),
            Message::Error {
                detail: "no".into(),
            },
        ];
        for msg in messages {
            let bytes = msg.encode_traced(Some(&ctx));
            let (back, trace) = Message::decode_traced(bytes).unwrap();
            assert_eq!(back, msg);
            assert_eq!(trace, Some(ctx));
        }
    }

    #[test]
    fn traceless_frames_are_byte_identical_to_the_old_format() {
        // Backward compatibility hinges on this: an encoder with no
        // context emits exactly what a pre-tracing peer would.
        let msg = Message::Advertise(sample_adv());
        assert_eq!(msg.encode(), msg.encode_traced(None));
        // And a trailer-free frame decodes with no context.
        let (back, trace) = Message::decode_traced(msg.encode()).unwrap();
        assert_eq!(back, msg);
        assert_eq!(trace, None);
    }

    #[test]
    fn explicit_zero_marker_means_no_trace() {
        let mut bytes = Message::Error { detail: "x".into() }.encode().to_vec();
        bytes.push(0);
        let (_, trace) = Message::decode_traced(Bytes::from(bytes)).unwrap();
        assert_eq!(trace, None);
    }

    #[test]
    fn trace_trailer_is_ignored_on_non_lifecycle_tags() {
        let ctx = TraceContext {
            trace_id: 1,
            parent_span_id: 2,
        };
        let q = Message::Query {
            constraint: "true".into(),
            kind: None,
            projection: vec![],
        };
        assert_eq!(q.encode(), q.encode_traced(Some(&ctx)));
        let rel = Message::Release {
            ticket: Ticket::from_raw(7),
        };
        assert_eq!(rel.encode(), rel.encode_traced(Some(&ctx)));
    }

    #[test]
    fn truncated_or_bad_trace_trailer_is_rejected() {
        let base = Message::Error { detail: "x".into() }.encode().to_vec();
        // Marker says "context follows" but the ids are missing.
        let mut truncated = base.clone();
        truncated.push(1);
        truncated.extend_from_slice(&[0; 4]);
        assert!(Message::decode(Bytes::from(truncated)).is_err());
        // Unknown marker value.
        let mut bad_marker = base.clone();
        bad_marker.push(9);
        assert!(Message::decode(Bytes::from(bad_marker)).is_err());
        // Full trailer plus junk after it.
        let mut overlong = base;
        overlong.push(1);
        overlong.extend_from_slice(&[0; 16]);
        overlong.push(7);
        assert!(Message::decode(Bytes::from(overlong)).is_err());
    }

    #[test]
    fn computed_expressions_survive_framing() {
        // Constraint/Rank are computed expressions; framing must not
        // flatten them to values.
        let msg = Message::Advertise(sample_adv());
        let Message::Advertise(back) = Message::decode(msg.encode()).unwrap() else {
            panic!()
        };
        let c = back.ad.get("Constraint").unwrap();
        assert_eq!(c.to_string(), "other.Type == \"Job\"");
    }

    #[test]
    fn error_display() {
        assert!(ProtocolError::MissingAttribute("X".into())
            .to_string()
            .contains('X'));
        assert!(ClaimRejection::BadTicket.to_string().contains("ticket"));
        assert_eq!(EntityKind::Provider.to_string(), "provider");
    }
}
