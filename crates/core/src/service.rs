//! The matchmaker as a shareable service.
//!
//! The paper's matchmaker is "a general service which does not depend on
//! the kinds of services and resources that are being matched" and holds
//! only soft state. This module packages the ad store, negotiator, and
//! advertising protocol behind a thread-safe facade so a server (or a
//! multi-threaded benchmark) can accept advertisements concurrently with
//! negotiation cycles and queries.
//!
//! Locking discipline: the ad store sits behind a `parking_lot::RwLock`
//! (advertisements are frequent and brief; negotiation snapshots under a
//! read lock); the negotiator — which carries the priority state — behind
//! a `Mutex` taken only for the duration of a cycle. Statistics are
//! relaxed atomics: they are monotone counters with no ordering
//! requirements.

use crate::admanager::{AdStore, StoreSnapshot, StoredAd};
use crate::matcher::{Candidate, MatchEngine};
use crate::negotiate::{
    ClusterRejections, CycleOutcome, Negotiator, NegotiatorConfig, RejectionTable,
};
use crate::protocol::{
    Advertisement, AdvertisingProtocol, EntityKind, Message, ProtocolError, Timestamp, TraceContext,
};
use crate::query::Query;
use classad::{traced_symmetric_match, ClassAd, RejectReason, RejectSide, Value};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone service counters (readable without locks).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Advertisements accepted.
    pub ads_accepted: AtomicU64,
    /// Advertisements rejected by the advertising protocol.
    pub ads_rejected: AtomicU64,
    /// Negotiation cycles run.
    pub cycles: AtomicU64,
    /// Matches produced over all cycles.
    pub matches: AtomicU64,
    /// Queries served.
    pub queries: AtomicU64,
    /// `Analyze` requests served.
    pub analyses: AtomicU64,
}

/// Snapshot of [`ServiceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Advertisements accepted.
    pub ads_accepted: u64,
    /// Advertisements rejected.
    pub ads_rejected: u64,
    /// Cycles run.
    pub cycles: u64,
    /// Matches produced.
    pub matches: u64,
    /// Queries served.
    pub queries: u64,
    /// `Analyze` requests served.
    pub analyses: u64,
}

/// A frame the matchmaker endpoint refused, carrying the encoded
/// [`Message::Error`] reply the server should send the peer before
/// closing the connection — so a request/reply peer learns *why* instead
/// of waiting forever on a stream whose decoder the error poisoned.
#[derive(Debug)]
pub struct FrameRejection {
    /// Why the frame was refused.
    pub error: ProtocolError,
    /// Encoded [`Message::Error`] frame to send before closing.
    pub reply: bytes::Bytes,
}

impl FrameRejection {
    /// Wrap a protocol error together with its wire-level error reply.
    pub fn new(error: ProtocolError) -> Self {
        let reply = Message::Error {
            detail: error.to_string(),
        }
        .encode();
        FrameRejection { error, reply }
    }
}

impl std::fmt::Display for FrameRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for FrameRejection {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The most recent cycle's per-cluster rejection tables, retained so
/// `Analyze` replies can name the cycle the journal's `CycleRejections`
/// event describes. Empty until a cycle runs with attribution on.
#[derive(Debug, Clone, Default)]
struct RetainedRejections {
    cycle: u64,
    rejections: Vec<ClusterRejections>,
}

/// A thread-safe matchmaking service.
#[derive(Debug)]
pub struct Matchmaker {
    store: RwLock<AdStore>,
    negotiator: Mutex<Negotiator>,
    protocol: AdvertisingProtocol,
    stats: ServiceStats,
    last_rejections: Mutex<RetainedRejections>,
}

impl Matchmaker {
    /// Create a service with the given negotiator configuration and the
    /// default advertising protocol.
    pub fn new(config: NegotiatorConfig) -> Self {
        Matchmaker::with_protocol(config, AdvertisingProtocol::default())
    }

    /// Create a service with an explicit advertising protocol (e.g. one
    /// that demands real `host:port` contact addresses for live pools).
    ///
    /// The ad store's provider shard layout follows
    /// [`NegotiatorConfig::shards`]: `0` (the default) auto-scales the
    /// shard count with the pool, any other value pins it.
    pub fn with_protocol(config: NegotiatorConfig, protocol: AdvertisingProtocol) -> Self {
        let store = if config.shards == 0 {
            AdStore::new()
        } else {
            AdStore::with_shards(config.shards)
        };
        Matchmaker {
            store: RwLock::new(store),
            negotiator: Mutex::new(Negotiator::new(config)),
            protocol,
            stats: ServiceStats::default(),
            last_rejections: Mutex::new(RetainedRejections::default()),
        }
    }

    /// The advertising protocol in force.
    pub fn protocol(&self) -> &AdvertisingProtocol {
        &self.protocol
    }

    /// Accept one advertisement.
    pub fn advertise(&self, adv: Advertisement, now: Timestamp) -> Result<String, ProtocolError> {
        self.advertise_traced(adv, now, None)
    }

    /// Accept one advertisement under an optional trace context; the
    /// context follows the stored ad into every match it produces (see
    /// [`crate::negotiate::MatchRecord::trace`]).
    pub fn advertise_traced(
        &self,
        adv: Advertisement,
        now: Timestamp,
        trace: Option<TraceContext>,
    ) -> Result<String, ProtocolError> {
        let result = self
            .store
            .write()
            .advertise_traced(adv, now, &self.protocol, trace);
        match &result {
            Ok(_) => self.stats.ads_accepted.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.stats.ads_rejected.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Accept a raw protocol frame. `Advertise` mutates the store (no
    /// response); `Query` returns a `QueryReply` frame. A malformed or
    /// out-of-protocol frame is rejected with a [`FrameRejection`] whose
    /// `reply` is an encoded [`Message::Error`]: the server sends it and
    /// then closes, instead of leaving the peer waiting on a poisoned
    /// decoder.
    pub fn handle_frame(
        &self,
        frame: bytes::Bytes,
        now: Timestamp,
    ) -> Result<Option<bytes::Bytes>, FrameRejection> {
        let msg = Message::decode(frame).map_err(FrameRejection::new)?;
        self.handle_message(msg, now).map_err(FrameRejection::new)
    }

    /// Accept one already-decoded protocol message (servers with their own
    /// stream decoder skip the redundant re-decode `handle_frame` would
    /// do). Anything but `Advertise` and `Query` is a protocol violation
    /// at this endpoint (notifications flow *from* the matchmaker, claims
    /// bypass it entirely).
    pub fn handle_message(
        &self,
        msg: Message,
        now: Timestamp,
    ) -> Result<Option<bytes::Bytes>, ProtocolError> {
        self.handle_message_traced(msg, now, None)
    }

    /// Like [`Matchmaker::handle_message`], threading the frame's
    /// optional trace context into the store on `Advertise`.
    pub fn handle_message_traced(
        &self,
        msg: Message,
        now: Timestamp,
        trace: Option<TraceContext>,
    ) -> Result<Option<bytes::Bytes>, ProtocolError> {
        match msg {
            Message::Advertise(adv) => {
                self.advertise_traced(adv, now, trace)?;
                Ok(None)
            }
            Message::Query {
                constraint,
                kind,
                projection,
            } => {
                let mut q = Query::from_constraint(&constraint)
                    .map_err(|e| ProtocolError::BadFrame(format!("bad query constraint: {e}")))?;
                q.kind = kind;
                if !projection.is_empty() {
                    q.projection = Some(projection);
                }
                let ads = self.query(&q, now);
                Ok(Some(Message::QueryReply { ads }.encode()))
            }
            Message::Analyze { name } => {
                let ad = self.analyze(&name, now);
                Ok(Some(Message::AnalyzeReply { ad }.encode()))
            }
            other => Err(ProtocolError::BadFrame(format!(
                "matchmaker endpoint only accepts advertisements, queries, and analyze \
                 requests, got {other:?}"
            ))),
        }
    }

    /// Insert a daemon self-ad (a `DaemonAd = true` telemetry ad, see
    /// `condor_obs::selfad`). It goes through the same admission checks as
    /// a real advertisement — so it is queryable like any other ad — but
    /// bypasses the `ads_accepted`/`ads_rejected` counters: the service
    /// statistics keep describing the pool's real requests and offers, and
    /// the daemon's own heartbeat does not inflate them.
    pub fn publish_self_ad(
        &self,
        adv: Advertisement,
        now: Timestamp,
    ) -> Result<String, ProtocolError> {
        self.store.write().advertise(adv, now, &self.protocol)
    }

    /// Withdraw an entity's ad.
    pub fn withdraw(&self, kind: EntityKind, name: &str) -> bool {
        self.store.write().withdraw(kind, name)
    }

    /// Number of stored ads.
    pub fn ad_count(&self) -> usize {
        self.store.read().len()
    }

    /// Checkpoint the ad store's full state — every ad, the shard layout,
    /// and the sequence counter (see [`AdStore::snapshot_state`]). Taken
    /// under the read lock, so ingest continues while HA checkpoints.
    pub fn snapshot_state(&self) -> StoreSnapshot {
        self.store.read().snapshot_state()
    }

    /// Replace the ad store with one rebuilt from a checkpoint (see
    /// [`AdStore::restore_state`]). Used by a newly inaugurated HA leader
    /// to resume from last-checkpoint-plus-tail before its first cycle;
    /// whatever the store held before is discarded.
    pub fn restore_state(&self, snap: &StoreSnapshot) {
        *self.store.write() = AdStore::restore_state(snap);
    }

    /// Run one negotiation cycle at `now`. Expired ads are swept first
    /// (their count lands in `stats.expired_ads`).
    pub fn negotiate(&self, now: Timestamp) -> CycleOutcome {
        let mut negotiator = self.negotiator.lock();
        // Sweep under the write lock, then release it: the cycle itself
        // snapshots the store under a read lock so advertisement ingest
        // continues during matching.
        let expired = self.store.write().expire(now);
        let mut outcome = {
            let store = self.store.read();
            negotiator.negotiate(&store, now)
        };
        outcome.stats.expired_ads = expired;
        // Matched ads leave the store until their owners re-advertise.
        {
            let mut store = self.store.write();
            for m in &outcome.matches {
                store.withdraw(EntityKind::Customer, &m.request_name);
                store.withdraw(EntityKind::Provider, &m.offer_name);
            }
        }
        self.stats.cycles.fetch_add(1, Ordering::Relaxed);
        self.stats
            .matches
            .fetch_add(outcome.stats.matches as u64, Ordering::Relaxed);
        *self.last_rejections.lock() = RetainedRejections {
            cycle: outcome.cycle,
            rejections: outcome.rejections.clone(),
        };
        outcome
    }

    /// Report actual usage for fair-share accounting.
    pub fn charge_usage(&self, user: &str, seconds: f64, now: Timestamp) {
        self.negotiator.lock().charge_usage(user, seconds, now);
    }

    /// Answer "why is this request not matching?" with a `MatchAnalysis`
    /// classad (the body of a [`Message::AnalyzeReply`]).
    ///
    /// The reply combines two views:
    ///
    /// * **a live traced scan** — the named request (if still stored) is
    ///   re-evaluated against every current offer with the tracing
    ///   evaluator, producing `RejectBreakdown` plus the dominant failing
    ///   clause/attribute (`TopReason`, `FailingSide`, `FailingClause`,
    ///   `FailingAttr`) and `MatchesNow`, the offers it *would* match;
    /// * **the last cycle's verdict** — when the negotiator ran with
    ///   attribution on, the retained per-cluster table covering this
    ///   request is echoed verbatim (`LastCycleRejections`,
    ///   `LastCycleCluster`, `Cycle`), byte-identical to the segment the
    ///   journal's `CycleRejections` event recorded for that cycle.
    ///
    /// `Found = false` means the request ad is not currently stored —
    /// either it was never advertised, its lease expired, or it matched
    /// and was withdrawn.
    pub fn analyze(&self, name: &str, now: Timestamp) -> ClassAd {
        self.stats.analyses.fetch_add(1, Ordering::Relaxed);
        // Same lock discipline as `query`: copy what we need out of the
        // negotiator, then scan the store without holding its lock.
        let (engine, preemption_on, margin) = {
            let negotiator = self.negotiator.lock();
            (
                MatchEngine {
                    policy: negotiator.engine.policy.clone(),
                    conventions: negotiator.engine.conventions.clone(),
                },
                negotiator.config.preemption,
                negotiator.config.preemption_rank_margin,
            )
        };
        let retained = self.last_rejections.lock().clone();

        let (request, offers): (Option<Arc<ClassAd>>, Vec<Arc<ClassAd>>) = {
            let store = self.store.read();
            let request = store.get(EntityKind::Customer, name).map(|s| s.ad.clone());
            let offers = store
                .snapshot(EntityKind::Provider, now)
                .into_iter()
                .filter(|o| !condor_obs::is_daemon_ad(&o.ad))
                .map(|o| o.ad)
                .collect();
            (request, offers)
        };

        let mut out = ClassAd::new();
        out.set_str("MyType", "MatchAnalysis");
        out.set_str("Name", name);
        out.set_bool("Found", request.is_some());
        out.set_int("PoolSize", offers.len() as i64);
        if retained.cycle > 0 {
            out.set_int("Cycle", retained.cycle as i64);
        }
        if let Some(cr) = retained
            .rejections
            .iter()
            .find(|c| c.requests.iter().any(|n| n == name))
        {
            out.set_int("LastCycleCluster", cr.cluster as i64);
            out.set_str("LastCycleRejections", &cr.encode());
        }
        let Some(request) = request else {
            return out;
        };

        let mut table = RejectionTable::default();
        let mut matches_now = 0i64;
        for (oi, offer) in offers.iter().enumerate() {
            match engine.score(&request, offer, oi) {
                None => {
                    let trace = traced_symmetric_match(
                        &request,
                        offer,
                        &engine.policy,
                        &engine.conventions,
                    );
                    table.add(trace.reason.unwrap_or(RejectReason::EvalError {
                        side: RejectSide::Request,
                    }));
                }
                Some(c) => {
                    let claimed = matches!(
                        offer.eval_attr("State", &engine.policy),
                        Value::Str(ref s) if s.as_ref() == "Claimed"
                    );
                    if claimed {
                        let current = offer
                            .eval_attr("CurrentRank", &engine.policy)
                            .as_f64()
                            .unwrap_or(0.0);
                        if preemption_on && c.offer_rank > current + margin {
                            matches_now += 1;
                        } else {
                            table.add(RejectReason::Busy);
                        }
                    } else {
                        matches_now += 1;
                    }
                }
            }
        }
        out.set_int("MatchesNow", matches_now);
        if let Some(expr) = engine
            .conventions
            .constraint_attr_of(&request)
            .and_then(|a| request.get(a))
        {
            out.set_str("RequestConstraint", &expr.to_string());
        }
        if !table.is_empty() {
            out.set_str("RejectBreakdown", &table.encode());
            if let Some((reason, _)) = table.ranked().first() {
                out.set_str("TopReason", &reason.label());
                out.set_str("TopReasonKind", reason.kind());
                match reason {
                    RejectReason::RequirementsFalse { side, clause } => {
                        out.set_str("FailingSide", side.label());
                        out.set_str("FailingClause", clause);
                    }
                    RejectReason::UndefinedAttr { side, attr } => {
                        out.set_str("FailingSide", side.label());
                        out.set_str("FailingAttr", attr);
                    }
                    RejectReason::EvalError { side } => {
                        out.set_str("FailingSide", side.label());
                    }
                    RejectReason::Busy | RejectReason::LostRank => {}
                }
            }
        }
        out
    }

    /// Serve a peer pool's `FlockQuery`: scan the live offers for the
    /// best free provider the forwarded representative mutually matches,
    /// withdraw it from the store, and return its full advertisement —
    /// contact and authorization ticket included — as the delegation
    /// grant. The origin pool relays the grant to its customer as an
    /// ordinary `Notify`, and the customer claims the provider directly;
    /// this matchmaker never hears about the claim.
    ///
    /// Two deliberate restrictions keep local autonomy intact:
    ///
    /// * claimed providers are never granted — flocked jobs do not
    ///   preempt this pool's own claimants, whatever the ranks say;
    /// * selection uses the same deterministic order as a local cycle
    ///   (request rank, then offer rank, then oldest ad), so a flocked
    ///   representative gets exactly what a local job with the same ad
    ///   would have gotten from the free pool.
    ///
    /// Withdrawing the granted ad is soft state, not a reservation: if
    /// the remote claim never arrives, the provider's next heartbeat
    /// re-advertises it and it rejoins local negotiation a cycle later.
    pub fn flock_match(&self, rep: &ClassAd, now: Timestamp) -> Option<Advertisement> {
        // Same lock discipline as `analyze`: copy the engine out of the
        // negotiator, snapshot the store, scan lock-free.
        let engine = self.match_engine();
        let offers: Vec<StoredAd> = {
            let store = self.store.read();
            store
                .snapshot(EntityKind::Provider, now)
                .into_iter()
                .filter(|o| !condor_obs::is_daemon_ad(&o.ad))
                .collect()
        };
        let mut best: Option<Candidate> = None;
        for (oi, offer) in offers.iter().enumerate() {
            let Some(c) = engine.score_keyed(rep, &offer.ad, oi, offer.seq) else {
                continue;
            };
            let claimed = matches!(
                offer.ad.eval_attr("State", &engine.policy),
                Value::Str(ref s) if s.as_ref() == "Claimed"
            );
            if claimed {
                continue;
            }
            match &best {
                Some(b) if !c.better_than(b) => {}
                _ => best = Some(c),
            }
        }
        let grant = &offers[best?.index];
        self.store
            .write()
            .withdraw(EntityKind::Provider, &grant.name);
        Some(Advertisement {
            kind: EntityKind::Provider,
            ad: (*grant.ad).clone(),
            contact: grant.contact.clone(),
            ticket: grant.ticket,
            expires_at: grant.expires_at,
        })
    }

    /// A point-in-time copy of the negotiator's match engine — its policy
    /// and evaluation conventions — for out-of-cycle scoring (analyze
    /// scans, flock grant ranking). Cheap: both members are clone-light.
    pub fn match_engine(&self) -> MatchEngine {
        let negotiator = self.negotiator.lock();
        MatchEngine {
            policy: negotiator.engine.policy.clone(),
            conventions: negotiator.engine.conventions.clone(),
        }
    }

    /// Serve a one-way query.
    pub fn query(&self, q: &Query, now: Timestamp) -> Vec<ClassAd> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let negotiator = self.negotiator.lock();
        let policy = negotiator.engine.policy.clone();
        let conv = negotiator.engine.conventions.clone();
        drop(negotiator);
        let store = self.store.read();
        q.run_projected(&store, now, &policy, &conv)
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            ads_accepted: self.stats.ads_accepted.load(Ordering::Relaxed),
            ads_rejected: self.stats.ads_rejected.load(Ordering::Relaxed),
            cycles: self.stats.cycles.load(Ordering::Relaxed),
            matches: self.stats.matches.load(Ordering::Relaxed),
            queries: self.stats.queries.load(Ordering::Relaxed),
            analyses: self.stats.analyses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn machine_adv(i: usize) -> Advertisement {
        Advertisement {
            kind: EntityKind::Provider,
            ad: parse_classad(&format!(
                r#"[ Name = "m{i}"; Type = "Machine"; Mips = {};
                     Constraint = other.Type == "Job"; Rank = 0 ]"#,
                50 + i
            ))
            .unwrap(),
            contact: format!("m{i}:1"),
            ticket: None,
            expires_at: 1_000_000,
        }
    }

    fn job_adv(i: usize) -> Advertisement {
        Advertisement {
            kind: EntityKind::Customer,
            ad: parse_classad(&format!(
                r#"[ Name = "j{i}"; Type = "Job"; Owner = "u{}";
                     Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
                i % 4
            ))
            .unwrap(),
            contact: "ca:1".into(),
            ticket: None,
            expires_at: 1_000_000,
        }
    }

    #[test]
    fn advertise_negotiate_and_stats() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        for i in 0..4 {
            svc.advertise(machine_adv(i), 0).unwrap();
        }
        for i in 0..2 {
            svc.advertise(job_adv(i), 0).unwrap();
        }
        assert_eq!(svc.ad_count(), 6);
        let outcome = svc.negotiate(0);
        assert_eq!(outcome.stats.matches, 2);
        // Matched ads were withdrawn.
        assert_eq!(svc.ad_count(), 2);
        let s = svc.stats();
        assert_eq!(s.ads_accepted, 6);
        assert_eq!(s.cycles, 1);
        assert_eq!(s.matches, 2);
    }

    #[test]
    fn self_ads_are_queryable_but_invisible_to_negotiation() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        for i in 0..2 {
            svc.advertise(machine_adv(i), 0).unwrap();
            svc.advertise(job_adv(i), 0).unwrap();
        }
        let reg = condor_obs::Registry::new();
        reg.counter(condor_obs::schema::CYCLES).add(7);
        let self_ad = condor_obs::self_ad(
            "mm@local:9618",
            condor_obs::schema::MATCHMAKER_STATS,
            5,
            &reg.snapshot(),
        );
        svc.publish_self_ad(
            Advertisement {
                kind: EntityKind::Provider,
                ad: self_ad,
                contact: "local:9618".into(),
                ticket: None,
                expires_at: 1_000_000,
            },
            0,
        )
        .unwrap();
        // Not counted as a real advertisement.
        assert_eq!(svc.stats().ads_accepted, 4);
        assert_eq!(svc.ad_count(), 5);
        // Queryable through the normal path.
        let q = Query::from_constraint(&condor_obs::self_ad_constraint(
            condor_obs::schema::MATCHMAKER_STATS,
        ))
        .unwrap();
        let hits = svc.query(&q, 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get_int("Cycles"), Some(7));
        // Invisible to the negotiator: both jobs match real machines, the
        // self-ad is neither counted nor matched nor withdrawn.
        let outcome = svc.negotiate(0);
        assert_eq!(outcome.stats.offers_considered, 2);
        assert_eq!(outcome.stats.matches, 2);
        assert_eq!(svc.ad_count(), 1, "only the self-ad remains");
    }

    #[test]
    fn rejected_ads_counted() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        let mut bad = machine_adv(0);
        bad.ad.remove("Name");
        assert!(svc.advertise(bad, 0).is_err());
        assert_eq!(svc.stats().ads_rejected, 1);
        assert_eq!(svc.ad_count(), 0);
    }

    #[test]
    fn frames_accepted_only_for_advertise_and_query() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        let adv = Message::Advertise(machine_adv(1));
        assert_eq!(svc.handle_frame(adv.encode(), 0).unwrap(), None);
        let release = Message::Release {
            ticket: crate::ticket::Ticket::from_raw(1),
        };
        assert!(svc.handle_frame(release.encode(), 0).is_err());
        assert!(svc
            .handle_frame(bytes::Bytes::from_static(&[9, 9]), 0)
            .is_err());
    }

    #[test]
    fn rejections_carry_an_error_reply_frame() {
        // A peer that sends garbage gets a decodable Message::Error back
        // (to be written before the connection closes), not silence.
        let svc = Matchmaker::new(NegotiatorConfig::default());
        let rej = svc
            .handle_frame(bytes::Bytes::from_static(&[9, 9]), 0)
            .unwrap_err();
        let Message::Error { detail } = Message::decode(rej.reply.clone()).unwrap() else {
            panic!("rejection reply must be a Message::Error")
        };
        assert_eq!(detail, rej.error.to_string());
        assert!(!detail.is_empty());
        // Out-of-protocol (but well-formed) messages reject the same way.
        let release = Message::Release {
            ticket: crate::ticket::Ticket::from_raw(1),
        };
        let rej = svc.handle_frame(release.encode(), 0).unwrap_err();
        assert!(matches!(
            Message::decode(rej.reply).unwrap(),
            Message::Error { .. }
        ));
    }

    #[test]
    fn query_frames_get_reply_frames() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        for i in 0..3 {
            svc.advertise(machine_adv(i), 0).unwrap();
        }
        let q = Message::Query {
            constraint: "other.Mips >= 51".into(),
            kind: Some(EntityKind::Provider),
            projection: vec!["Name".into(), "Mips".into()],
        };
        let reply = svc
            .handle_frame(q.encode(), 0)
            .unwrap()
            .expect("query gets a reply");
        let Message::QueryReply { ads } = Message::decode(reply).unwrap() else {
            panic!()
        };
        assert_eq!(ads.len(), 2);
        assert_eq!(ads[0].len(), 2, "projected to Name and Mips");
        // A malformed constraint is a protocol error, not a panic.
        let bad = Message::Query {
            constraint: "((".into(),
            kind: None,
            projection: vec![],
        };
        assert!(svc.handle_frame(bad.encode(), 0).is_err());
    }

    fn never_matching_job() -> Advertisement {
        Advertisement {
            kind: EntityKind::Customer,
            ad: parse_classad(
                r#"[ Name = "never"; Type = "Job"; Owner = "u0";
                     Constraint = other.Type == "Machine" && other.Mips >= 1000;
                     Rank = 0 ]"#,
            )
            .unwrap(),
            contact: "ca:1".into(),
            ticket: None,
            expires_at: 1_000_000,
        }
    }

    #[test]
    fn analyze_names_the_failing_clause() {
        let svc = Matchmaker::new(NegotiatorConfig {
            attribution: true,
            ..Default::default()
        });
        for i in 0..3 {
            svc.advertise(machine_adv(i), 0).unwrap();
        }
        svc.advertise(never_matching_job(), 0).unwrap();
        let out = svc.negotiate(0);
        assert_eq!(out.stats.matches, 0);
        assert_eq!(out.rejections.len(), 1);

        let reply = svc
            .handle_frame(
                Message::Analyze {
                    name: "never".into(),
                }
                .encode(),
                0,
            )
            .unwrap()
            .expect("analyze gets a reply");
        let Message::AnalyzeReply { ad } = Message::decode(reply).unwrap() else {
            panic!("expected AnalyzeReply")
        };
        assert_eq!(ad.get_string("MyType"), Some("MatchAnalysis"));
        assert_eq!(ad.get_string("Name"), Some("never"));
        assert_eq!(ad.get("Found").unwrap().to_string(), "true");
        assert_eq!(ad.get_int("PoolSize"), Some(3));
        assert_eq!(ad.get_int("MatchesNow"), Some(0));
        assert_eq!(ad.get_int("Cycle"), Some(1));
        assert_eq!(ad.get_string("TopReasonKind"), Some("RequirementsFalse"));
        assert_eq!(ad.get_string("FailingSide"), Some("request"));
        assert_eq!(ad.get_string("FailingClause"), Some("other.Mips >= 1000"));
        let breakdown = ad.get_string("RejectBreakdown").unwrap();
        assert!(
            breakdown.contains("ReqFalse(request): other.Mips >= 1000=3"),
            "{breakdown}"
        );
        // The retained cycle verdict matches what the cycle itself said.
        assert_eq!(
            ad.get_string("LastCycleRejections"),
            Some(out.rejections[0].encode().as_str())
        );
        assert_eq!(
            ad.get_int("LastCycleCluster"),
            Some(out.rejections[0].cluster as i64)
        );
        assert_eq!(svc.stats().analyses, 1);
    }

    #[test]
    fn analyze_unknown_request_reports_not_found() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        svc.advertise(machine_adv(0), 0).unwrap();
        let ad = svc.analyze("no-such-job", 0);
        assert_eq!(ad.get("Found").unwrap().to_string(), "false");
        assert_eq!(ad.get_int("PoolSize"), Some(1));
        assert!(ad.get_string("RejectBreakdown").is_none());
    }

    #[test]
    fn analyze_counts_busy_offers() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        svc.advertise(
            Advertisement {
                kind: EntityKind::Provider,
                ad: parse_classad(
                    r#"[ Name = "busy"; Type = "Machine"; Mips = 2000;
                         State = "Claimed"; RemoteOwner = "other";
                         CurrentRank = 99;
                         Constraint = other.Type == "Job"; Rank = 0 ]"#,
                )
                .unwrap(),
                contact: "busy:1".into(),
                ticket: None,
                expires_at: 1_000_000,
            },
            0,
        )
        .unwrap();
        svc.advertise(never_matching_job(), 0).unwrap();
        // No cycle has run: the live scan alone classifies the pairing.
        let ad = svc.analyze("never", 0);
        assert_eq!(ad.get_string("TopReasonKind"), Some("Busy"));
        assert_eq!(ad.get_int("MatchesNow"), Some(0));
        assert!(ad.get_int("Cycle").is_none(), "no cycle retained yet");
    }

    #[test]
    fn queries_run_against_live_store() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        for i in 0..3 {
            svc.advertise(machine_adv(i), 0).unwrap();
        }
        let q = Query::from_constraint("other.Mips >= 51").unwrap();
        let results = svc.query(&q, 0);
        assert_eq!(results.len(), 2);
        assert_eq!(svc.stats().queries, 1);
    }

    #[test]
    fn concurrent_advertising_and_negotiation() {
        // The service must stay consistent under concurrent writers and
        // cycle-runners: every accepted ad is either matched (and
        // withdrawn) or still stored.
        let svc = Matchmaker::new(NegotiatorConfig::default());
        let threads = 4;
        let per_thread = 50;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let svc = &svc;
                s.spawn(move |_| {
                    for i in 0..per_thread {
                        let idx = t * per_thread + i;
                        svc.advertise(machine_adv(idx), 0).unwrap();
                        if idx % 5 == 0 {
                            svc.advertise(job_adv(idx), 0).unwrap();
                        }
                    }
                });
            }
            let svc = &svc;
            s.spawn(move |_| {
                for _ in 0..10 {
                    svc.negotiate(0);
                }
            });
        })
        .unwrap();
        // Final cycle to drain any remaining pairs.
        svc.negotiate(0);
        let s = svc.stats();
        let expected_ads = (threads * per_thread) as u64
            + s.ads_rejected
            + (0..threads * per_thread).filter(|i| i % 5 == 0).count() as u64;
        assert_eq!(s.ads_accepted + s.ads_rejected, expected_ads);
        assert_eq!(s.ads_rejected, 0);
        // All 40 jobs eventually matched (machines outnumber them).
        assert_eq!(
            s.matches,
            (0..threads * per_thread).filter(|i| i % 5 == 0).count() as u64
        );
    }

    #[test]
    fn flock_match_grants_the_best_free_provider_and_withdraws_it() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        for i in 0..3 {
            svc.advertise(machine_adv(i), 0).unwrap(); // Mips 50, 51, 52
        }
        let rep = parse_classad(
            r#"[ Name = "remote-job"; Type = "Job";
                 Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
        )
        .unwrap();
        let grant = svc.flock_match(&rep, 10).expect("a grant");
        assert_eq!(grant.ad.get_string("Name"), Some("m2"), "highest rank");
        assert_eq!(grant.contact, "m2:1", "contact travels for direct claim");
        // The granted ad left the store: a second identical query gets the
        // next-best machine, not the same one twice.
        assert_eq!(svc.ad_count(), 2);
        let second = svc.flock_match(&rep, 10).expect("next grant");
        assert_eq!(second.ad.get_string("Name"), Some("m1"));
    }

    #[test]
    fn flock_match_never_grants_claimed_or_incompatible_providers() {
        let svc = Matchmaker::new(NegotiatorConfig::default());
        let mut claimed = machine_adv(0);
        claimed.ad.set_str("State", "Claimed");
        claimed.ad.set_real("CurrentRank", 0.0);
        svc.advertise(claimed, 0).unwrap();
        let rep = parse_classad(
            r#"[ Name = "remote-job"; Type = "Job";
                 Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
        )
        .unwrap();
        assert_eq!(
            svc.flock_match(&rep, 10),
            None,
            "flocked jobs never preempt local claimants"
        );
        let picky = parse_classad(
            r#"[ Name = "picky"; Type = "Job";
                 Constraint = other.Type == "Machine" && other.Mips > 9000;
                 Rank = 0 ]"#,
        )
        .unwrap();
        svc.advertise(machine_adv(1), 0).unwrap();
        assert_eq!(svc.flock_match(&picky, 10), None);
    }
}
