//! The provider side of the claiming protocol (paper §3.2, §4).
//!
//! "The RA accepts the resource request only if the ticket matches the one
//! that it gave the pool manager, and the request matches the RA's
//! constraints with respect to the updated state of the request and
//! resource, which may have changed since the last advertisement."
//!
//! This module implements that decision procedure as a small state machine
//! that agents (simulated or real) embed. The key property is **weak
//! consistency**: the matchmaker may have matched against a stale ad; the
//! claim handshake re-verifies everything against *current* state, so
//! staleness costs only a rejected claim, never a wrong allocation.

use crate::protocol::{ClaimRejection, ClaimRequest, ClaimResponse, Timestamp};
use crate::ticket::Ticket;
use classad::{constraint_holds, ClassAd, EvalPolicy, MatchConventions};

/// A provider's claim state.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimState {
    /// No active claim.
    Unclaimed,
    /// Claimed by a customer.
    Claimed {
        /// The claiming user.
        owner: String,
        /// Customer contact for the claim.
        contact: String,
        /// When the claim was established.
        since: Timestamp,
    },
}

/// Provider-side claim handler: owns the outstanding ticket and the claim
/// state, and adjudicates claim requests against the provider's *current*
/// ad.
#[derive(Debug)]
pub struct ClaimHandler {
    /// Ticket most recently advertised to the matchmaker (one claim per
    /// advertisement; re-advertising issues a fresh ticket).
    outstanding_ticket: Option<Ticket>,
    state: ClaimState,
    policy: EvalPolicy,
    conventions: MatchConventions,
}

impl ClaimHandler {
    /// New handler with default evaluation policy and conventions.
    pub fn new() -> Self {
        ClaimHandler {
            outstanding_ticket: None,
            state: ClaimState::Unclaimed,
            policy: EvalPolicy::default(),
            conventions: MatchConventions::default(),
        }
    }

    /// Current claim state.
    pub fn state(&self) -> &ClaimState {
        &self.state
    }

    /// `true` if a claim is active.
    pub fn is_claimed(&self) -> bool {
        matches!(self.state, ClaimState::Claimed { .. })
    }

    /// Record the ticket sent with the latest advertisement.
    pub fn set_ticket(&mut self, t: Ticket) {
        self.outstanding_ticket = Some(t);
    }

    /// The ticket currently outstanding, if any. A live agent renewing its
    /// lease re-advertises the *same* outstanding ticket (so a claim racing
    /// a refresh still verifies) and only issues a fresh one after the old
    /// ticket was consumed by an accepted claim.
    pub fn outstanding_ticket(&self) -> Option<Ticket> {
        self.outstanding_ticket
    }

    /// Adjudicate a claim request against the provider's current ad.
    ///
    /// `preemptible` reports whether the provider is willing to displace
    /// its current claimant for this request (the RA's own policy decides;
    /// the handler only asks when a claim is already active). On
    /// acceptance the previous claim (if any) is returned so the caller
    /// can notify/vacate the displaced customer.
    pub fn handle_claim(
        &mut self,
        req: &ClaimRequest,
        current_ad: &ClassAd,
        now: Timestamp,
        preemptible: impl FnOnce(&ClaimRequest) -> bool,
    ) -> (ClaimResponse, Option<ClaimState>) {
        let reject = |r: ClaimRejection| {
            (
                ClaimResponse {
                    accepted: false,
                    rejection: Some(r),
                    provider_ad: current_ad.clone(),
                },
                None,
            )
        };

        // 1. Ticket check: must match the outstanding ticket exactly.
        let ok = match &self.outstanding_ticket {
            Some(t) => t.verify(&req.ticket),
            None => false,
        };
        if !ok {
            return reject(ClaimRejection::BadTicket);
        }

        // 2. Busy check (with the RA's preemption policy).
        let displaced = if self.is_claimed() {
            if !preemptible(req) {
                return reject(ClaimRejection::Busy);
            }
            Some(self.state.clone())
        } else {
            None
        };

        // 3. Constraint re-verification against *current* state, both ways.
        if !constraint_holds(
            current_ad,
            &req.customer_ad,
            &self.policy,
            &self.conventions,
        ) {
            return reject(ClaimRejection::ConstraintFailed);
        }
        if !constraint_holds(
            &req.customer_ad,
            current_ad,
            &self.policy,
            &self.conventions,
        ) {
            return reject(ClaimRejection::CustomerConstraintFailed);
        }

        // Accept: single-use ticket is consumed; claim becomes active.
        self.outstanding_ticket = None;
        let owner = match req.customer_ad.eval_attr("Owner", &self.policy) {
            classad::Value::Str(s) => s.to_string(),
            _ => String::new(),
        };
        self.state = ClaimState::Claimed {
            owner,
            contact: req.customer_contact.clone(),
            since: now,
        };
        (
            ClaimResponse {
                accepted: true,
                rejection: None,
                provider_ad: current_ad.clone(),
            },
            displaced,
        )
    }

    /// Release the active claim (customer finished or was preempted).
    /// Returns the released state, if any.
    pub fn release(&mut self) -> Option<ClaimState> {
        match std::mem::replace(&mut self.state, ClaimState::Unclaimed) {
            ClaimState::Unclaimed => None,
            s => Some(s),
        }
    }
}

impl Default for ClaimHandler {
    fn default() -> Self {
        ClaimHandler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn machine_ad(keyboard_idle: i64) -> ClassAd {
        parse_classad(&format!(
            r#"[ Name = "m"; Type = "Machine"; KeyboardIdle = {keyboard_idle};
                Constraint = other.Type == "Job" && KeyboardIdle > 300 ]"#
        ))
        .unwrap()
    }

    fn job_req(ticket: Ticket) -> ClaimRequest {
        ClaimRequest {
            ticket,
            customer_ad: parse_classad(
                r#"[ Name = "j"; Type = "Job"; Owner = "raman";
                    Constraint = other.Type == "Machine" ]"#,
            )
            .unwrap(),
            customer_contact: "ca:1".into(),
        }
    }

    #[test]
    fn accepts_valid_claim() {
        let mut h = ClaimHandler::new();
        let t = Ticket::from_raw(99);
        h.set_ticket(t);
        let (resp, displaced) = h.handle_claim(&job_req(t), &machine_ad(1000), 50, |_| false);
        assert!(resp.accepted, "{:?}", resp.rejection);
        assert!(displaced.is_none());
        assert!(h.is_claimed());
        match h.state() {
            ClaimState::Claimed { owner, since, .. } => {
                assert_eq!(owner, "raman");
                assert_eq!(*since, 50);
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn rejects_wrong_ticket() {
        let mut h = ClaimHandler::new();
        h.set_ticket(Ticket::from_raw(99));
        let (resp, _) = h.handle_claim(
            &job_req(Ticket::from_raw(100)),
            &machine_ad(1000),
            0,
            |_| true,
        );
        assert_eq!(resp.rejection, Some(ClaimRejection::BadTicket));
        assert!(!h.is_claimed());
    }

    #[test]
    fn rejects_without_outstanding_ticket() {
        let mut h = ClaimHandler::new();
        let (resp, _) = h.handle_claim(&job_req(Ticket::from_raw(0)), &machine_ad(1000), 0, |_| {
            true
        });
        assert_eq!(resp.rejection, Some(ClaimRejection::BadTicket));
    }

    #[test]
    fn ticket_is_single_use() {
        let mut h = ClaimHandler::new();
        let t = Ticket::from_raw(7);
        h.set_ticket(t);
        let (r1, _) = h.handle_claim(&job_req(t), &machine_ad(1000), 0, |_| false);
        assert!(r1.accepted);
        h.release();
        let (r2, _) = h.handle_claim(&job_req(t), &machine_ad(1000), 0, |_| false);
        assert_eq!(
            r2.rejection,
            Some(ClaimRejection::BadTicket),
            "replay must fail"
        );
    }

    #[test]
    fn stale_ad_rejected_by_current_state() {
        // The machine advertised while idle, but by claim time the keyboard
        // is active: the constraint re-check against *current* state fails.
        let mut h = ClaimHandler::new();
        let t = Ticket::from_raw(1);
        h.set_ticket(t);
        let (resp, _) = h.handle_claim(&job_req(t), &machine_ad(10), 0, |_| false);
        assert_eq!(resp.rejection, Some(ClaimRejection::ConstraintFailed));
        assert!(!h.is_claimed());
        // The response carries the current ad so the customer can see why.
        assert_eq!(resp.provider_ad.get_int("KeyboardIdle"), Some(10));
    }

    #[test]
    fn customer_constraint_also_rechecked() {
        let mut h = ClaimHandler::new();
        let t = Ticket::from_raw(1);
        h.set_ticket(t);
        let mut req = job_req(t);
        req.customer_ad.set(
            "Constraint",
            classad::parse_expr("other.Memory >= 1024").unwrap(),
        );
        let (resp, _) = h.handle_claim(&req, &machine_ad(1000), 0, |_| false);
        assert_eq!(
            resp.rejection,
            Some(ClaimRejection::CustomerConstraintFailed)
        );
    }

    #[test]
    fn busy_rejected_unless_preemptible() {
        let mut h = ClaimHandler::new();
        let t1 = Ticket::from_raw(1);
        h.set_ticket(t1);
        let (r, _) = h.handle_claim(&job_req(t1), &machine_ad(1000), 0, |_| false);
        assert!(r.accepted);
        // Second claim with a fresh ticket, provider not preemptible.
        let t2 = Ticket::from_raw(2);
        h.set_ticket(t2);
        let (r, _) = h.handle_claim(&job_req(t2), &machine_ad(1000), 5, |_| false);
        assert_eq!(r.rejection, Some(ClaimRejection::Busy));
        // Now preemptible: accepted, and the displaced claim is returned.
        h.set_ticket(t2);
        let (r, displaced) = h.handle_claim(&job_req(t2), &machine_ad(1000), 9, |_| true);
        assert!(r.accepted);
        match displaced {
            Some(ClaimState::Claimed { since, .. }) => assert_eq!(since, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn release_returns_state_once() {
        let mut h = ClaimHandler::new();
        let t = Ticket::from_raw(1);
        h.set_ticket(t);
        h.handle_claim(&job_req(t), &machine_ad(1000), 0, |_| false);
        assert!(h.release().is_some());
        assert!(h.release().is_none());
        assert!(!h.is_claimed());
    }
}
