//! The match engine: scan a pool of offer ads for the best match to a
//! request ad.
//!
//! The selection rule is the paper's (§3.2): among provider ads whose
//! constraints are mutually satisfied with the customer ad, choose the one
//! with the highest customer (`Rank`) value, "breaking ties according to
//! the provider's Rank value". Remaining ties go to the lowest **tie key**
//! — an intrinsic, caller-supplied identity for the offer. Store-driven
//! scans pass the ad's admission sequence number, which is a property of
//! the ad itself rather than of any particular scan order; that is what
//! makes serial, parallel, and *sharded* scans (any shard count) return
//! byte-identical results. Standalone scans default the key to the offer's
//! slice index, preserving the classic lowest-index-wins behavior.
//!
//! Scans are embarrassingly parallel over the offer list; the parallel
//! implementation chunks the slice across crossbeam scoped threads, each
//! reducing to a local best, followed by a final reduce. Data-race freedom
//! is by construction: ads are shared immutably (`Arc<ClassAd>`), and each
//! thread writes only its own slot.

use classad::{constraint_holds, rank_of, ClassAd, EvalPolicy, MatchConventions};
use std::sync::Arc;

/// A scored candidate from a match scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Index into the offers slice.
    pub index: usize,
    /// Intrinsic tie-break key: lower wins on equal ranks. Store-driven
    /// scans use the ad's admission sequence number (so the winner is
    /// independent of scan partitioning and shard count); standalone scans
    /// use the slice index.
    pub tie: u64,
    /// The request's rank of this offer.
    pub request_rank: f64,
    /// The offer's rank of the request.
    pub offer_rank: f64,
}

impl Candidate {
    /// The deterministic "better" relation: higher request rank, then
    /// higher offer rank, then lower tie key.
    ///
    /// This tuple comparison is a *total* order only because ranks are
    /// guaranteed finite (see [`normalize_rank`]) and tie keys are unique
    /// within a scan; a NaN would make every comparison false and the
    /// selection order-dependent.
    pub(crate) fn better_than(&self, other: &Candidate) -> bool {
        (
            self.request_rank,
            self.offer_rank,
            std::cmp::Reverse(self.tie),
        ) > (
            other.request_rank,
            other.offer_rank,
            std::cmp::Reverse(other.tie),
        )
    }
}

/// Clamp a rank to the finite domain `better_than` requires. Rank
/// evaluation already maps non-numeric values to 0.0; this re-asserts the
/// invariant at the engine boundary so no future rank source can poison
/// candidate ordering with NaN or ±∞.
fn normalize_rank(r: f64) -> f64 {
    if r.is_finite() {
        r
    } else {
        0.0
    }
}

/// Configuration and entry points for match scans.
#[derive(Debug, Clone, Default)]
pub struct MatchEngine {
    /// Evaluation policy used for constraint/rank evaluation.
    pub policy: EvalPolicy,
    /// Attribute-name conventions (`Constraint`/`Requirements`, `Rank`).
    pub conventions: MatchConventions,
}

impl MatchEngine {
    /// Create an engine with default policy and conventions.
    pub fn new() -> Self {
        MatchEngine::default()
    }

    /// Score one request/offer pair, if they match symmetrically. The tie
    /// key defaults to the index (classic lowest-index-wins).
    pub fn score(&self, request: &ClassAd, offer: &ClassAd, index: usize) -> Option<Candidate> {
        self.score_keyed(request, offer, index, index as u64)
    }

    /// Score one request/offer pair with an explicit tie key (store-driven
    /// scans pass the ad's sequence number here).
    pub fn score_keyed(
        &self,
        request: &ClassAd,
        offer: &ClassAd,
        index: usize,
        tie: u64,
    ) -> Option<Candidate> {
        if !constraint_holds(request, offer, &self.policy, &self.conventions) {
            return None;
        }
        if !constraint_holds(offer, request, &self.policy, &self.conventions) {
            return None;
        }
        Some(Candidate {
            index,
            tie,
            request_rank: normalize_rank(rank_of(request, offer, &self.policy, &self.conventions)),
            offer_rank: normalize_rank(rank_of(offer, request, &self.policy, &self.conventions)),
        })
    }

    /// Serial scan: the best-ranked matching offer, or `None`.
    ///
    /// `eligible` filters offers before evaluation (e.g. "not already
    /// claimed this cycle"); pass `|_| true` to consider all.
    pub fn best_match(
        &self,
        request: &ClassAd,
        offers: &[Arc<ClassAd>],
        eligible: impl Fn(usize) -> bool,
    ) -> Option<Candidate> {
        let mut best: Option<Candidate> = None;
        for (i, offer) in offers.iter().enumerate() {
            if !eligible(i) {
                continue;
            }
            if let Some(c) = self.score(request, offer, i) {
                if best.as_ref().is_none_or(|b| c.better_than(b)) {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Parallel scan over `threads` workers. Returns exactly what
    /// [`MatchEngine::best_match`] returns.
    ///
    /// The eligibility predicate must be `Sync` since all workers consult
    /// it.
    pub fn best_match_parallel(
        &self,
        request: &ClassAd,
        offers: &[Arc<ClassAd>],
        threads: usize,
        eligible: impl Fn(usize) -> bool + Sync,
    ) -> Option<Candidate> {
        let threads = threads.max(1);
        if threads == 1 || offers.len() < 2 * threads {
            return self.best_match(request, offers, eligible);
        }
        let chunk = offers.len().div_ceil(threads);
        let mut locals: Vec<Option<Candidate>> = vec![None; threads];
        crossbeam::scope(|s| {
            for (t, (slot, part)) in locals.iter_mut().zip(offers.chunks(chunk)).enumerate() {
                let eligible = &eligible;
                s.spawn(move |_| {
                    let base = t * chunk;
                    let mut best: Option<Candidate> = None;
                    for (i, offer) in part.iter().enumerate() {
                        let global = base + i;
                        if !eligible(global) {
                            continue;
                        }
                        if let Some(c) = self.score(request, offer, global) {
                            if best.as_ref().is_none_or(|b| c.better_than(b)) {
                                best = Some(c);
                            }
                        }
                    }
                    *slot = best;
                });
            }
        })
        .expect("match scan worker panicked");
        locals
            .into_iter()
            .flatten()
            .fold(None, |acc: Option<Candidate>, c| match acc {
                Some(b) if b.better_than(&c) => Some(b),
                _ => Some(c),
            })
    }

    /// All matching offers, in index order (used by one-way queries and
    /// gang matching).
    pub fn all_matches(&self, request: &ClassAd, offers: &[Arc<ClassAd>]) -> Vec<Candidate> {
        offers
            .iter()
            .enumerate()
            .filter_map(|(i, o)| self.score(request, o, i))
            .collect()
    }

    /// Score *every* offer (no eligibility filter) and return the matching
    /// candidates sorted best-first by the same total order `best_match`
    /// selects with. This is the build step for a per-cluster match list
    /// (see [`crate::autocluster`]): eligibility, claims, and preemption
    /// checks happen at consumption time, so the scored list is valid for
    /// every request in an equivalence class for a whole cycle.
    pub fn scored_candidates(
        &self,
        request: &ClassAd,
        offers: &[Arc<ClassAd>],
        threads: usize,
    ) -> Vec<Candidate> {
        let threads = threads.max(1);
        let mut scored: Vec<Candidate> = if threads == 1 || offers.len() < 2 * threads {
            self.all_matches(request, offers)
        } else {
            let chunk = offers.len().div_ceil(threads);
            let mut locals: Vec<Vec<Candidate>> = vec![Vec::new(); threads];
            crossbeam::scope(|s| {
                for (t, (slot, part)) in locals.iter_mut().zip(offers.chunks(chunk)).enumerate() {
                    s.spawn(move |_| {
                        let base = t * chunk;
                        *slot = part
                            .iter()
                            .enumerate()
                            .filter_map(|(i, o)| self.score(request, o, base + i))
                            .collect();
                    });
                }
            })
            .expect("match scoring worker panicked");
            locals.into_iter().flatten().collect()
        };
        // `better_than` is total on finite ranks and distinct tie keys, so
        // the comparator never reports equality for distinct entries and
        // sort stability is irrelevant to determinism.
        scored.sort_by(|a, b| {
            if a.better_than(b) {
                std::cmp::Ordering::Less
            } else if b.better_than(a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        scored
    }

    /// [`MatchEngine::scored_candidates`] with explicit per-offer tie keys
    /// (`ties[i]` keys `offers[i]`). This is the build step for per-shard
    /// candidate lists: each shard scans its own offers with the ads'
    /// admission sequence numbers as keys, and because the resulting order
    /// is intrinsic to the ads, merging per-shard lists reproduces the
    /// single-list order for *any* shard count.
    pub fn scored_candidates_keyed(
        &self,
        request: &ClassAd,
        offers: &[Arc<ClassAd>],
        ties: &[u64],
    ) -> Vec<Candidate> {
        debug_assert_eq!(offers.len(), ties.len());
        let mut scored: Vec<Candidate> = offers
            .iter()
            .enumerate()
            .filter_map(|(i, o)| self.score_keyed(request, o, i, ties[i]))
            .collect();
        scored.sort_by(|a, b| {
            if a.better_than(b) {
                std::cmp::Ordering::Less
            } else if b.better_than(a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn mk(src: &str) -> Arc<ClassAd> {
        Arc::new(parse_classad(src).unwrap())
    }

    fn machines(mips: &[i64]) -> Vec<Arc<ClassAd>> {
        mips.iter()
            .enumerate()
            .map(|(i, m)| {
                mk(&format!(
                    r#"[ Name = "m{i}"; Type = "Machine"; Mips = {m};
                        Constraint = other.Type == "Job"; Rank = 0 ]"#
                ))
            })
            .collect()
    }

    fn job() -> Arc<ClassAd> {
        mk(r#"[ Name = "j"; Type = "Job";
                Constraint = other.Type == "Machine";
                Rank = other.Mips ]"#)
    }

    #[test]
    fn picks_highest_request_rank() {
        let engine = MatchEngine::new();
        let offers = machines(&[10, 104, 50]);
        let best = engine.best_match(&job(), &offers, |_| true).unwrap();
        assert_eq!(best.index, 1);
        assert_eq!(best.request_rank, 104.0);
    }

    #[test]
    fn offer_rank_breaks_ties() {
        let engine = MatchEngine::new();
        let offers = vec![
            mk(r#"[ Name = "a"; Type = "Machine"; Mips = 100;
                    Constraint = true; Rank = 1 ]"#),
            mk(r#"[ Name = "b"; Type = "Machine"; Mips = 100;
                    Constraint = true; Rank = 5 ]"#),
        ];
        let best = engine.best_match(&job(), &offers, |_| true).unwrap();
        assert_eq!(best.index, 1, "provider rank 5 beats 1");
        assert_eq!(best.offer_rank, 5.0);
    }

    #[test]
    fn remaining_ties_go_to_lowest_index() {
        let engine = MatchEngine::new();
        let offers = machines(&[100, 100, 100]);
        let best = engine.best_match(&job(), &offers, |_| true).unwrap();
        assert_eq!(best.index, 0);
    }

    #[test]
    fn explicit_tie_key_overrides_index_order() {
        // Equal ranks everywhere: the winner is the lowest tie key, not
        // the lowest index — the property sharded scans rely on.
        let engine = MatchEngine::new();
        let offers = machines(&[100, 100, 100]);
        let j = job();
        let ties = [30u64, 10, 20];
        let scored = engine.scored_candidates_keyed(&j, &offers, &ties);
        let order: Vec<usize> = scored.iter().map(|c| c.index).collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(scored[0].tie, 10);
    }

    #[test]
    fn keyed_scan_order_is_partition_independent() {
        // Score the same pool whole and as two disjoint halves; merging the
        // halves by `better_than` must reproduce the whole-pool order.
        let engine = MatchEngine::new();
        let mips: Vec<i64> = (0..40).map(|i| (i * 13) % 7).collect();
        let offers = machines(&mips);
        let ties: Vec<u64> = (0..offers.len() as u64).map(|i| 1000 - i).collect();
        let j = job();
        let whole = engine.scored_candidates_keyed(&j, &offers, &ties);
        let (lo, hi) = offers.split_at(17);
        let (lt, ht) = ties.split_at(17);
        let mut halves = [
            engine.scored_candidates_keyed(&j, lo, lt),
            engine.scored_candidates_keyed(&j, hi, ht),
        ];
        // Fix up the second half's indices to the whole-pool frame.
        for c in &mut halves[1] {
            c.index += 17;
        }
        let mut merged: Vec<Candidate> = halves.concat();
        merged.sort_by(|a, b| {
            if a.better_than(b) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        assert_eq!(whole, merged);
    }

    #[test]
    fn no_match_when_constraints_fail() {
        let engine = MatchEngine::new();
        let offers = vec![mk(
            r#"[ Name = "m"; Type = "Machine"; Constraint = false ]"#,
        )];
        assert!(engine.best_match(&job(), &offers, |_| true).is_none());
    }

    #[test]
    fn eligibility_filter_respected() {
        let engine = MatchEngine::new();
        let offers = machines(&[10, 104, 50]);
        let best = engine.best_match(&job(), &offers, |i| i != 1).unwrap();
        assert_eq!(best.index, 2, "104-mips machine excluded; 50 wins");
    }

    #[test]
    fn empty_pool_matches_nothing() {
        let engine = MatchEngine::new();
        assert!(engine.best_match(&job(), &[], |_| true).is_none());
    }

    #[test]
    fn all_matches_in_order() {
        let engine = MatchEngine::new();
        let mut offers = machines(&[10, 20]);
        offers.push(mk(
            r#"[ Name = "no"; Type = "Machine"; Constraint = false ]"#,
        ));
        let all = engine.all_matches(&job(), &offers);
        let idx: Vec<usize> = all.iter().map(|c| c.index).collect();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn parallel_equals_serial() {
        let engine = MatchEngine::new();
        // Ranks with deliberate duplicates to exercise tie-breaking.
        let mips: Vec<i64> = (0..500).map(|i| (i * 37) % 97).collect();
        let offers = machines(&mips);
        let j = job();
        for threads in [1, 2, 3, 4, 8, 13] {
            let serial = engine.best_match(&j, &offers, |_| true);
            let parallel = engine.best_match_parallel(&j, &offers, threads, |_| true);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_respects_eligibility() {
        let engine = MatchEngine::new();
        let mips: Vec<i64> = (0..200).map(|i| i as i64).collect();
        let offers = machines(&mips);
        let j = job();
        let elig = |i: usize| i.is_multiple_of(3);
        let serial = engine.best_match(&j, &offers, elig);
        let parallel = engine.best_match_parallel(&j, &offers, 4, elig);
        assert_eq!(serial, parallel);
        assert_eq!(serial.unwrap().index, 198);
    }

    #[test]
    fn bilateral_rejection_by_offer() {
        // The offer vetoes customers it doesn't like — the novel half of
        // the paper's matching model.
        let engine = MatchEngine::new();
        let offers = vec![mk(r#"[ Name = "m"; Type = "Machine"; Mips = 10;
            Constraint = other.Owner != "riffraff" ]"#)];
        let good = mk(r#"[ Name = "j"; Type = "Job"; Owner = "raman";
            Constraint = other.Type == "Machine" ]"#);
        let bad = mk(r#"[ Name = "j2"; Type = "Job"; Owner = "riffraff";
            Constraint = other.Type == "Machine" ]"#);
        assert!(engine.best_match(&good, &offers, |_| true).is_some());
        assert!(engine.best_match(&bad, &offers, |_| true).is_none());
    }
}
