//! The ad store: the matchmaker's only state.
//!
//! The matchmaker holds *soft* state — ads with leases that lapse unless
//! refreshed. This is what makes the service effectively stateless with
//! respect to matches (paper §3.2): losing the store loses nothing that the
//! next round of periodic advertisements does not restore.

use crate::protocol::{
    Advertisement, AdvertisingProtocol, EntityKind, ProtocolError, Timestamp, TraceContext,
};
use crate::ticket::Ticket;
use classad::{ClassAd, EvalPolicy, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A stored advertisement, frozen behind `Arc` so match scans can snapshot
/// the pool without copying ads.
#[derive(Debug, Clone)]
pub struct StoredAd {
    /// Entity name (from the ad's `Name` attribute), original spelling.
    pub name: String,
    /// Provider or customer.
    pub kind: EntityKind,
    /// The classad.
    pub ad: Arc<ClassAd>,
    /// Contact address for claiming.
    pub contact: String,
    /// Provider's authorization ticket, if any.
    pub ticket: Option<Ticket>,
    /// Lease expiry (absolute seconds).
    pub expires_at: Timestamp,
    /// Monotone sequence number: larger = fresher.
    pub seq: u64,
    /// The trace this ad's match lifecycle belongs to, carried into every
    /// [`crate::negotiate::MatchRecord`] the ad produces. `None` for ads
    /// from pre-tracing peers or paths that never minted a context.
    pub trace: Option<TraceContext>,
}

/// In-memory ad store keyed by `(kind, lowercase name)`.
///
/// Re-advertising under the same name *replaces* the old ad (and renews the
/// lease); ads whose lease lapses are dropped by [`AdStore::expire`].
#[derive(Debug, Default)]
pub struct AdStore {
    ads: HashMap<(EntityKind, String), StoredAd>,
    next_seq: u64,
    eval_policy: EvalPolicy,
}

impl AdStore {
    /// Create an empty store.
    pub fn new() -> Self {
        AdStore::default()
    }

    /// Number of live ads (including any whose lease has lapsed but which
    /// have not yet been swept by [`AdStore::expire`]).
    pub fn len(&self) -> usize {
        self.ads.len()
    }

    /// `true` if no ads are stored.
    pub fn is_empty(&self) -> bool {
        self.ads.is_empty()
    }

    /// Admit an advertisement, validating it against the advertising
    /// protocol. Returns the entity's name key. Equivalent to
    /// [`AdStore::advertise_traced`] with no trace context.
    pub fn advertise(
        &mut self,
        adv: Advertisement,
        now: Timestamp,
        proto: &AdvertisingProtocol,
    ) -> Result<String, ProtocolError> {
        self.advertise_traced(adv, now, proto, None)
    }

    /// Admit an advertisement under an optional trace context; the
    /// context rides on the stored ad into every match it produces.
    pub fn advertise_traced(
        &mut self,
        adv: Advertisement,
        now: Timestamp,
        proto: &AdvertisingProtocol,
        trace: Option<TraceContext>,
    ) -> Result<String, ProtocolError> {
        proto.validate(&adv, now)?;
        let name = match adv.ad.eval_attr("Name", &self.eval_policy) {
            Value::Str(s) => s.to_string(),
            _ => return Err(ProtocolError::MissingAttribute("Name".into())),
        };
        let key = (adv.kind, name.to_ascii_lowercase());
        self.next_seq += 1;
        let stored = StoredAd {
            name: name.clone(),
            kind: adv.kind,
            ad: Arc::new(adv.ad),
            contact: adv.contact,
            ticket: adv.ticket,
            expires_at: adv.expires_at,
            seq: self.next_seq,
            trace,
        };
        self.ads.insert(key, stored);
        Ok(name)
    }

    /// Remove an entity's ad (e.g. clean shutdown). Returns `true` if it
    /// was present.
    pub fn withdraw(&mut self, kind: EntityKind, name: &str) -> bool {
        self.ads
            .remove(&(kind, name.to_ascii_lowercase()))
            .is_some()
    }

    /// Look up an ad by kind and name.
    pub fn get(&self, kind: EntityKind, name: &str) -> Option<&StoredAd> {
        self.ads.get(&(kind, name.to_ascii_lowercase()))
    }

    /// Drop all ads whose lease has lapsed. Returns how many were dropped.
    pub fn expire(&mut self, now: Timestamp) -> usize {
        let before = self.ads.len();
        self.ads.retain(|_, s| s.expires_at > now);
        before - self.ads.len()
    }

    /// Snapshot the live ads of one kind, freshest first. The `Arc`s make
    /// this cheap; match scans work on the snapshot while new ads arrive.
    pub fn snapshot(&self, kind: EntityKind, now: Timestamp) -> Vec<StoredAd> {
        let mut v: Vec<StoredAd> = self
            .ads
            .values()
            .filter(|s| s.kind == kind && s.expires_at > now)
            .cloned()
            .collect();
        v.sort_by_key(|s| std::cmp::Reverse(s.seq));
        v
    }

    /// Iterate over all stored ads.
    pub fn iter(&self) -> impl Iterator<Item = &StoredAd> {
        self.ads.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn adv(name: &str, kind: EntityKind, expires_at: Timestamp) -> Advertisement {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Constraint = true; Rank = 0 ]"#
        ))
        .unwrap();
        Advertisement {
            kind,
            ad,
            contact: format!("{name}:1"),
            ticket: None,
            expires_at,
        }
    }

    fn proto() -> AdvertisingProtocol {
        AdvertisingProtocol::default()
    }

    #[test]
    fn advertise_and_get() {
        let mut store = AdStore::new();
        let name = store
            .advertise(adv("leonardo", EntityKind::Provider, 100), 0, &proto())
            .unwrap();
        assert_eq!(name, "leonardo");
        assert_eq!(store.len(), 1);
        let s = store.get(EntityKind::Provider, "LEONARDO").unwrap();
        assert_eq!(s.name, "leonardo");
        assert_eq!(s.contact, "leonardo:1");
    }

    #[test]
    fn same_name_different_kind_coexist() {
        let mut store = AdStore::new();
        store
            .advertise(adv("x", EntityKind::Provider, 100), 0, &proto())
            .unwrap();
        store
            .advertise(adv("x", EntityKind::Customer, 100), 0, &proto())
            .unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn readvertise_replaces_and_renews() {
        let mut store = AdStore::new();
        store
            .advertise(adv("m", EntityKind::Provider, 50), 0, &proto())
            .unwrap();
        let first_seq = store.get(EntityKind::Provider, "m").unwrap().seq;
        store
            .advertise(adv("m", EntityKind::Provider, 150), 10, &proto())
            .unwrap();
        assert_eq!(store.len(), 1);
        let s = store.get(EntityKind::Provider, "m").unwrap();
        assert!(s.seq > first_seq);
        assert_eq!(s.expires_at, 150);
    }

    #[test]
    fn expire_sweeps_lapsed_leases() {
        let mut store = AdStore::new();
        store
            .advertise(adv("a", EntityKind::Provider, 50), 0, &proto())
            .unwrap();
        store
            .advertise(adv("b", EntityKind::Provider, 150), 0, &proto())
            .unwrap();
        assert_eq!(store.expire(100), 1);
        assert_eq!(store.len(), 1);
        assert!(store.get(EntityKind::Provider, "a").is_none());
        assert!(store.get(EntityKind::Provider, "b").is_some());
    }

    #[test]
    fn snapshot_filters_kind_and_lease_and_orders_by_freshness() {
        let mut store = AdStore::new();
        store
            .advertise(adv("old", EntityKind::Provider, 150), 0, &proto())
            .unwrap();
        store
            .advertise(adv("lapsed", EntityKind::Provider, 60), 0, &proto())
            .unwrap();
        store
            .advertise(adv("fresh", EntityKind::Provider, 150), 0, &proto())
            .unwrap();
        store
            .advertise(adv("job", EntityKind::Customer, 150), 0, &proto())
            .unwrap();
        let snap = store.snapshot(EntityKind::Provider, 100);
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["fresh", "old"]);
    }

    #[test]
    fn withdraw_removes() {
        let mut store = AdStore::new();
        store
            .advertise(adv("m", EntityKind::Provider, 100), 0, &proto())
            .unwrap();
        assert!(store.withdraw(EntityKind::Provider, "M"));
        assert!(!store.withdraw(EntityKind::Provider, "M"));
        assert!(store.is_empty());
    }

    #[test]
    fn validation_errors_propagate() {
        let mut store = AdStore::new();
        let mut bad = adv("m", EntityKind::Provider, 100);
        bad.ad.remove("Name");
        assert!(store.advertise(bad, 0, &proto()).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn computed_name_is_evaluated() {
        let mut store = AdStore::new();
        let ad =
            parse_classad(r#"[ Base = "node"; Name = strcat(Base, "-", 7); Constraint = true ]"#)
                .unwrap();
        let a = Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: "c:1".into(),
            ticket: None,
            expires_at: 100,
        };
        let name = store.advertise(a, 0, &proto()).unwrap();
        assert_eq!(name, "node-7");
    }
}
