//! The ad store: the matchmaker's only state.
//!
//! The matchmaker holds *soft* state — ads with leases that lapse unless
//! refreshed. This is what makes the service effectively stateless with
//! respect to matches (paper §3.2): losing the store loses nothing that the
//! next round of periodic advertisements does not restore.
//!
//! ## Shards and dirtiness
//!
//! Provider (resource) ads are partitioned into **shared-nothing shards**
//! by a stable hash of the ad's name, so negotiation scans can fan out
//! across shards with no shared mutable state and — more importantly — so
//! cycles can be *incremental*: every mutation of a shard's contents
//! (insert, content change, withdraw, lease expiry) bumps that shard's
//! **version**, and anything derived from a shard's contents (candidate
//! lists, claim metadata, external-reference sets) stays valid exactly as
//! long as the version it was computed at. A pure lease **renewal** — a
//! re-advertisement whose ad content, contact, and ticket are unchanged —
//! updates the lease *without* bumping the version (and without assigning
//! a new sequence number), which is what keeps a heartbeating 100k-machine
//! pool almost entirely clean between cycles.
//!
//! Shard count is stable-hash-partitioned and **auto-scales**: when the
//! average shard grows past twice the target size the shard count doubles
//! and every ad is redistributed (all versions bump — a rare, amortized
//! full invalidation). [`AdStore::with_shards`] pins an explicit count
//! instead. Match outcomes never depend on the shard count (see
//! [`crate::matcher::Candidate`] for the intrinsic tie-break that
//! guarantees this).
//!
//! Customer (request) ads are not sharded — request-side incrementality
//! comes from autocluster signatures, not partitioning — but they get the
//! same renewal treatment so a re-submitted identical job keeps its
//! queue position.

use crate::protocol::{
    Advertisement, AdvertisingProtocol, EntityKind, ProtocolError, Timestamp, TraceContext,
};
use crate::ticket::Ticket;
use classad::{ClassAd, EvalPolicy, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Default initial shard count for provider ads.
pub const DEFAULT_SHARDS: usize = 8;

/// Auto-scaling target: when the mean shard size exceeds twice this, the
/// shard count doubles. Chosen so the unit of incremental re-scan work (one
/// shard) stays small and roughly constant as the pool grows.
pub const TARGET_SHARD_SIZE: usize = 512;

/// A stored advertisement, frozen behind `Arc` so match scans can snapshot
/// the pool without copying ads.
#[derive(Debug, Clone)]
pub struct StoredAd {
    /// Entity name (from the ad's `Name` attribute), original spelling.
    pub name: String,
    /// Provider or customer.
    pub kind: EntityKind,
    /// The classad.
    pub ad: Arc<ClassAd>,
    /// Contact address for claiming.
    pub contact: String,
    /// Provider's authorization ticket, if any.
    pub ticket: Option<Ticket>,
    /// Lease expiry (absolute seconds).
    pub expires_at: Timestamp,
    /// Monotone sequence number: the ad's stable identity for ordering.
    /// Assigned at first admission (or on any content change) and *kept*
    /// across pure lease renewals, so it doubles as the deterministic
    /// rank tie-break key (see [`crate::matcher::Candidate::tie`]).
    pub seq: u64,
    /// The trace this ad's match lifecycle belongs to, carried into every
    /// [`crate::negotiate::MatchRecord`] the ad produces. `None` for ads
    /// from pre-tracing peers or paths that never minted a context.
    pub trace: Option<TraceContext>,
}

/// FNV-1a over the canonical (lowercase) name: a stable hash — identical
/// across processes and runs — so an ad's shard is a pure function of its
/// name and the shard count.
fn stable_hash(name_lower: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name_lower.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One shared-nothing partition of the provider ads.
///
/// Ads live in a dense `order` vector (position is stable while the
/// version is stable — removal is `swap_remove`, which bumps the version);
/// `by_key` maps canonical names to positions.
#[derive(Debug)]
struct Shard {
    order: Vec<StoredAd>,
    by_key: HashMap<String, usize>,
    version: u64,
    /// Smallest `expires_at` in the shard (`u64::MAX` when empty). May be
    /// conservatively *stale low* after renewals; [`Shard::refresh_min`]
    /// recomputes it.
    min_expiry: Timestamp,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            order: Vec::new(),
            by_key: HashMap::new(),
            version: 0,
            min_expiry: u64::MAX,
        }
    }
}

impl Shard {
    fn touch(&mut self) {
        self.version += 1;
    }

    fn refresh_min(&mut self) {
        self.min_expiry = self
            .order
            .iter()
            .map(|s| s.expires_at)
            .min()
            .unwrap_or(u64::MAX);
    }

    fn insert(&mut self, key: String, stored: StoredAd) {
        self.min_expiry = self.min_expiry.min(stored.expires_at);
        match self.by_key.get(&key) {
            Some(&i) => self.order[i] = stored,
            None => {
                self.by_key.insert(key, self.order.len());
                self.order.push(stored);
            }
        }
        self.touch();
    }

    fn remove(&mut self, key: &str) -> bool {
        let Some(i) = self.by_key.remove(key) else {
            return false;
        };
        self.order.swap_remove(i);
        if let Some(moved) = self.order.get(i) {
            self.by_key.insert(moved.name.to_ascii_lowercase(), i);
        }
        self.touch();
        self.refresh_min();
        true
    }
}

/// In-memory ad store keyed by `(kind, lowercase name)`, with provider ads
/// sharded by a stable hash of the name (see the module docs).
///
/// Re-advertising under the same name *replaces* the old ad (and renews the
/// lease); ads whose lease lapses are dropped by [`AdStore::expire`].
#[derive(Debug)]
pub struct AdStore {
    shards: Vec<Shard>,
    /// `true` when the shard count was pinned by [`AdStore::with_shards`];
    /// auto-scaling is disabled.
    pinned: bool,
    customers: HashMap<String, StoredAd>,
    next_seq: u64,
    eval_policy: EvalPolicy,
}

impl Default for AdStore {
    fn default() -> Self {
        AdStore {
            shards: (0..DEFAULT_SHARDS).map(|_| Shard::default()).collect(),
            pinned: false,
            customers: HashMap::new(),
            next_seq: 0,
            eval_policy: EvalPolicy::default(),
        }
    }
}

impl AdStore {
    /// Create an empty store with the default (auto-scaling) shard layout.
    pub fn new() -> Self {
        AdStore::default()
    }

    /// Create an empty store with a pinned provider shard count (`n >= 1`);
    /// auto-scaling is disabled. `with_shards(1)` is the unsharded layout.
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1);
        AdStore {
            shards: (0..n).map(|_| Shard::default()).collect(),
            pinned: true,
            ..AdStore::default()
        }
    }

    /// Number of provider shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a provider ad with this name lives in (a pure function of
    /// the name and the shard count).
    pub fn shard_of(&self, name: &str) -> usize {
        (stable_hash(&name.to_ascii_lowercase()) % self.shards.len() as u64) as usize
    }

    /// Mutation version of one provider shard. Anything computed from the
    /// shard's contents is valid exactly while this is unchanged.
    pub fn shard_version(&self, shard: usize) -> u64 {
        self.shards[shard].version
    }

    /// The provider ads of one shard, in slot order (stable while the
    /// shard's version is stable). May include ads whose lease has lapsed
    /// but which [`AdStore::expire`] has not yet swept — consumers filter
    /// with [`AdStore::shard_min_expiry`] or per ad.
    pub fn shard_ads(&self, shard: usize) -> &[StoredAd] {
        &self.shards[shard].order
    }

    /// Lower bound on the earliest lease expiry in the shard (`u64::MAX`
    /// when empty). If this is `> now`, no ad in the shard has lapsed.
    pub fn shard_min_expiry(&self, shard: usize) -> Timestamp {
        self.shards[shard].min_expiry
    }

    /// Number of live ads (including any whose lease has lapsed but which
    /// have not yet been swept by [`AdStore::expire`]).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.order.len()).sum::<usize>() + self.customers.len()
    }

    /// `true` if no ads are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit an advertisement, validating it against the advertising
    /// protocol. Returns the entity's name key. Equivalent to
    /// [`AdStore::advertise_traced`] with no trace context.
    pub fn advertise(
        &mut self,
        adv: Advertisement,
        now: Timestamp,
        proto: &AdvertisingProtocol,
    ) -> Result<String, ProtocolError> {
        self.advertise_traced(adv, now, proto, None)
    }

    /// Admit an advertisement under an optional trace context; the
    /// context rides on the stored ad into every match it produces.
    ///
    /// A re-advertisement whose ad content, contact, and ticket all equal
    /// the stored ad's is a **pure lease renewal**: the lease (and trace)
    /// update in place, the sequence number is kept, and — for providers —
    /// the shard's version does *not* change, so everything cached against
    /// the shard stays valid.
    pub fn advertise_traced(
        &mut self,
        adv: Advertisement,
        now: Timestamp,
        proto: &AdvertisingProtocol,
        trace: Option<TraceContext>,
    ) -> Result<String, ProtocolError> {
        proto.validate(&adv, now)?;
        let name = match adv.ad.eval_attr("Name", &self.eval_policy) {
            Value::Str(s) => s.to_string(),
            _ => return Err(ProtocolError::MissingAttribute("Name".into())),
        };
        let key = name.to_ascii_lowercase();
        match adv.kind {
            EntityKind::Provider => {
                let shard = self.shard_of(&name);
                if let Some(&slot) = self.shards[shard].by_key.get(&key) {
                    let existing = &mut self.shards[shard].order[slot];
                    if *existing.ad == adv.ad
                        && existing.contact == adv.contact
                        && existing.ticket == adv.ticket
                    {
                        existing.expires_at = adv.expires_at;
                        existing.trace = trace;
                        self.shards[shard].min_expiry =
                            self.shards[shard].min_expiry.min(adv.expires_at);
                        return Ok(name);
                    }
                }
                self.next_seq += 1;
                let stored = StoredAd {
                    name: name.clone(),
                    kind: adv.kind,
                    ad: Arc::new(adv.ad),
                    contact: adv.contact,
                    ticket: adv.ticket,
                    expires_at: adv.expires_at,
                    seq: self.next_seq,
                    trace,
                };
                self.shards[shard].insert(key, stored);
                self.maybe_split();
            }
            EntityKind::Customer => {
                if let Some(existing) = self.customers.get_mut(&key) {
                    if *existing.ad == adv.ad
                        && existing.contact == adv.contact
                        && existing.ticket == adv.ticket
                    {
                        existing.expires_at = adv.expires_at;
                        existing.trace = trace;
                        return Ok(name);
                    }
                }
                self.next_seq += 1;
                let stored = StoredAd {
                    name: name.clone(),
                    kind: adv.kind,
                    ad: Arc::new(adv.ad),
                    contact: adv.contact,
                    ticket: adv.ticket,
                    expires_at: adv.expires_at,
                    seq: self.next_seq,
                    trace,
                };
                self.customers.insert(key, stored);
            }
        }
        Ok(name)
    }

    /// Double the shard count and redistribute when the mean shard size
    /// outgrows the target. Every version bumps (the world moved), which
    /// is the correct — if blunt — cache invalidation for a reshard.
    fn maybe_split(&mut self) {
        if self.pinned {
            return;
        }
        let providers: usize = self.shards.iter().map(|s| s.order.len()).sum();
        if providers <= self.shards.len() * TARGET_SHARD_SIZE * 2 {
            return;
        }
        let new_count = self.shards.len() * 2;
        let old = std::mem::take(&mut self.shards);
        self.shards = (0..new_count).map(|_| Shard::default()).collect();
        for shard in old {
            for stored in shard.order {
                let key = stored.name.to_ascii_lowercase();
                let idx = (stable_hash(&key) % new_count as u64) as usize;
                self.shards[idx].insert(key, stored);
            }
        }
    }

    /// Remove an entity's ad (e.g. clean shutdown). Returns `true` if it
    /// was present.
    pub fn withdraw(&mut self, kind: EntityKind, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        match kind {
            EntityKind::Provider => {
                let shard = self.shard_of(name);
                self.shards[shard].remove(&key)
            }
            EntityKind::Customer => self.customers.remove(&key).is_some(),
        }
    }

    /// Look up an ad by kind and name.
    pub fn get(&self, kind: EntityKind, name: &str) -> Option<&StoredAd> {
        let key = name.to_ascii_lowercase();
        match kind {
            EntityKind::Provider => {
                let shard = self.shard_of(name);
                let slot = *self.shards[shard].by_key.get(&key)?;
                self.shards[shard].order.get(slot)
            }
            EntityKind::Customer => self.customers.get(&key),
        }
    }

    /// Drop all ads whose lease has lapsed. Returns how many were dropped.
    /// Provider shards that lose ads get their version bumped — an expired
    /// resource is a dirty resource.
    pub fn expire(&mut self, now: Timestamp) -> usize {
        let mut dropped = 0;
        for shard in &mut self.shards {
            if shard.min_expiry > now {
                continue;
            }
            let before = shard.order.len();
            shard.order.retain(|s| s.expires_at > now);
            let removed = before - shard.order.len();
            if removed > 0 {
                dropped += removed;
                shard.by_key.clear();
                for (i, s) in shard.order.iter().enumerate() {
                    shard.by_key.insert(s.name.to_ascii_lowercase(), i);
                }
                shard.touch();
            }
            shard.refresh_min();
        }
        let before = self.customers.len();
        self.customers.retain(|_, s| s.expires_at > now);
        dropped += before - self.customers.len();
        dropped
    }

    /// Snapshot the live ads of one kind, freshest first (by sequence
    /// number). The `Arc`s make this cheap; match scans work on the
    /// snapshot while new ads arrive. O(pool) — the incremental
    /// negotiation path reads shards directly instead.
    pub fn snapshot(&self, kind: EntityKind, now: Timestamp) -> Vec<StoredAd> {
        let mut v: Vec<StoredAd> = match kind {
            EntityKind::Provider => self
                .shards
                .iter()
                .flat_map(|sh| sh.order.iter())
                .filter(|s| s.expires_at > now)
                .cloned()
                .collect(),
            EntityKind::Customer => self
                .customers
                .values()
                .filter(|s| s.expires_at > now)
                .cloned()
                .collect(),
        };
        v.sort_by_key(|s| std::cmp::Reverse(s.seq));
        v
    }

    /// Iterate over all stored ads.
    pub fn iter(&self) -> impl Iterator<Item = &StoredAd> {
        self.shards
            .iter()
            .flat_map(|sh| sh.order.iter())
            .chain(self.customers.values())
    }

    /// Capture the store's **full** state — every ad of both kinds
    /// (lapsed or not), the shard layout, and the sequence counter — for
    /// checkpointing (HA recovery). Unlike [`AdStore::snapshot`], which
    /// is a match-scan view of live ads of one kind, this is the
    /// everything-needed-to-rebuild-me view: restoring it with
    /// [`AdStore::restore_state`] yields a store that answers every
    /// query, match, and renewal exactly as this one would.
    pub fn snapshot_state(&self) -> StoreSnapshot {
        StoreSnapshot {
            shards: self.shards.len(),
            pinned: self.pinned,
            next_seq: self.next_seq,
            ads: self.iter().cloned().collect(),
        }
    }

    /// Rebuild a store from a [`StoreSnapshot`]. Every ad lands in the
    /// shard its name hashes to under the snapshot's shard count, keeping
    /// its sequence number, lease, ticket, contact, and trace; the
    /// sequence counter resumes where the snapshot left it, so ads
    /// admitted after a restore sort strictly fresher than everything
    /// checkpointed.
    pub fn restore_state(snap: &StoreSnapshot) -> AdStore {
        let n = snap.shards.max(1);
        let mut store = AdStore {
            shards: (0..n).map(|_| Shard::default()).collect(),
            pinned: snap.pinned,
            customers: HashMap::new(),
            next_seq: snap.next_seq,
            eval_policy: EvalPolicy::default(),
        };
        for stored in &snap.ads {
            let key = stored.name.to_ascii_lowercase();
            match stored.kind {
                EntityKind::Provider => {
                    let shard = store.shard_of(&stored.name);
                    store.shards[shard].insert(key, stored.clone());
                }
                EntityKind::Customer => {
                    store.customers.insert(key, stored.clone());
                }
            }
        }
        store
    }
}

/// Full recoverable state of an [`AdStore`], produced by
/// [`AdStore::snapshot_state`] and consumed by [`AdStore::restore_state`].
/// This is what an HA checkpoint freezes into the journal stream (see
/// `condor-ha`): the shard layout, the monotone sequence counter, and
/// every stored ad with its lease, ticket, and trace intact.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    /// Provider shard count at snapshot time.
    pub shards: usize,
    /// Whether the shard count was pinned (auto-scaling disabled).
    pub pinned: bool,
    /// The sequence counter; the restored store resumes from here.
    pub next_seq: u64,
    /// Every stored ad, providers and customers alike, lapsed or not
    /// (expiry is re-judged against the clock after restore, not here).
    pub ads: Vec<StoredAd>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn adv(name: &str, kind: EntityKind, expires_at: Timestamp) -> Advertisement {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Constraint = true; Rank = 0 ]"#
        ))
        .unwrap();
        Advertisement {
            kind,
            ad,
            contact: format!("{name}:1"),
            ticket: None,
            expires_at,
        }
    }

    fn adv_with_attr(name: &str, kind: EntityKind, expires_at: Timestamp, x: i64) -> Advertisement {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; X = {x}; Constraint = true; Rank = 0 ]"#
        ))
        .unwrap();
        Advertisement {
            kind,
            ad,
            contact: format!("{name}:1"),
            ticket: None,
            expires_at,
        }
    }

    fn proto() -> AdvertisingProtocol {
        AdvertisingProtocol::default()
    }

    #[test]
    fn advertise_and_get() {
        let mut store = AdStore::new();
        let name = store
            .advertise(adv("leonardo", EntityKind::Provider, 100), 0, &proto())
            .unwrap();
        assert_eq!(name, "leonardo");
        assert_eq!(store.len(), 1);
        let s = store.get(EntityKind::Provider, "LEONARDO").unwrap();
        assert_eq!(s.name, "leonardo");
        assert_eq!(s.contact, "leonardo:1");
    }

    #[test]
    fn same_name_different_kind_coexist() {
        let mut store = AdStore::new();
        store
            .advertise(adv("x", EntityKind::Provider, 100), 0, &proto())
            .unwrap();
        store
            .advertise(adv("x", EntityKind::Customer, 100), 0, &proto())
            .unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn changed_readvertise_replaces_and_bumps_version() {
        let mut store = AdStore::new();
        store
            .advertise(adv_with_attr("m", EntityKind::Provider, 50, 1), 0, &proto())
            .unwrap();
        let shard = store.shard_of("m");
        let first_seq = store.get(EntityKind::Provider, "m").unwrap().seq;
        let first_version = store.shard_version(shard);
        store
            .advertise(
                adv_with_attr("m", EntityKind::Provider, 150, 2),
                10,
                &proto(),
            )
            .unwrap();
        assert_eq!(store.len(), 1);
        let s = store.get(EntityKind::Provider, "m").unwrap();
        assert!(s.seq > first_seq, "content change takes a new seq");
        assert_eq!(s.expires_at, 150);
        assert!(store.shard_version(shard) > first_version);
    }

    #[test]
    fn pure_renewal_keeps_seq_and_version() {
        let mut store = AdStore::new();
        store
            .advertise(adv("m", EntityKind::Provider, 50), 0, &proto())
            .unwrap();
        let shard = store.shard_of("m");
        let first_seq = store.get(EntityKind::Provider, "m").unwrap().seq;
        let first_version = store.shard_version(shard);
        store
            .advertise(adv("m", EntityKind::Provider, 150), 10, &proto())
            .unwrap();
        let s = store.get(EntityKind::Provider, "m").unwrap();
        assert_eq!(s.seq, first_seq, "identical re-ad is a pure renewal");
        assert_eq!(s.expires_at, 150, "lease still renews");
        assert_eq!(
            store.shard_version(shard),
            first_version,
            "renewal leaves the shard clean"
        );
    }

    #[test]
    fn expire_sweeps_lapsed_leases_and_dirties_shards() {
        let mut store = AdStore::new();
        store
            .advertise(adv("a", EntityKind::Provider, 50), 0, &proto())
            .unwrap();
        store
            .advertise(adv("b", EntityKind::Provider, 150), 0, &proto())
            .unwrap();
        let shard_a = store.shard_of("a");
        let v_before = store.shard_version(shard_a);
        assert_eq!(store.expire(100), 1);
        assert_eq!(store.len(), 1);
        assert!(store.get(EntityKind::Provider, "a").is_none());
        assert!(store.get(EntityKind::Provider, "b").is_some());
        assert!(
            store.shard_version(shard_a) > v_before,
            "expiry dirties the shard"
        );
    }

    #[test]
    fn snapshot_filters_kind_and_lease_and_orders_by_freshness() {
        let mut store = AdStore::new();
        store
            .advertise(adv("old", EntityKind::Provider, 150), 0, &proto())
            .unwrap();
        store
            .advertise(adv("lapsed", EntityKind::Provider, 60), 0, &proto())
            .unwrap();
        store
            .advertise(adv("fresh", EntityKind::Provider, 150), 0, &proto())
            .unwrap();
        store
            .advertise(adv("job", EntityKind::Customer, 150), 0, &proto())
            .unwrap();
        let snap = store.snapshot(EntityKind::Provider, 100);
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["fresh", "old"]);
    }

    #[test]
    fn withdraw_removes() {
        let mut store = AdStore::new();
        store
            .advertise(adv("m", EntityKind::Provider, 100), 0, &proto())
            .unwrap();
        assert!(store.withdraw(EntityKind::Provider, "M"));
        assert!(!store.withdraw(EntityKind::Provider, "M"));
        assert!(store.is_empty());
    }

    #[test]
    fn validation_errors_propagate() {
        let mut store = AdStore::new();
        let mut bad = adv("m", EntityKind::Provider, 100);
        bad.ad.remove("Name");
        assert!(store.advertise(bad, 0, &proto()).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn computed_name_is_evaluated() {
        let mut store = AdStore::new();
        let ad =
            parse_classad(r#"[ Base = "node"; Name = strcat(Base, "-", 7); Constraint = true ]"#)
                .unwrap();
        let a = Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: "c:1".into(),
            ticket: None,
            expires_at: 100,
        };
        let name = store.advertise(a, 0, &proto()).unwrap();
        assert_eq!(name, "node-7");
    }

    #[test]
    fn sharding_is_stable_and_total() {
        let store = AdStore::with_shards(8);
        assert_eq!(store.num_shards(), 8);
        for name in ["alpha", "beta", "GAMMA", "Gamma"] {
            let s = store.shard_of(name);
            assert!(s < 8);
            assert_eq!(s, store.shard_of(name), "shard_of is a pure function");
        }
        // Case-insensitive: same key, same shard.
        assert_eq!(store.shard_of("GAMMA"), store.shard_of("gamma"));
    }

    #[test]
    fn shard_ads_cover_every_provider_exactly_once() {
        let mut store = AdStore::with_shards(4);
        for i in 0..50 {
            store
                .advertise(
                    adv(&format!("m{i}"), EntityKind::Provider, 100),
                    0,
                    &proto(),
                )
                .unwrap();
        }
        let mut names: Vec<String> = (0..store.num_shards())
            .flat_map(|s| store.shard_ads(s).iter().map(|a| a.name.clone()))
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 50);
        // And every ad sits in the shard its name hashes to.
        for s in 0..store.num_shards() {
            for ad in store.shard_ads(s) {
                assert_eq!(store.shard_of(&ad.name), s);
            }
        }
    }

    #[test]
    fn auto_resharding_doubles_and_redistributes() {
        let mut store = AdStore::new();
        let initial = store.num_shards();
        let enough = initial * TARGET_SHARD_SIZE * 2 + 1;
        for i in 0..enough {
            store
                .advertise(
                    adv(&format!("m{i}"), EntityKind::Provider, u64::MAX),
                    0,
                    &proto(),
                )
                .unwrap();
        }
        assert!(store.num_shards() > initial, "shard count grew");
        // Every ad still findable and in the right shard.
        for i in (0..enough).step_by(997) {
            let name = format!("m{i}");
            let s = store.get(EntityKind::Provider, &name).unwrap();
            assert_eq!(s.name, name);
        }
        let total: usize = (0..store.num_shards())
            .map(|s| store.shard_ads(s).len())
            .sum();
        assert_eq!(total, enough);
    }

    #[test]
    fn pinned_shard_count_never_changes() {
        let mut store = AdStore::with_shards(2);
        for i in 0..(2 * TARGET_SHARD_SIZE * 2 + 10) {
            store
                .advertise(
                    adv(&format!("m{i}"), EntityKind::Provider, u64::MAX),
                    0,
                    &proto(),
                )
                .unwrap();
        }
        assert_eq!(store.num_shards(), 2);
    }

    #[test]
    fn snapshot_state_roundtrips_ads_seq_and_layout() {
        let mut store = AdStore::with_shards(4);
        for i in 0..20 {
            store
                .advertise(
                    adv_with_attr(&format!("m{i}"), EntityKind::Provider, 100 + i as u64, i),
                    0,
                    &proto(),
                )
                .unwrap();
        }
        store
            .advertise(adv("job-1", EntityKind::Customer, 150), 0, &proto())
            .unwrap();
        let snap = store.snapshot_state();
        assert_eq!(snap.shards, 4);
        assert!(snap.pinned);
        assert_eq!(snap.ads.len(), 21);
        let restored = AdStore::restore_state(&snap);
        assert_eq!(restored.num_shards(), store.num_shards());
        assert_eq!(restored.len(), store.len());
        for i in 0..20 {
            let name = format!("m{i}");
            let a = store.get(EntityKind::Provider, &name).unwrap();
            let b = restored.get(EntityKind::Provider, &name).unwrap();
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.expires_at, b.expires_at);
            assert_eq!(a.contact, b.contact);
            assert_eq!(*a.ad, *b.ad);
        }
        assert!(restored.get(EntityKind::Customer, "job-1").is_some());
        // The seq counter resumes: a new ad sorts fresher than everything
        // checkpointed.
        let mut restored = restored;
        restored
            .advertise(adv("late", EntityKind::Provider, 200), 0, &proto())
            .unwrap();
        let late = restored.get(EntityKind::Provider, "late").unwrap().seq;
        assert!(snap.ads.iter().all(|a| a.seq < late));
    }

    #[test]
    fn restored_store_treats_identical_readvertise_as_renewal() {
        let mut store = AdStore::new();
        store
            .advertise(adv("m", EntityKind::Provider, 50), 0, &proto())
            .unwrap();
        let seq = store.get(EntityKind::Provider, "m").unwrap().seq;
        let mut restored = AdStore::restore_state(&store.snapshot_state());
        restored
            .advertise(adv("m", EntityKind::Provider, 150), 10, &proto())
            .unwrap();
        let s = restored.get(EntityKind::Provider, "m").unwrap();
        assert_eq!(s.seq, seq, "renewal semantics survive the roundtrip");
        assert_eq!(s.expires_at, 150);
    }

    #[test]
    fn min_expiry_tracks_the_earliest_lease() {
        let mut store = AdStore::with_shards(1);
        assert_eq!(store.shard_min_expiry(0), u64::MAX);
        store
            .advertise(adv("a", EntityKind::Provider, 80), 0, &proto())
            .unwrap();
        store
            .advertise(adv("b", EntityKind::Provider, 50), 0, &proto())
            .unwrap();
        assert_eq!(store.shard_min_expiry(0), 50);
        store.expire(60);
        assert_eq!(store.shard_min_expiry(0), 80);
    }
}
