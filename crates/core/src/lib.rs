//! # matchmaker — the matchmaking framework
//!
//! The paper's primary contribution (Raman, Livny & Solomon, HPDC 1998):
//! a resource-management architecture for distributively owned pools, built
//! on the `classad` language. The framework's five components map to this
//! crate as follows:
//!
//! | paper component | module |
//! |-----------------|--------|
//! | 1. classad specification | the [`classad`] crate |
//! | 2. advertising protocol | [`protocol`] ([`AdvertisingProtocol`]), [`admanager`] |
//! | 3. matchmaking algorithm | [`matcher`], [`autocluster`], [`negotiate`], [`priority`] |
//! | 4. matchmaking protocol | [`protocol`] ([`MatchNotification`]) |
//! | 5. claiming protocol | [`protocol`], [`claim`], [`ticket`] |
//!
//! One-way queries (status tools) live in [`query`].
//!
//! ## The shape of the system
//!
//! The matchmaker is deliberately *stateless with respect to matches*: its
//! only state is a soft-state [`admanager::AdStore`] of leased
//! advertisements. A match is "a mutual introduction of the two entities"
//! — a hint — and the entities run the claiming protocol directly between
//! themselves, re-verifying constraints against current state
//! ([`claim::ClaimHandler`]). This tolerance of weak consistency is what
//! makes the design robust and scalable.
//!
//! ```
//! use matchmaker::prelude::*;
//! use classad::parse_classad;
//!
//! let proto = AdvertisingProtocol::default();
//! let mut store = AdStore::new();
//! store.advertise(Advertisement {
//!     kind: EntityKind::Provider,
//!     ad: parse_classad(r#"[ Name = "leonardo"; Type = "Machine"; Mips = 104;
//!                           Constraint = other.Type == "Job"; Rank = 0 ]"#).unwrap(),
//!     contact: "leonardo:9614".into(),
//!     ticket: None,
//!     expires_at: 600,
//! }, 0, &proto).unwrap();
//! store.advertise(Advertisement {
//!     kind: EntityKind::Customer,
//!     ad: parse_classad(r#"[ Name = "job-1"; Type = "Job"; Owner = "raman";
//!                           Constraint = other.Type == "Machine";
//!                           Rank = other.Mips ]"#).unwrap(),
//!     contact: "raman-ca:1".into(),
//!     ticket: None,
//!     expires_at: 600,
//! }, 0, &proto).unwrap();
//!
//! let mut negotiator = Negotiator::default();
//! let outcome = negotiator.negotiate(&store, 0);
//! assert_eq!(outcome.stats.matches, 1);
//! assert_eq!(outcome.matches[0].offer_name, "leonardo");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admanager;
pub mod autocluster;
pub mod claim;
pub mod framing;
pub mod matcher;
pub mod negotiate;
pub mod priority;
pub mod protocol;
pub mod query;
pub mod retry;
pub mod service;
pub mod ticket;

pub use admanager::{AdStore, StoreSnapshot, StoredAd};
pub use autocluster::{Clustering, MatchList, OfferMeta};
pub use claim::{ClaimHandler, ClaimState};
pub use framing::{encode_framed, frame_body, FrameDecoder, MAX_FRAME_LEN};
pub use matcher::{Candidate, MatchEngine};
pub use negotiate::{
    ClusterRejections, CycleOutcome, CycleStats, MatchRecord, Negotiator, NegotiatorConfig,
    RejectionTable, UnmatchedCluster,
};
pub use priority::{PriorityConfig, PriorityTracker};
pub use protocol::{
    Advertisement, AdvertisingProtocol, ClaimRejection, ClaimRequest, ClaimResponse, EntityKind,
    MatchNotification, Message, ProtocolError, Timestamp,
};
pub use query::Query;
pub use retry::Backoff;
pub use service::{FrameRejection, Matchmaker, ServiceStats, StatsSnapshot};
pub use ticket::{Ticket, TicketIssuer};

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::admanager::{AdStore, StoredAd};
    pub use crate::claim::{ClaimHandler, ClaimState};
    pub use crate::matcher::MatchEngine;
    pub use crate::negotiate::{Negotiator, NegotiatorConfig};
    pub use crate::priority::{PriorityConfig, PriorityTracker};
    pub use crate::protocol::{
        Advertisement, AdvertisingProtocol, ClaimRequest, ClaimResponse, EntityKind,
        MatchNotification, Message, Timestamp,
    };
    pub use crate::query::Query;
    pub use crate::service::Matchmaker;
    pub use crate::ticket::{Ticket, TicketIssuer};
}
