//! Request autoclustering and per-cycle match lists: the negotiation-cycle
//! fast path.
//!
//! A negotiation cycle is dominated by the match scan: every request is
//! scored against every offer, `O(requests × offers)` bilateral
//! evaluations. In high-throughput pools the request population is highly
//! redundant — a user submits hundreds of structurally identical jobs — so
//! most of those scans recompute answers the cycle already knows. This
//! module removes the redundancy in two steps:
//!
//! 1. **Autoclustering** ([`cluster_requests`]): requests are partitioned
//!    into equivalence classes by a *signature* capturing everything that
//!    can influence how they score against any offer: the text of their
//!    effective `Constraint`/`Rank` expressions, plus the bindings of every
//!    attribute in the dependency closure seeded by those expressions'
//!    self-references **and** by the union of request-side attributes any
//!    offer in the pool can read ([`offer_external_refs`]). Two requests
//!    with equal signatures produce identical `(request_rank, offer_rank,
//!    matches?)` verdicts against every offer.
//!
//! 2. **Match lists** ([`MatchList`]): the first request of a cluster
//!    scores all offers once and keeps the matching candidates sorted by
//!    the engine's total order (request rank desc, offer rank desc, index
//!    asc). Subsequent requests of the cluster consume the next eligible
//!    candidate with a cursor walk instead of rescanning the pool.
//!
//! ## Why cursor-only consumption reproduces the full scan
//!
//! The oracle (the unclustered path in [`crate::negotiate`]) picks the
//! best eligible candidate, and on finding a claimed offer it cannot
//! preempt, excludes it and rescans. The cursor walk is equivalent because
//! every entry it inspects is *permanently consumable* for the cluster:
//!
//! * **taken** — offers granted earlier in the cycle never become free
//!   again, so skipping is final (the skipped entry can simply be dropped,
//!   which the advancing cursor does);
//! * **claimed, not preemptible** — the verdict `offer_rank > CurrentRank
//!   + margin` depends only on cluster-invariant quantities (`offer_rank`
//!   is identical across the cluster by construction; `CurrentRank` and
//!   the margin are fixed for the cycle), so an entry that fails the test
//!   for one member fails it for all members and can be consumed forever —
//!   exactly what the oracle's `excluded` set does one rescan at a time;
//! * **otherwise** — the entry is granted and becomes `taken`.
//!
//! Eligibility therefore only ever *shrinks* along the list, and each
//! member's grant is the first eligible entry at its cursor position —
//! byte-identical to the oracle's choice.
//!
//! ## Signature soundness
//!
//! Expression text is compared *as written* (no case folding): lowercasing
//! would merge string literals that the `is` operator distinguishes.
//! Coarser-than-necessary signatures split clusters (harmless); merged
//! clusters would be unsound. Names missing from a request stay in the
//! signature as explicit "unbound" entries, because under the default
//! evaluation policy a bare name absent from one ad falls back to the
//! other — so "missing" must not collide with any binding.

use crate::matcher::{Candidate, MatchEngine};
use classad::deps::{dependency_closure, other_refs, self_refs};
use classad::{ClassAd, MatchConventions};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

/// Per-offer facts the negotiator needs at grant time, evaluated once per
/// cycle (claim state, the rank of the current claimant, and who would be
/// displaced by a preemption).
#[derive(Debug, Clone, Default)]
pub struct OfferMeta {
    /// `Some(CurrentRank)` if the offer advertises `State == "Claimed"`.
    pub claimed_rank: Option<f64>,
    /// The claimant (`RemoteOwner`) displaced if this offer is preempted.
    pub remote_owner: Option<String>,
}

/// Request-side attribute names this offer may read while its constraint
/// and rank are evaluated: `other.X` and bare references in the
/// constraint/rank expressions and in every offer attribute reachable from
/// them. (Bare names count on both sides: they resolve in the offer first
/// but fall back to the request when unbound.)
fn offer_request_refs(conv: &MatchConventions, offer: &ClassAd, out: &mut BTreeSet<Arc<str>>) {
    let mut self_seeds = BTreeSet::new();
    let roots = [
        conv.constraint_attr_of(offer).and_then(|a| offer.get(a)),
        offer.get(&conv.rank_attr),
    ];
    for expr in roots.into_iter().flatten() {
        self_refs(expr, &mut self_seeds);
        other_refs(expr, out);
    }
    for name in dependency_closure(offer, self_seeds) {
        if let Some(expr) = offer.get(&name) {
            other_refs(expr, out);
        }
    }
}

/// The union, over all offers in the pool, of request-side attributes any
/// offer can read ([`offer_request_refs`]). Computed once per cycle; this
/// is the offer-driven half of every request's signature seed set.
pub fn offer_external_refs(conv: &MatchConventions, offers: &[Arc<ClassAd>]) -> BTreeSet<Arc<str>> {
    let mut out = BTreeSet::new();
    for offer in offers {
        offer_request_refs(conv, offer, &mut out);
    }
    out
}

/// The equivalence-class signature of one request (see module docs).
///
/// `offer_external` is the pool-wide set from [`offer_external_refs`].
pub fn request_signature(
    conv: &MatchConventions,
    request: &ClassAd,
    offer_external: &BTreeSet<Arc<str>>,
) -> String {
    let constraint_attr = conv.constraint_attr_of(request);
    let constraint = constraint_attr.and_then(|a| request.get(a));
    let rank = request.get(&conv.rank_attr);

    let mut seeds = offer_external.clone();
    for expr in [constraint, rank].into_iter().flatten() {
        self_refs(expr, &mut seeds);
    }
    let closure = dependency_closure(request, seeds);

    let mut sig = String::new();
    // Which attribute served as the constraint matters (self-recursive
    // constraints hit the cycle guard under their own name), so it is part
    // of the signature alongside the expression text.
    match (constraint_attr, constraint) {
        (Some(a), Some(e)) => {
            let _ = write!(sig, "C@{a}:{e}");
        }
        _ => sig.push_str("C:!"),
    }
    match rank {
        Some(e) => {
            let _ = write!(sig, "\nR:{e}");
        }
        None => sig.push_str("\nR:!"),
    }
    // BTreeSet iteration is sorted, so binding order is canonical.
    for name in &closure {
        match request.get(name) {
            Some(e) => {
                let _ = write!(sig, "\n{name}={e}");
            }
            None => {
                let _ = write!(sig, "\n{name}!");
            }
        }
    }
    sig
}

/// The partition produced by [`cluster_requests`].
#[derive(Debug, Clone, Default)]
pub struct Clustering {
    /// Cluster id for each request, indexed like the input.
    pub cluster_of: Vec<usize>,
    /// Number of distinct clusters (ids are `0..num_clusters`).
    pub num_clusters: usize,
}

/// Partition `requests` into equivalence classes of identical signatures.
/// Cluster ids are assigned in order of first appearance.
pub fn cluster_requests<'a>(
    conv: &MatchConventions,
    requests: impl Iterator<Item = &'a ClassAd>,
    offer_external: &BTreeSet<Arc<str>>,
) -> Clustering {
    let mut ids: HashMap<String, usize> = HashMap::new();
    let mut cluster_of = Vec::new();
    for request in requests {
        let sig = request_signature(conv, request, offer_external);
        let next = ids.len();
        let id = *ids.entry(sig).or_insert(next);
        cluster_of.push(id);
    }
    Clustering {
        num_clusters: ids.len(),
        cluster_of,
    }
}

/// A cluster's sorted candidate list for one cycle, consumed front to back.
#[derive(Debug)]
pub struct MatchList {
    sorted: Vec<Candidate>,
    cursor: usize,
}

impl MatchList {
    /// Score every offer against `request` (one full scan) and keep the
    /// matches sorted best-first. Eligibility is *not* applied here — it
    /// changes as the cycle grants offers, so it is checked at
    /// [`MatchList::pop_next`] time.
    pub fn build(
        engine: &MatchEngine,
        request: &ClassAd,
        offers: &[Arc<ClassAd>],
        threads: usize,
    ) -> Self {
        MatchList {
            sorted: engine.scored_candidates(request, offers, threads),
            cursor: 0,
        }
    }

    /// Candidates not yet consumed.
    pub fn remaining(&self) -> usize {
        self.sorted.len() - self.cursor
    }

    /// Grant the next eligible candidate to a member of this cluster, or
    /// `None` if the list is exhausted. Returns the candidate and, for a
    /// preempting grant, the displaced user.
    ///
    /// Every inspected entry is consumed permanently — see the module docs
    /// for why that reproduces the oracle's scan-with-exclusion loop.
    pub fn pop_next(
        &mut self,
        taken: &[bool],
        meta: &[OfferMeta],
        preemption: bool,
        margin: f64,
    ) -> Option<(Candidate, Option<String>)> {
        while self.cursor < self.sorted.len() {
            let c = self.sorted[self.cursor];
            self.cursor += 1;
            if taken[c.index] {
                continue;
            }
            match meta[c.index].claimed_rank {
                None => return Some((c, None)),
                Some(current) => {
                    if preemption && c.offer_rank > current + margin {
                        let displaced = meta[c.index].remote_owner.clone().unwrap_or_default();
                        return Some((c, Some(displaced)));
                    }
                    // Not preemptible by this cluster: the verdict is the
                    // same for every member, consume forever.
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn arc(src: &str) -> Arc<ClassAd> {
        Arc::new(parse_classad(src).unwrap())
    }

    fn conv() -> MatchConventions {
        MatchConventions::default()
    }

    #[test]
    fn identical_requests_cluster_despite_distinct_names() {
        let offers = vec![arc(r#"[ Type = "Machine"; Mips = 10;
            Constraint = other.Type == "Job"; Rank = 0 ]"#)];
        let ext = offer_external_refs(&conv(), &offers);
        let a = parse_classad(
            r#"[ Name = "j1"; Type = "Job"; Owner = "alice";
            Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
        )
        .unwrap();
        let b = parse_classad(
            r#"[ Name = "j2"; Type = "Job"; Owner = "bob";
            Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
        )
        .unwrap();
        // Name/Owner are read by nothing: not part of the signature.
        let cl = cluster_requests(&conv(), [&a, &b].into_iter(), &ext);
        assert_eq!(cl.num_clusters, 1);
        assert_eq!(cl.cluster_of, vec![0, 0]);
    }

    #[test]
    fn attribute_read_by_offers_splits_clusters() {
        // The offer ranks requests by JobPrio, so JobPrio is part of every
        // request's signature even though no request expression reads it.
        let offers = vec![arc(r#"[ Type = "Machine";
            Constraint = other.Type == "Job"; Rank = other.JobPrio ]"#)];
        let ext = offer_external_refs(&conv(), &offers);
        assert!(ext.contains("jobprio"));
        let lo = parse_classad(
            r#"[ Type = "Job"; JobPrio = 1;
            Constraint = other.Type == "Machine"; Rank = 0 ]"#,
        )
        .unwrap();
        let hi = parse_classad(
            r#"[ Type = "Job"; JobPrio = 9;
            Constraint = other.Type == "Machine"; Rank = 0 ]"#,
        )
        .unwrap();
        let hi2 = hi.clone();
        let cl = cluster_requests(&conv(), [&lo, &hi, &hi2].into_iter(), &ext);
        assert_eq!(cl.num_clusters, 2);
        assert_eq!(cl.cluster_of, vec![0, 1, 1]);
    }

    #[test]
    fn offer_indirection_is_followed() {
        // The offer reads other.JobPrio only through its own helper
        // attribute; the walk must still find it.
        let offers = vec![arc(r#"[ Type = "Machine";
            Constraint = other.Type == "Job";
            Rank = Helper; Helper = other.JobPrio * 2 ]"#)];
        let ext = offer_external_refs(&conv(), &offers);
        assert!(ext.contains("jobprio"));
    }

    #[test]
    fn request_side_chains_split_clusters() {
        let offers = vec![arc(r#"[ Type = "Machine"; Memory = 64;
            Constraint = other.Type == "Job"; Rank = 0 ]"#)];
        let ext = offer_external_refs(&conv(), &offers);
        // Constraint reads Need, Need reads Base, and Base differs.
        let small = parse_classad(
            r#"[ Type = "Job"; Need = Base * 2; Base = 8;
            Constraint = other.Memory >= Need; Rank = 0 ]"#,
        )
        .unwrap();
        let big = parse_classad(
            r#"[ Type = "Job"; Need = Base * 2; Base = 64;
            Constraint = other.Memory >= Need; Rank = 0 ]"#,
        )
        .unwrap();
        let cl = cluster_requests(&conv(), [&small, &big].into_iter(), &ext);
        assert_eq!(cl.num_clusters, 2);
    }

    #[test]
    fn missing_binding_distinguishes_from_bound() {
        let offers = vec![arc(r#"[ Type = "Machine";
            Constraint = other.Type == "Job"; Rank = other.Boost ]"#)];
        let ext = offer_external_refs(&conv(), &offers);
        let with = parse_classad(
            r#"[ Type = "Job"; Boost = 5;
            Constraint = true; Rank = 0 ]"#,
        )
        .unwrap();
        let without = parse_classad(
            r#"[ Type = "Job";
            Constraint = true; Rank = 0 ]"#,
        )
        .unwrap();
        let cl = cluster_requests(&conv(), [&with, &without].into_iter(), &ext);
        assert_eq!(cl.num_clusters, 2);
    }

    #[test]
    fn matchlist_pops_in_rank_order_and_skips_taken() {
        let engine = MatchEngine::new();
        let offers: Vec<Arc<ClassAd>> = [10, 104, 52]
            .iter()
            .map(|m| {
                arc(&format!(
                    r#"[ Type = "Machine"; Mips = {m};
                        Constraint = other.Type == "Job"; Rank = 0 ]"#
                ))
            })
            .collect();
        let request = parse_classad(
            r#"[ Type = "Job"; Constraint = other.Type == "Machine";
                Rank = other.Mips ]"#,
        )
        .unwrap();
        let meta = vec![OfferMeta::default(); offers.len()];
        let mut list = MatchList::build(&engine, &request, &offers, 1);
        assert_eq!(list.remaining(), 3);

        let mut taken = vec![false; offers.len()];
        let (first, pre) = list.pop_next(&taken, &meta, true, 0.0).unwrap();
        assert_eq!((first.index, pre), (1, None)); // Mips 104
        taken[first.index] = true;
        taken[2] = true; // someone else grabbed Mips 52
        let (second, _) = list.pop_next(&taken, &meta, true, 0.0).unwrap();
        assert_eq!(second.index, 0); // falls through to Mips 10
        taken[second.index] = true;
        assert!(list.pop_next(&taken, &meta, true, 0.0).is_none());
    }

    #[test]
    fn matchlist_consumes_unpreemptible_claims_forever() {
        let engine = MatchEngine::new();
        let offers = vec![
            arc(r#"[ Type = "Machine"; Mips = 104;
                Constraint = other.Type == "Job"; Rank = 1 ]"#),
            arc(r#"[ Type = "Machine"; Mips = 10;
                Constraint = other.Type == "Job"; Rank = 1 ]"#),
        ];
        let request = parse_classad(
            r#"[ Type = "Job"; Constraint = other.Type == "Machine";
                Rank = other.Mips ]"#,
        )
        .unwrap();
        // Best offer is claimed at CurrentRank 5; its rank of the request
        // is 1, so it is not preemptible and must be skipped permanently.
        let meta = vec![
            OfferMeta {
                claimed_rank: Some(5.0),
                remote_owner: Some("old".into()),
            },
            OfferMeta::default(),
        ];
        let taken = vec![false, false];
        let mut list = MatchList::build(&engine, &request, &offers, 1);
        let (c, pre) = list.pop_next(&taken, &meta, true, 0.0).unwrap();
        assert_eq!((c.index, pre), (1, None));
        assert_eq!(
            list.remaining(),
            0,
            "claimed entry was consumed, not retained"
        );
    }

    #[test]
    fn matchlist_grants_preemption_with_displaced_owner() {
        let engine = MatchEngine::new();
        let offers = vec![arc(r#"[ Type = "Machine";
            Constraint = other.Type == "Job"; Rank = other.JobPrio ]"#)];
        let request = parse_classad(
            r#"[ Type = "Job"; JobPrio = 10;
                Constraint = other.Type == "Machine"; Rank = 0 ]"#,
        )
        .unwrap();
        let meta = vec![OfferMeta {
            claimed_rank: Some(5.0),
            remote_owner: Some("olduser".into()),
        }];
        let mut list = MatchList::build(&engine, &request, &offers, 1);
        let (c, pre) = list.pop_next(&[false], &meta, true, 0.0).unwrap();
        assert_eq!(c.index, 0);
        assert_eq!(pre.as_deref(), Some("olduser"));
        // With preemption off the same entry is consumed without a grant.
        let mut list = MatchList::build(&engine, &request, &offers, 1);
        assert!(list.pop_next(&[false], &meta, false, 0.0).is_none());
    }
}
