//! Stream framing for protocol messages.
//!
//! [`Message::encode`] produces a self-contained frame; this module adds
//! the length-prefix layer needed to carry frames over a byte stream
//! (TCP-like transports): a 4-byte big-endian length followed by the
//! frame body. [`FrameDecoder`] accepts arbitrarily fragmented input and
//! yields complete messages as they become available.

use crate::protocol::{Message, ProtocolError, TraceContext};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Default upper bound on a single frame. A classad-bearing message is a
/// few KB; anything beyond this is a corrupt stream or an attack, and the
/// decoder refuses it rather than buffering unboundedly.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Add the 4-byte length prefix to an already-encoded message body.
pub fn frame_body(body: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(4 + body.len());
    out.put_u32(body.len() as u32);
    out.put_slice(body);
    out.freeze()
}

/// Encode a message with its length prefix.
pub fn encode_framed(msg: &Message) -> Bytes {
    frame_body(&msg.encode())
}

/// Encode a message plus an optional trace-context trailer (see
/// [`Message::encode_traced`]) with its length prefix.
pub fn encode_framed_traced(msg: &Message, trace: Option<&TraceContext>) -> Bytes {
    frame_body(&msg.encode_traced(trace))
}

/// Incremental decoder for a stream of length-prefixed frames.
///
/// The maximum accepted frame length is configurable per decoder
/// ([`FrameDecoder::with_max_frame_len`]): a daemon terminating
/// connections from untrusted peers wants a bound matched to its largest
/// legitimate message, so a hostile length prefix can never make it
/// buffer unboundedly.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: BytesMut,
    poisoned: bool,
    max_frame_len: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder {
            buf: BytesMut::new(),
            poisoned: false,
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

impl FrameDecoder {
    /// A fresh decoder with the default [`MAX_FRAME_LEN`] bound.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// A decoder that rejects frames longer than `max_frame_len` bytes.
    pub fn with_max_frame_len(max_frame_len: usize) -> Self {
        FrameDecoder {
            max_frame_len,
            ..FrameDecoder::default()
        }
    }

    /// The configured frame-length bound.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame_len
    }

    /// Feed received bytes into the decoder.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.put_slice(data);
    }

    /// Bytes currently buffered (awaiting a complete frame).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete message. `Ok(None)` means "need
    /// more bytes". After any `Err` the stream is poisoned: framing sync
    /// is lost and every subsequent call errors. Any trace-context
    /// trailer is discarded; use [`FrameDecoder::next_message_traced`] to
    /// keep it.
    pub fn next_message(&mut self) -> Result<Option<Message>, ProtocolError> {
        Ok(self.next_message_traced()?.map(|(msg, _)| msg))
    }

    /// Like [`FrameDecoder::next_message`], but also yields the frame's
    /// optional trace context (`None` for trailer-free frames from
    /// pre-tracing peers).
    pub fn next_message_traced(
        &mut self,
    ) -> Result<Option<(Message, Option<TraceContext>)>, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError::BadFrame(
                "stream poisoned by earlier error".into(),
            ));
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max_frame_len {
            self.poisoned = true;
            return Err(ProtocolError::BadFrame(format!(
                "frame of {len} bytes exceeds the {}-byte limit",
                self.max_frame_len
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let body = self.buf.split_to(len).freeze();
        match Message::decode_traced(body) {
            Ok(out) => Ok(Some(out)),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Drain all currently-decodable messages.
    pub fn drain(&mut self) -> Result<Vec<Message>, ProtocolError> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Advertisement, EntityKind};
    use crate::ticket::Ticket;

    fn sample_messages() -> Vec<Message> {
        let ad = classad::parse_classad(
            r#"[ Name = "m"; Type = "Machine"; Constraint = other.Type == "Job" ]"#,
        )
        .unwrap();
        vec![
            Message::Advertise(Advertisement {
                kind: EntityKind::Provider,
                ad,
                contact: "m:9614".into(),
                ticket: Some(Ticket::from_raw(1)),
                expires_at: 100,
            }),
            Message::Release {
                ticket: Ticket::from_raw(2),
            },
            Message::Release {
                ticket: Ticket::from_raw(3),
            },
        ]
    }

    #[test]
    fn roundtrip_single_frame() {
        let msgs = sample_messages();
        let mut dec = FrameDecoder::new();
        dec.push(&encode_framed(&msgs[0]));
        assert_eq!(dec.next_message().unwrap(), Some(msgs[0].clone()));
        assert_eq!(dec.next_message().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn multiple_frames_in_one_push() {
        let msgs = sample_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_framed(m));
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.drain().unwrap(), msgs);
    }

    #[test]
    fn byte_at_a_time_fragmentation() {
        let msgs = sample_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_framed(m));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in wire {
            dec.push(&[b]);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn traced_frames_surface_their_context() {
        let msgs = sample_messages();
        let ctx = TraceContext {
            trace_id: 0xAAAA,
            parent_span_id: 0xBBBB,
        };
        let mut dec = FrameDecoder::new();
        dec.push(&encode_framed_traced(&msgs[0], Some(&ctx)));
        dec.push(&encode_framed(&msgs[1])); // trailer-free
        assert_eq!(
            dec.next_message_traced().unwrap(),
            Some((msgs[0].clone(), Some(ctx)))
        );
        assert_eq!(
            dec.next_message_traced().unwrap(),
            Some((msgs[1].clone(), None))
        );
        // The untraced accessor still works on traced frames.
        let mut dec = FrameDecoder::new();
        dec.push(&encode_framed_traced(&msgs[0], Some(&ctx)));
        assert_eq!(dec.next_message().unwrap(), Some(msgs[0].clone()));
    }

    #[test]
    fn oversized_frame_rejected_and_poisons() {
        let mut dec = FrameDecoder::new();
        dec.push(&(u32::MAX).to_be_bytes());
        assert!(dec.next_message().is_err());
        // Even valid data afterwards is refused: sync is lost.
        dec.push(&encode_framed(&sample_messages()[1]));
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn configurable_limit_rejects_merely_large_frames() {
        // A frame fine for the default decoder is refused by a tighter one.
        let msg = &sample_messages()[0];
        let framed = encode_framed(msg);
        let mut strict = FrameDecoder::with_max_frame_len(16);
        assert_eq!(strict.max_frame_len(), 16);
        strict.push(&framed);
        assert!(
            strict.next_message().is_err(),
            "oversized for the configured bound"
        );
        let mut lax = FrameDecoder::new();
        lax.push(&framed);
        assert_eq!(lax.next_message().unwrap().as_ref(), Some(msg));
        // The refusal happens on the length prefix alone: no buffering of
        // the (hostile) advertised length is needed.
        let mut strict = FrameDecoder::with_max_frame_len(1024);
        strict.push(&u32::MAX.to_be_bytes());
        assert!(strict.next_message().is_err());
        assert!(
            strict.buffered() < 8,
            "nothing beyond the prefix was retained"
        );
    }

    #[test]
    fn corrupt_body_poisons() {
        let mut dec = FrameDecoder::new();
        dec.push(&4u32.to_be_bytes());
        dec.push(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(dec.next_message().is_err());
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn partial_prefix_waits() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0, 0]);
        assert_eq!(dec.next_message().unwrap(), None);
        dec.push(&[0, 0]); // length = 0 -> empty body -> decode error
        assert!(dec.next_message().is_err());
    }
}
