//! Stream framing for protocol messages.
//!
//! [`Message::encode`] produces a self-contained frame; this module adds
//! the length-prefix layer needed to carry frames over a byte stream
//! (TCP-like transports): a 4-byte big-endian length followed by the
//! frame body. [`FrameDecoder`] accepts arbitrarily fragmented input and
//! yields complete messages as they become available.

use crate::protocol::{Message, ProtocolError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Upper bound on a single frame. A classad-bearing message is a few KB;
/// anything beyond this is a corrupt stream or an attack, and the decoder
/// refuses it rather than buffering unboundedly.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Encode a message with its length prefix.
pub fn encode_framed(msg: &Message) -> Bytes {
    let body = msg.encode();
    let mut out = BytesMut::with_capacity(4 + body.len());
    out.put_u32(body.len() as u32);
    out.put_slice(&body);
    out.freeze()
}

/// Incremental decoder for a stream of length-prefixed frames.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
    poisoned: bool,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Feed received bytes into the decoder.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.put_slice(data);
    }

    /// Bytes currently buffered (awaiting a complete frame).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete message. `Ok(None)` means "need
    /// more bytes". After any `Err` the stream is poisoned: framing sync
    /// is lost and every subsequent call errors.
    pub fn next_message(&mut self) -> Result<Option<Message>, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError::BadFrame("stream poisoned by earlier error".into()));
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            self.poisoned = true;
            return Err(ProtocolError::BadFrame(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let body = self.buf.split_to(len).freeze();
        match Message::decode(body) {
            Ok(m) => Ok(Some(m)),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Drain all currently-decodable messages.
    pub fn drain(&mut self) -> Result<Vec<Message>, ProtocolError> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Advertisement, EntityKind};
    use crate::ticket::Ticket;

    fn sample_messages() -> Vec<Message> {
        let ad = classad::parse_classad(
            r#"[ Name = "m"; Type = "Machine"; Constraint = other.Type == "Job" ]"#,
        )
        .unwrap();
        vec![
            Message::Advertise(Advertisement {
                kind: EntityKind::Provider,
                ad,
                contact: "m:9614".into(),
                ticket: Some(Ticket::from_raw(1)),
                expires_at: 100,
            }),
            Message::Release { ticket: Ticket::from_raw(2) },
            Message::Release { ticket: Ticket::from_raw(3) },
        ]
    }

    #[test]
    fn roundtrip_single_frame() {
        let msgs = sample_messages();
        let mut dec = FrameDecoder::new();
        dec.push(&encode_framed(&msgs[0]));
        assert_eq!(dec.next_message().unwrap(), Some(msgs[0].clone()));
        assert_eq!(dec.next_message().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn multiple_frames_in_one_push() {
        let msgs = sample_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_framed(m));
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.drain().unwrap(), msgs);
    }

    #[test]
    fn byte_at_a_time_fragmentation() {
        let msgs = sample_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_framed(m));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in wire {
            dec.push(&[b]);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn oversized_frame_rejected_and_poisons() {
        let mut dec = FrameDecoder::new();
        dec.push(&(u32::MAX).to_be_bytes());
        assert!(dec.next_message().is_err());
        // Even valid data afterwards is refused: sync is lost.
        dec.push(&encode_framed(&sample_messages()[1]));
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn corrupt_body_poisons() {
        let mut dec = FrameDecoder::new();
        dec.push(&4u32.to_be_bytes());
        dec.push(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(dec.next_message().is_err());
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn partial_prefix_waits() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0, 0]);
        assert_eq!(dec.next_message().unwrap(), None);
        dec.push(&[0, 0]); // length = 0 -> empty body -> decode error
        assert!(dec.next_message().is_err());
    }
}
