//! Bounded exponential backoff for agent retries.
//!
//! Everything an agent retries — re-dialing the matchmaker, resubmitting
//! a request after a rejected or failed claim — is paced by a [`Backoff`]:
//! deterministic by default (no jitter, so tests and simulations
//! reproduce), exponentially growing, capped, and exhaustible.
//!
//! Optional *decorrelated jitter* spreads a fleet's retries: when a
//! matchmaker fails over, every live agent notices within the same
//! heartbeat and would otherwise re-advertise to the new leader in one
//! synchronized stampede. With [`Backoff::jitter`] enabled each agent's
//! delay is drawn from `[delay × (1 − jitter), delay]` by a generator
//! seeded per agent, so the schedule is still reproducible per seed but
//! decorrelated across the pool.

use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Capped exponential backoff schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Growth factor per subsequent retry.
    pub multiplier: f64,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Retries allowed before giving up (`u32::MAX` ≈ never give up).
    pub max_attempts: u32,
    /// Jitter amplitude in `[0, 1]`: each delay is drawn uniformly from
    /// `[delay × (1 − jitter), delay]`. `0` (the default) keeps the
    /// schedule fully deterministic.
    pub jitter: f64,
    /// Seed for the jitter draws. Give every agent a distinct seed
    /// (e.g. a hash of its name) so their schedules decorrelate.
    pub jitter_seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(100),
            multiplier: 2.0,
            max_delay: Duration::from_secs(5),
            max_attempts: 8,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }
}

impl Backoff {
    /// A schedule that never exhausts (for heartbeat-style loops that must
    /// keep trying as long as the agent lives).
    pub fn unlimited(initial: Duration, max_delay: Duration) -> Self {
        Backoff {
            initial,
            max_delay,
            max_attempts: u32::MAX,
            ..Backoff::default()
        }
    }

    /// Delay before retry number `attempt` (1-based: `delay(1)` follows the
    /// first failure). `None` once the attempt budget is exhausted.
    pub fn delay(&self, attempt: u32) -> Option<Duration> {
        if attempt == 0 || attempt > self.max_attempts {
            return None;
        }
        let factor = self
            .multiplier
            .powi(attempt.saturating_sub(1).min(63) as i32);
        let mut secs = (self.initial.as_secs_f64() * factor).min(self.max_delay.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter > 0.0 {
            // Stateless draw: seed ⊕ attempt keys the generator, so the
            // same (seed, attempt) always yields the same delay — the
            // schedule stays reproducible — while distinct seeds spread
            // a fleet's synchronized retries apart.
            let mut rng =
                rand::rngs::SmallRng::seed_from_u64(self.jitter_seed ^ (attempt as u64) << 17);
            let scale = 1.0 - jitter * rng.gen::<f64>();
            secs *= scale;
        }
        Some(Duration::from_secs_f64(secs.max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_grows_then_caps() {
        let b = Backoff::default();
        assert_eq!(b.delay(1), Some(Duration::from_millis(100)));
        assert_eq!(b.delay(2), Some(Duration::from_millis(200)));
        assert_eq!(b.delay(3), Some(Duration::from_millis(400)));
        // Monotone non-decreasing up to the cap.
        let mut prev = Duration::ZERO;
        for attempt in 1..=b.max_attempts {
            let d = b.delay(attempt).unwrap();
            assert!(d >= prev);
            assert!(d <= b.max_delay);
            prev = d;
        }
        assert_eq!(
            b.delay(7),
            Some(Duration::from_secs(5)),
            "capped at max_delay"
        );
    }

    #[test]
    fn budget_exhausts() {
        let b = Backoff {
            max_attempts: 3,
            ..Backoff::default()
        };
        assert!(b.delay(3).is_some());
        assert_eq!(b.delay(4), None);
        assert_eq!(b.delay(0), None, "attempt numbering is 1-based");
    }

    #[test]
    fn unlimited_never_exhausts() {
        let b = Backoff::unlimited(Duration::from_millis(50), Duration::from_secs(1));
        assert_eq!(b.delay(1_000_000), Some(Duration::from_secs(1)));
    }

    #[test]
    fn jitter_stays_in_band_and_reproduces_per_seed() {
        let base = Backoff::default();
        let jittered = Backoff {
            jitter: 0.5,
            jitter_seed: 7,
            ..Backoff::default()
        };
        for attempt in 1..=base.max_attempts {
            let d0 = base.delay(attempt).unwrap();
            let d = jittered.delay(attempt).unwrap();
            assert!(d <= d0, "jitter only shortens: {d:?} vs {d0:?}");
            assert!(
                d.as_secs_f64() >= d0.as_secs_f64() * 0.5 - 1e-9,
                "within the amplitude band: {d:?} vs {d0:?}"
            );
            // Same seed, same attempt: identical draw.
            assert_eq!(d, jittered.delay(attempt).unwrap());
        }
    }

    #[test]
    fn distinct_seeds_decorrelate_the_fleet() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let b = Backoff {
                jitter: 0.9,
                jitter_seed: seed,
                ..Backoff::default()
            };
            (1..=8).map(|a| b.delay(a).unwrap()).collect()
        };
        assert_ne!(
            schedule(1),
            schedule(2),
            "two agents with different seeds must not stampede in lockstep"
        );
    }

    #[test]
    fn zero_jitter_is_bit_for_bit_deterministic() {
        let a = Backoff::default();
        let b = Backoff {
            jitter_seed: 999,
            ..Backoff::default()
        };
        for attempt in 1..=8 {
            assert_eq!(
                a.delay(attempt),
                b.delay(attempt),
                "seed ignored at jitter 0"
            );
        }
    }
}
