//! One-way query matching (paper §4): "One-way matching protocols are used
//! to find all objects matching a given pattern. For example, there are
//! tools to check on the status of job queues and browse existing
//! resources."
//!
//! A query is itself a classad (the data model folds the query language
//! in); only the *query's* constraint must hold — the target's constraint
//! is not consulted, since browsing a resource is not claiming it.

use crate::admanager::{AdStore, StoredAd};
use crate::protocol::{EntityKind, Timestamp};
use classad::ast::Expr;
use classad::{constraint_holds, ClassAd, EvalPolicy, MatchConventions, ParseError};
use std::sync::Arc;

/// A one-way query over the ad store.
#[derive(Debug, Clone)]
pub struct Query {
    /// The query ad; its `Constraint` selects targets.
    pub ad: ClassAd,
    /// Restrict to one kind of ad, or search both.
    pub kind: Option<EntityKind>,
    /// Attributes to project in results (`None` = whole ads).
    pub projection: Option<Vec<String>>,
}

impl Query {
    /// Build a query from a bare constraint expression, e.g.
    /// `other.Memory >= 64 && other.Arch == "INTEL"`.
    pub fn from_constraint(src: &str) -> Result<Query, ParseError> {
        let expr = classad::parse_expr(src)?;
        let mut ad = ClassAd::new();
        ad.set("Name", Expr::str("query"));
        ad.set("Constraint", expr);
        Ok(Query {
            ad,
            kind: None,
            projection: None,
        })
    }

    /// Restrict the query to providers or customers.
    pub fn of_kind(mut self, kind: EntityKind) -> Query {
        self.kind = Some(kind);
        self
    }

    /// Project only the named attributes into the results.
    pub fn select(mut self, attrs: &[&str]) -> Query {
        self.projection = Some(attrs.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Run the query, returning matching stored ads (freshest first, as
    /// returned by the store snapshot).
    pub fn run(
        &self,
        store: &AdStore,
        now: Timestamp,
        policy: &EvalPolicy,
        conv: &MatchConventions,
    ) -> Vec<StoredAd> {
        let kinds: &[EntityKind] = match self.kind {
            Some(EntityKind::Provider) => &[EntityKind::Provider],
            Some(EntityKind::Customer) => &[EntityKind::Customer],
            None => &[EntityKind::Provider, EntityKind::Customer],
        };
        let mut out = Vec::new();
        for kind in kinds {
            for stored in store.snapshot(*kind, now) {
                if constraint_holds(&self.ad, &stored.ad, policy, conv) {
                    out.push(stored);
                }
            }
        }
        out
    }

    /// Run the query and return (possibly projected) result ads.
    pub fn run_projected(
        &self,
        store: &AdStore,
        now: Timestamp,
        policy: &EvalPolicy,
        conv: &MatchConventions,
    ) -> Vec<ClassAd> {
        self.run(store, now, policy, conv)
            .into_iter()
            .map(|s| match &self.projection {
                None => (*s.ad).clone(),
                Some(attrs) => project(&s.ad, attrs, policy),
            })
            .collect()
    }
}

/// Project the named attributes of an ad into a new ad, **evaluating** each
/// (status tools want values, not formulas). Missing attributes are
/// omitted.
pub fn project(ad: &Arc<ClassAd>, attrs: &[String], policy: &EvalPolicy) -> ClassAd {
    let mut out = ClassAd::with_capacity(attrs.len());
    for name in attrs {
        let v = ad.eval_attr(name, policy);
        if !v.is_undefined() {
            out.set(name.as_str(), classad::eval::value_to_expr(&v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Advertisement, AdvertisingProtocol};
    use classad::parse_classad;

    fn store() -> AdStore {
        let proto = AdvertisingProtocol::default();
        let mut s = AdStore::new();
        let ads = [
            (
                EntityKind::Provider,
                r#"[ Name = "intel1"; Type = "Machine"; Arch = "INTEL"; Memory = 64;
                     Constraint = other.Type == "Job" ]"#,
            ),
            (
                EntityKind::Provider,
                r#"[ Name = "sparc1"; Type = "Machine"; Arch = "SPARC"; Memory = 128;
                     Constraint = false ]"#,
            ),
            (
                EntityKind::Customer,
                r#"[ Name = "job1"; Type = "Job"; Owner = "raman"; Memory = 31;
                     Constraint = other.Type == "Machine" ]"#,
            ),
        ];
        for (kind, src) in ads {
            s.advertise(
                Advertisement {
                    kind,
                    ad: parse_classad(src).unwrap(),
                    contact: "c:1".into(),
                    ticket: None,
                    expires_at: 1000,
                },
                0,
                &proto,
            )
            .unwrap();
        }
        s
    }

    fn run(q: &Query, s: &AdStore) -> Vec<String> {
        let mut names: Vec<String> = q
            .run(s, 0, &EvalPolicy::default(), &MatchConventions::default())
            .into_iter()
            .map(|r| r.name)
            .collect();
        names.sort();
        names
    }

    #[test]
    fn query_by_attribute_value() {
        let s = store();
        let q = Query::from_constraint(r#"other.Arch == "INTEL""#).unwrap();
        assert_eq!(run(&q, &s), vec!["intel1"]);
    }

    #[test]
    fn query_ignores_target_constraint() {
        // sparc1's own Constraint is false, but one-way browsing still
        // finds it.
        let s = store();
        let q = Query::from_constraint("other.Memory >= 64").unwrap();
        assert_eq!(run(&q, &s), vec!["intel1", "sparc1"]);
    }

    #[test]
    fn query_kind_restriction() {
        let s = store();
        let q = Query::from_constraint("other.Memory > 0").unwrap();
        assert_eq!(run(&q, &s), vec!["intel1", "job1", "sparc1"]);
        let q = q.of_kind(EntityKind::Customer);
        assert_eq!(run(&q, &s), vec!["job1"]);
    }

    #[test]
    fn query_with_undefined_is_no_match() {
        let s = store();
        let q = Query::from_constraint("other.NoSuchAttr > 5").unwrap();
        assert!(run(&q, &s).is_empty());
        // But `is undefined` finds everything lacking the attribute.
        let q = Query::from_constraint("other.NoSuchAttr is undefined").unwrap();
        assert_eq!(run(&q, &s).len(), 3);
    }

    #[test]
    fn projection_evaluates_and_omits_missing() {
        let s = store();
        let q = Query::from_constraint(r#"other.Arch == "INTEL""#)
            .unwrap()
            .select(&["Name", "Memory", "NoSuch"]);
        let results = q.run_projected(&s, 0, &EvalPolicy::default(), &MatchConventions::default());
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.len(), 2, "{r}");
        assert_eq!(r.get_string("Name"), Some("intel1"));
        assert_eq!(r.get_int("Memory"), Some(64));
    }

    #[test]
    fn bad_constraint_is_parse_error() {
        assert!(Query::from_constraint("this is not ) valid").is_err());
    }
}
