//! Authorization tickets for the claiming protocol.
//!
//! The paper (§4): an RA "includes an authorization ticket with its ad";
//! the pool manager relays the ticket to the matched customer, and "the RA
//! accepts the resource request only if the ticket matches the one that it
//! gave the pool manager". A ticket is an unforgeable-by-guessing 128-bit
//! nonce; real deployments would derive it from a keyed MAC, which slots in
//! behind the same interface.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// An opaque authorization ticket.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u128);

impl Ticket {
    /// Reconstruct a ticket from its raw value (wire decoding).
    pub fn from_raw(v: u128) -> Self {
        Ticket(v)
    }

    /// The raw value (wire encoding).
    pub fn raw(&self) -> u128 {
        self.0
    }

    /// Constant-time comparison: claim verification must not leak ticket
    /// bits through early-exit timing.
    pub fn verify(&self, presented: &Ticket) -> bool {
        let x = self.0 ^ presented.0;
        let mut acc: u8 = 0;
        for i in 0..16 {
            acc |= ((x >> (i * 8)) & 0xFF) as u8;
        }
        acc == 0
    }
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print full ticket material in logs.
        write!(f, "Ticket({:04x}…)", (self.0 >> 112) as u16)
    }
}

/// Issues fresh tickets from a seeded CSPRNG-style stream.
///
/// Seeding is explicit so simulations are reproducible; production callers
/// seed from the OS.
#[derive(Debug)]
pub struct TicketIssuer {
    rng: StdRng,
}

impl TicketIssuer {
    /// Create an issuer from a seed.
    pub fn new(seed: u64) -> Self {
        TicketIssuer {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Issue a fresh ticket.
    pub fn issue(&mut self) -> Ticket {
        Ticket(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_is_deterministic_per_seed() {
        let mut a = TicketIssuer::new(7);
        let mut b = TicketIssuer::new(7);
        assert_eq!(a.issue(), b.issue());
        assert_eq!(a.issue(), b.issue());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TicketIssuer::new(1);
        let mut b = TicketIssuer::new(2);
        assert_ne!(a.issue(), b.issue());
    }

    #[test]
    fn successive_tickets_differ() {
        let mut a = TicketIssuer::new(1);
        let t1 = a.issue();
        let t2 = a.issue();
        assert_ne!(t1, t2);
    }

    #[test]
    fn verify_matches_equality() {
        let t = Ticket::from_raw(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
        assert!(t.verify(&Ticket::from_raw(t.raw())));
        assert!(!t.verify(&Ticket::from_raw(t.raw() ^ 1)));
        assert!(!t.verify(&Ticket::from_raw(t.raw() ^ (1 << 127))));
    }

    #[test]
    fn debug_does_not_leak() {
        let t = Ticket::from_raw(u128::MAX);
        let s = format!("{t:?}");
        assert!(s.len() < 20, "{s}");
        assert!(!s.contains("ffffffffffffffff"), "{s}");
    }
}
