//! The negotiation cycle: the matchmaking algorithm plus the fair-matching
//! policy (paper §4).
//!
//! "Periodically, the pool manager enters a negotiation cycle. This phase
//! invokes the matchmaking algorithm, which determines which CAs require
//! matchmaking services, obtains requests from these CAs, and matches them
//! with compatible RA ads."
//!
//! Fairness is implemented in two cooperating layers:
//!
//! * **across cycles** — past usage decays into an effective user priority
//!   ([`crate::priority`]), and users are served best-priority-first;
//! * **within a cycle** — users are served in *rounds* (one request per
//!   user per round), so a user with a thousand queued jobs cannot starve
//!   everyone behind them in a single cycle.
//!
//! Preemption follows the paper's model: a claimed resource "may also send
//! an ad when it starts running the job, indicating that although the
//! workstation is currently busy, it is still interested in hearing from
//! higher priority customers. The specification of what constitutes higher
//! priority is completely under the control of the RA" — i.e. a claimed
//! offer is matched only when the offer's *own* `Rank` of the new request
//! strictly exceeds its rank of the current claimant (advertised as
//! `CurrentRank`).

use crate::admanager::{AdStore, StoredAd};
use crate::autocluster::{
    cluster_requests, offer_external_refs, request_signature, MatchList, OfferMeta,
};
use crate::matcher::{Candidate, MatchEngine};
use crate::priority::PriorityTracker;
use crate::protocol::{EntityKind, MatchNotification, Timestamp};
use crate::ticket::Ticket;
use classad::{traced_symmetric_match, ClassAd, RejectReason, Value};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

/// Attribute names the negotiator reads from ads (beyond the match
/// conventions).
const ATTR_OWNER: &str = "Owner";
const ATTR_STATE: &str = "State";
const ATTR_CURRENT_RANK: &str = "CurrentRank";
const ATTR_REMOTE_OWNER: &str = "RemoteOwner";
const STATE_CLAIMED: &str = "Claimed";

/// Negotiator tunables.
#[derive(Debug, Clone)]
pub struct NegotiatorConfig {
    /// Worker threads for the match scan (1 = serial).
    pub threads: usize,
    /// Whether claimed resources may be matched to better-ranked requests.
    pub preemption: bool,
    /// How much the offer must prefer the new request over its current
    /// claimant (`offer_rank > CurrentRank + margin`).
    pub preemption_rank_margin: f64,
    /// Usage (resource-seconds) charged to a user per successful match, as
    /// an advance estimate; agents report actual usage later through
    /// [`Negotiator::charge_usage`].
    pub charge_per_match: f64,
    /// Partition requests into equivalence classes and serve each class
    /// from one shared, sorted match list per cycle
    /// ([`crate::autocluster`]) instead of rescanning the offer pool per
    /// request. Produces byte-identical matches to the full scan; disable
    /// only to run the oracle path (testing, benchmarking).
    pub autocluster: bool,
    /// After the rounds, classify every rejected (cluster, offer) pairing
    /// into per-cluster [`RejectionTable`]s using the tracing evaluator
    /// ([`classad::traced_symmetric_match`]). Off by default: attribution
    /// re-scans the pool once per *unmatched* cluster, and pools that do
    /// not serve `Analyze` queries should not pay for it. Match outcomes
    /// are identical either way.
    pub attribution: bool,
    /// Incremental, shard-cached cycles (the default): per-shard claim
    /// metadata and per-(cluster, shard) candidate lists persist across
    /// cycles and are recomputed only for shards whose store version
    /// changed. Requires `autocluster` (signatures key the cache); with
    /// `autocluster` off this flag is ignored. Turn off to run every cycle
    /// as a from-scratch full scan — the oracle the equivalence proptests
    /// compare against. Match outcomes are byte-identical either way.
    pub incremental: bool,
    /// Provider shard count for ad stores built from this config by the
    /// service layer (`0` = auto-scaling layout, see
    /// [`crate::admanager::AdStore`]). The negotiator itself adapts to
    /// whatever layout the store has.
    pub shards: usize,
    /// After the rounds, collect one [`UnmatchedCluster`] per autocluster
    /// left entirely unmatched — the post-cycle hook pool federation
    /// (flocking) forwards to peer pools. Off by default: a pool with no
    /// flock peers pays nothing, not even the grouping pass. Match
    /// outcomes are identical either way.
    pub flocking: bool,
}

impl Default for NegotiatorConfig {
    fn default() -> Self {
        NegotiatorConfig {
            threads: 1,
            preemption: true,
            preemption_rank_margin: 0.0,
            charge_per_match: 0.0,
            autocluster: true,
            attribution: false,
            incremental: true,
            shards: 0,
            flocking: false,
        }
    }
}

/// How many distinct [`RejectReason`]s a [`RejectionTable`] keeps before
/// folding further reasons into its overflow bucket.
const MAX_TABLE_REASONS: usize = 8;

/// A bounded-cardinality histogram of [`RejectReason`]s. The first
/// [`MAX_TABLE_REASONS`] distinct reasons get their own buckets; anything
/// rarer lands in a single overflow count, so the table stays small no
/// matter how pathological the pool's constraints are.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RejectionTable {
    entries: Vec<(RejectReason, u64)>,
    overflow: u64,
}

impl RejectionTable {
    /// Count one rejection.
    pub fn add(&mut self, reason: RejectReason) {
        if let Some((_, n)) = self.entries.iter_mut().find(|(r, _)| *r == reason) {
            *n += 1;
        } else if self.entries.len() < MAX_TABLE_REASONS {
            self.entries.push((reason, 1));
        } else {
            self.overflow += 1;
        }
    }

    /// Total rejections counted (including the overflow bucket).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, n)| n).sum::<u64>() + self.overflow
    }

    /// Rejections that did not get their own bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// No rejections recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.overflow == 0
    }

    /// Buckets sorted most-frequent first (ties broken by label for a
    /// deterministic rendering).
    pub fn ranked(&self) -> Vec<(&RejectReason, u64)> {
        let mut v: Vec<(&RejectReason, u64)> = self.entries.iter().map(|(r, n)| (r, *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.label().cmp(&b.0.label())));
        v
    }

    /// Render as `label=count; label=count[; +overflow=n]`, most frequent
    /// first — the format self-ads, journal events, and `Analyze` replies
    /// share, so their counts can be compared textually.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (reason, n) in self.ranked() {
            if !out.is_empty() {
                out.push_str("; ");
            }
            let _ = write!(out, "{}={n}", reason.label());
        }
        if self.overflow > 0 {
            if !out.is_empty() {
                out.push_str("; ");
            }
            let _ = write!(out, "+overflow={}", self.overflow);
        }
        out
    }

    /// Count per coarse reason kind (see [`RejectReason::kind`]); the
    /// overflow bucket is not attributable and is excluded.
    pub fn count_kind(&self, kind: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(r, _)| r.kind() == kind)
            .map(|(_, n)| n)
            .sum()
    }
}

/// Why one request equivalence class went (partly) unserved: every
/// non-granted (member, offer) pairing classified by reason. Produced only
/// for clusters with at least one unmatched request — matched clusters
/// need no diagnosis.
#[derive(Debug, Clone)]
pub struct ClusterRejections {
    /// Cluster id (request index when autoclustering is off).
    pub cluster: usize,
    /// Names of the cluster's unmatched requests (capped; see
    /// [`ClusterRejections::MAX_NAMES`]).
    pub requests: Vec<String>,
    /// Unmatched requests beyond the `requests` cap.
    pub more_requests: usize,
    /// The representative request's constraint text, for display.
    pub constraint: Option<String>,
    /// The classified rejections.
    pub table: RejectionTable,
}

impl ClusterRejections {
    /// Cap on the member names carried per cluster.
    pub const MAX_NAMES: usize = 5;

    /// Render as `c<id>[name+name]: <table>` — one segment of the
    /// `CycleRejections` journal event's breakdown, and the exact string
    /// an `Analyze` reply echoes for the request's cluster.
    pub fn encode(&self) -> String {
        let mut names = self.requests.join("+");
        if self.more_requests > 0 {
            let _ = write!(names, "+{}more", self.more_requests);
        }
        format!("c{}[{}]: {}", self.cluster, names, self.table.encode())
    }
}

/// One match produced by a negotiation cycle.
#[derive(Debug, Clone)]
pub struct MatchRecord {
    /// Customer-side (request) ad name.
    pub request_name: String,
    /// The request's owner (user).
    pub owner: String,
    /// The request ad as matched.
    pub request_ad: Arc<ClassAd>,
    /// Customer contact address.
    pub customer_contact: String,
    /// Provider-side (offer) ad name.
    pub offer_name: String,
    /// The offer ad as matched.
    pub offer_ad: Arc<ClassAd>,
    /// Provider contact address.
    pub provider_contact: String,
    /// Provider's authorization ticket to relay to the customer.
    pub ticket: Option<Ticket>,
    /// The request's rank of the offer.
    pub request_rank: f64,
    /// The offer's rank of the request.
    pub offer_rank: f64,
    /// If this match preempts a running claim, the displaced user.
    pub preempts: Option<String>,
    /// The request ad's trace context (see
    /// [`crate::admanager::StoredAd::trace`]), so the notifier can keep
    /// the match's causal chain alive across daemons.
    pub trace: Option<crate::protocol::TraceContext>,
}

impl MatchRecord {
    /// Build the two step-3 notifications (customer copy carries the
    /// ticket; provider copy does not need it).
    pub fn notifications(&self) -> (MatchNotification, MatchNotification) {
        let to_customer = MatchNotification {
            own_ad: (*self.request_ad).clone(),
            peer_ad: (*self.offer_ad).clone(),
            peer_contact: self.provider_contact.clone(),
            ticket: self.ticket,
        };
        let to_provider = MatchNotification {
            own_ad: (*self.offer_ad).clone(),
            peer_ad: (*self.request_ad).clone(),
            peer_contact: self.customer_contact.clone(),
            ticket: None,
        };
        (to_customer, to_provider)
    }
}

/// Aggregate statistics for one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleStats {
    /// Requests in the store at cycle start.
    pub requests_considered: usize,
    /// Offers in the store at cycle start.
    pub offers_considered: usize,
    /// Matches produced.
    pub matches: usize,
    /// Of which preemptions.
    pub preemptions: usize,
    /// Requests that found no compatible offer.
    pub unmatched_requests: usize,
    /// Distinct users that received at least one match.
    pub users_served: usize,
    /// Fairness rounds executed.
    pub rounds: usize,
    /// Request equivalence classes formed (0 with autoclustering off).
    pub clusters_formed: usize,
    /// Requests served from an already-built cluster match list.
    pub matchlist_hits: usize,
    /// Full scans of the offer pool: match-list builds on the clustered
    /// path, every best-match invocation (including preemption-exclusion
    /// rescans) on the oracle path.
    pub full_scans: usize,
    /// Ads swept by lease expiry just before this cycle (filled in by the
    /// service layer, which owns the sweep; zero when negotiating against
    /// a store directly).
    pub expired_ads: usize,
    /// Per-(cluster, shard) scans actually performed this cycle on the
    /// incremental path (0 on the full-scan path, which has no shards).
    pub shards_scanned: usize,
    /// Per-(cluster, shard) candidate lists reused from a previous cycle
    /// because the shard's store version was unchanged.
    pub shards_skipped: usize,
    /// Provider ads living in shards whose caches had to be rebuilt this
    /// cycle (the cycle's dirty slice of the pool; equals the pool size on
    /// a cold or full-scan cycle).
    pub dirty_resources: usize,
    /// 1 if this cycle reused any state cached by a previous cycle (clean
    /// shard metadata or candidate lists), 0 for a from-scratch cycle —
    /// summed into a counter by [`CycleStats::record`], so the registry
    /// total reads "cycles that ran incrementally".
    pub incremental_cycles: usize,
    /// Rejected (cluster, offer) pairings classified by the attribution
    /// pass (0 unless [`NegotiatorConfig::attribution`] is on).
    pub rejected_pairings: usize,
    /// Of which: a constraint evaluated to a definite `false`.
    pub reject_req_false: usize,
    /// Of which: a constraint evaluated to `undefined`.
    pub reject_undefined: usize,
    /// Of which: a constraint evaluated to `error` or a non-boolean.
    pub reject_error: usize,
    /// Of which: offer claimed and not preemptible.
    pub reject_busy: usize,
    /// Of which: compatible, but the offer went to a competing request.
    pub reject_lost_rank: usize,
}

impl CycleStats {
    /// Fold this cycle into an observability registry using the shared
    /// metric schema ([`condor_obs::schema`]): monotone totals accumulate
    /// into counters, the per-cycle figures land in `last_cycle_*` gauges.
    /// Cycle wall-clock duration is not known here — callers that time the
    /// cycle record it into [`condor_obs::schema::CYCLE_DURATION_MS`].
    pub fn record(&self, registry: &condor_obs::Registry) {
        use condor_obs::schema;
        registry.counter(schema::CYCLES).inc();
        registry.counter(schema::MATCHES).add(self.matches as u64);
        registry
            .counter(schema::REQUESTS_CONSIDERED)
            .add(self.requests_considered as u64);
        registry
            .counter(schema::UNMATCHED_REQUESTS)
            .add(self.unmatched_requests as u64);
        registry
            .counter(schema::PREEMPTIONS)
            .add(self.preemptions as u64);
        registry
            .counter(schema::CLUSTERS_FORMED)
            .add(self.clusters_formed as u64);
        registry
            .counter(schema::MATCHLIST_HITS)
            .add(self.matchlist_hits as u64);
        registry
            .counter(schema::FULL_SCANS)
            .add(self.full_scans as u64);
        registry
            .counter(schema::ADS_EXPIRED)
            .add(self.expired_ads as u64);
        registry
            .counter(schema::SHARDS_SCANNED)
            .add(self.shards_scanned as u64);
        registry
            .counter(schema::SHARDS_SKIPPED)
            .add(self.shards_skipped as u64);
        registry
            .counter(schema::DIRTY_RESOURCES)
            .add(self.dirty_resources as u64);
        registry
            .counter(schema::INCREMENTAL_CYCLES)
            .add(self.incremental_cycles as u64);
        registry
            .gauge(schema::LAST_CYCLE_REQUESTS)
            .set(self.requests_considered as i64);
        registry
            .gauge(schema::LAST_CYCLE_OFFERS)
            .set(self.offers_considered as i64);
        registry
            .gauge(schema::LAST_CYCLE_MATCHES)
            .set(self.matches as i64);
        registry
            .gauge(schema::LAST_CYCLE_UNMATCHED)
            .set(self.unmatched_requests as i64);
        registry
            .counter(schema::REJECTED_PAIRINGS)
            .add(self.rejected_pairings as u64);
        registry
            .counter(schema::REJECT_REQ_FALSE)
            .add(self.reject_req_false as u64);
        registry
            .counter(schema::REJECT_UNDEFINED)
            .add(self.reject_undefined as u64);
        registry
            .counter(schema::REJECT_ERROR)
            .add(self.reject_error as u64);
        registry
            .counter(schema::REJECT_BUSY)
            .add(self.reject_busy as u64);
        registry
            .counter(schema::REJECT_LOST_RANK)
            .add(self.reject_lost_rank as u64);
        registry
            .gauge(schema::LAST_CYCLE_REJECTED)
            .set(self.rejected_pairings as i64);
    }
}

/// The outcome of a negotiation cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleOutcome {
    /// Matches, in the order they were granted.
    pub matches: Vec<MatchRecord>,
    /// Statistics.
    pub stats: CycleStats,
    /// This cycle's ordinal (1-based, counted by the negotiator across its
    /// lifetime) — lets retained rejection tables, journal events, and
    /// `Analyze` replies name the same cycle.
    pub cycle: u64,
    /// Per-cluster rejection tables for clusters left with unmatched
    /// requests (empty unless [`NegotiatorConfig::attribution`] is on).
    pub rejections: Vec<ClusterRejections>,
    /// One entry per autocluster left with unmatched requests, each
    /// represented by its first unmatched member (empty unless
    /// [`NegotiatorConfig::flocking`] is on). The flocking hook forwards
    /// these representatives to peer pools after the cycle.
    pub unmatched_clusters: Vec<UnmatchedCluster>,
}

/// An autocluster a completed cycle could not serve, reduced to the one
/// representative ad flocking forwards to peer pools. The representative
/// is the cluster's first unmatched member in request order — the same
/// rule the attribution pass uses, and deterministic because request
/// order is seq order. Cluster signatures guarantee every member shares
/// the representative's constraint text, so a peer's verdict on the
/// representative holds for the whole cluster.
#[derive(Debug, Clone)]
pub struct UnmatchedCluster {
    /// The cluster's id within its cycle.
    pub cluster: usize,
    /// The representative request's `Name`.
    pub rep_name: String,
    /// The representative request's ad.
    pub rep_ad: Arc<ClassAd>,
    /// The representative's customer contact — where a remote grant is
    /// delivered as an ordinary `Notify`.
    pub customer_contact: String,
    /// The trace the representative's match lifecycle belongs to; carried
    /// on flock frames so a cross-pool match stitches into one span tree.
    pub trace: Option<crate::protocol::TraceContext>,
    /// How many unmatched requests the representative stands for.
    pub members: usize,
}

/// Everything one provider shard contributes to a cycle, computed once
/// when the shard's store version changes and reused verbatim until it
/// changes again: the live non-daemon offers (in stable slot order), their
/// claim metadata, their seq tie keys, and the request-side attribute
/// names this shard's offers can read (the shard's contribution to the
/// pool-wide signature seed set).
#[derive(Debug)]
struct ShardCache {
    /// Store version of the shard when this cache was built.
    version: u64,
    /// Identity of this build, from a negotiator-wide monotone counter.
    /// Cluster lists are stamped with the epoch they scanned, *not* the
    /// store version: a rebuild forced by lease expiry changes the cached
    /// offer positions without touching the store version, and the epoch
    /// is what keeps such lists from being reused against shifted indices.
    epoch: u64,
    /// Earliest lease expiry among the cached offers: once `now` passes
    /// this, the cached set is no longer the live set and must rebuild.
    min_expiry: Timestamp,
    offers: Vec<StoredAd>,
    ads: Vec<Arc<ClassAd>>,
    ties: Vec<u64>,
    meta: Vec<OfferMeta>,
    external: BTreeSet<Arc<str>>,
}

impl ShardCache {
    fn valid(&self, store_version: u64, now: Timestamp) -> bool {
        self.version == store_version && self.min_expiry > now
    }
}

/// One autocluster's cached candidate lists, one per shard, each stamped
/// with the shard version it was scanned at.
#[derive(Debug)]
struct ClusterCache {
    /// `(shard version, sorted candidates)` per shard; `None` = never
    /// scanned. Candidate indices are within-shard positions; tie keys are
    /// the ads' seqs, so concatenating shards and merging by
    /// [`Candidate::better_than`] reproduces the whole-pool order.
    lists: Vec<Option<(u64, Arc<Vec<Candidate>>)>>,
    /// Last cycle this cluster appeared in, for eviction.
    last_used: u64,
}

/// How many cycles a cluster's cached lists survive without any request
/// hashing to its signature before they are evicted.
const CLUSTER_CACHE_TTL_CYCLES: u64 = 8;

/// Cross-cycle memory of the incremental path (see the module docs of
/// [`crate::autocluster`] and the shard docs in [`crate::admanager`]).
#[derive(Debug, Default)]
struct IncrementalCache {
    shards: Vec<Option<ShardCache>>,
    clusters: HashMap<String, ClusterCache>,
    /// Monotone epoch source for shard cache builds.
    epoch: u64,
}

/// A cluster's in-cycle view of its per-shard candidate lists: one cursor
/// per shard, consumed by a k-way merge on [`Candidate::better_than`].
/// Entry consumption is permanent, exactly like [`MatchList`], and the
/// merged visit order equals the order of the single concatenated-and-
/// sorted list — the tie key (ad seq) is unique pool-wide, so the merge
/// never has to break a tie by shard.
#[derive(Debug)]
struct ShardedMatchList {
    lists: Vec<Arc<Vec<Candidate>>>,
    cursors: Vec<usize>,
}

impl ShardedMatchList {
    /// Grant the next eligible candidate, or `None` when all shard lists
    /// are exhausted. Returns the shard, the candidate (within-shard
    /// index), and the displaced user for a preempting grant.
    fn pop_next(
        &mut self,
        taken: &[bool],
        bases: &[usize],
        metas: &[&[OfferMeta]],
        preemption: bool,
        margin: f64,
    ) -> Option<(usize, Candidate, Option<String>)> {
        loop {
            let mut best: Option<(usize, Candidate)> = None;
            for (s, list) in self.lists.iter().enumerate() {
                if let Some(c) = list.get(self.cursors[s]) {
                    if best.is_none_or(|(_, b)| c.better_than(&b)) {
                        best = Some((s, *c));
                    }
                }
            }
            let (s, c) = best?;
            self.cursors[s] += 1;
            if taken[bases[s] + c.index] {
                continue;
            }
            match metas[s][c.index].claimed_rank {
                None => return Some((s, c, None)),
                Some(current) => {
                    if preemption && c.offer_rank > current + margin {
                        let displaced = metas[s][c.index].remote_owner.clone().unwrap_or_default();
                        return Some((s, c, Some(displaced)));
                    }
                    // Not preemptible by this cluster: cluster-invariant
                    // verdict, consume forever (see `MatchList::pop_next`).
                }
            }
        }
    }
}

/// The pool manager's negotiator.
#[derive(Debug, Default)]
pub struct Negotiator {
    /// The match engine (evaluation policy + conventions).
    pub engine: MatchEngine,
    /// The fair-share priority tracker.
    pub priorities: PriorityTracker,
    /// Tunables.
    pub config: NegotiatorConfig,
    /// Cycles run by this negotiator (stamps [`CycleOutcome::cycle`]).
    cycles_run: u64,
    /// Cross-cycle shard and cluster caches for the incremental path.
    cache: IncrementalCache,
}

impl Negotiator {
    /// Create a negotiator with default engine, priorities, and config.
    pub fn new(config: NegotiatorConfig) -> Self {
        Negotiator {
            engine: MatchEngine::new(),
            priorities: PriorityTracker::default(),
            config,
            cycles_run: 0,
            cache: IncrementalCache::default(),
        }
    }

    /// Report actual resource usage (resource-seconds) for a user, e.g.
    /// when a claim is released.
    pub fn charge_usage(&mut self, user: &str, seconds: f64, now: Timestamp) {
        self.priorities.charge(user, seconds, now);
    }

    fn string_attr(&self, ad: &ClassAd, name: &str) -> Option<String> {
        match ad.eval_attr(name, &self.engine.policy) {
            Value::Str(s) => Some(s.to_string()),
            _ => None,
        }
    }

    /// Run one negotiation cycle over the ads in `store` at time `now`.
    ///
    /// Dispatches to the incremental sharded path (the default) or the
    /// from-scratch full scan ([`NegotiatorConfig::incremental`]); the two
    /// produce byte-identical matches.
    pub fn negotiate(&mut self, store: &AdStore, now: Timestamp) -> CycleOutcome {
        if self.config.incremental && self.config.autocluster {
            self.negotiate_incremental(store, now)
        } else {
            self.negotiate_full(store, now)
        }
    }

    /// Select the negotiation-eligible customer ads: no daemon self-ads
    /// (telemetry, not participants), no multi-port gang requests (served
    /// by the `gangmatch` crate — a `Ports` list must be granted atomically
    /// or not at all), oldest first (FIFO within a user).
    fn eligible_requests(store: &AdStore, now: Timestamp) -> Vec<StoredAd> {
        let mut requests: Vec<StoredAd> = store.snapshot(EntityKind::Customer, now);
        requests.retain(|r| !condor_obs::is_daemon_ad(&r.ad) && !r.ad.contains("Ports"));
        requests.sort_by_key(|r| r.seq);
        requests
    }

    /// The from-scratch cycle: snapshot everything, scan everything.
    fn negotiate_full(&mut self, store: &AdStore, now: Timestamp) -> CycleOutcome {
        let mut offers: Vec<StoredAd> = store.snapshot(EntityKind::Provider, now);
        // Daemon self-ads live in the store so they are queryable, but
        // they are telemetry, not participants: matching against them (or
        // counting them in cycle statistics) would corrupt both.
        offers.retain(|o| !condor_obs::is_daemon_ad(&o.ad));
        // Oldest first, so that a scan's index order is seq order and the
        // lowest-index tie-break coincides with the intrinsic lowest-seq
        // (oldest ad wins) rule the sharded path uses — equal ranks must
        // resolve identically on every path and shard count.
        offers.sort_by_key(|o| o.seq);
        let requests = Self::eligible_requests(store, now);

        let offer_ads: Vec<Arc<ClassAd>> = offers.iter().map(|o| o.ad.clone()).collect();
        // Per-offer claim snapshot, evaluated once per cycle: whether the
        // offer is claimed (per its own advertised state), at what rank it
        // values its current claimant, and who that claimant is. Grant-time
        // code reads these instead of re-evaluating `State`/`CurrentRank`/
        // `RemoteOwner` per request.
        let offer_meta: Vec<OfferMeta> = offers
            .iter()
            .map(|o| offer_meta_of(&self.engine, &o.ad))
            .collect();

        // Group request indices by owner.
        let mut by_owner: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            let owner = self
                .string_attr(&r.ad, ATTR_OWNER)
                .unwrap_or_else(|| "<unknown>".to_string());
            by_owner.entry(owner).or_default().push(i);
        }
        let users = self
            .priorities
            .order_users(by_owner.keys().map(|s| s.as_str()), now);

        let mut outcome = CycleOutcome::default();
        outcome.stats.requests_considered = requests.len();
        outcome.stats.offers_considered = offers.len();

        // Autoclustering: partition requests into equivalence classes whose
        // members score identically against every offer, then serve each
        // class from one shared match list built on first use.
        let clustering = if self.config.autocluster {
            let external = offer_external_refs(&self.engine.conventions, &offer_ads);
            Some(cluster_requests(
                &self.engine.conventions,
                requests.iter().map(|r| r.ad.as_ref()),
                &external,
            ))
        } else {
            None
        };
        let mut match_lists: Vec<Option<MatchList>> = match &clustering {
            Some(c) => {
                outcome.stats.clusters_formed = c.num_clusters;
                (0..c.num_clusters).map(|_| None).collect()
            }
            None => Vec::new(),
        };

        let mut taken = vec![false; offers.len()];
        let mut cursor: HashMap<&str, usize> = HashMap::new();
        let mut served_users: HashMap<String, bool> = HashMap::new();
        let mut unmatched_reqs: Vec<usize> = Vec::new();

        // Fairness rounds: one request per user per round, best-priority
        // user first, until a full round makes no progress.
        loop {
            let mut progress = false;
            outcome.stats.rounds += 1;
            for user in &users {
                let Some(queue) = by_owner.get(user.as_str()) else {
                    continue;
                };
                let pos = cursor.entry(user.as_str()).or_insert(0);
                // Skip requests that already failed or matched.
                if *pos >= queue.len() {
                    continue;
                }
                let req_idx = queue[*pos];
                *pos += 1;
                progress = true;

                let request = &requests[req_idx];
                let preemption_on = self.config.preemption;
                let margin = self.config.preemption_rank_margin;

                let chosen: Option<(Candidate, Option<String>)> = if let Some(cl) = &clustering {
                    // Clustered path: the first member of an equivalence
                    // class pays one full scan to build the sorted match
                    // list; everyone else in the class consumes from it.
                    let cid = cl.cluster_of[req_idx];
                    match &mut match_lists[cid] {
                        slot @ None => {
                            outcome.stats.full_scans += 1;
                            let list = MatchList::build(
                                &self.engine,
                                &request.ad,
                                &offer_ads,
                                self.config.threads,
                            );
                            slot.insert(list)
                                .pop_next(&taken, &offer_meta, preemption_on, margin)
                        }
                        Some(list) => {
                            outcome.stats.matchlist_hits += 1;
                            list.pop_next(&taken, &offer_meta, preemption_on, margin)
                        }
                    }
                } else {
                    // Oracle path: a per-request scan with retry. The
                    // best-ranked offer may be claimed and not preemptible
                    // by this request, in which case it is excluded and the
                    // scan repeats.
                    let mut excluded: Vec<bool> = vec![false; offers.len()];
                    loop {
                        // With preemption disabled, claimed offers can
                        // never be granted: filter them up front rather
                        // than excluding them one rescan at a time (keeps
                        // the no-preemption cycle linear in the pool size).
                        let eligible = |i: usize| {
                            !taken[i]
                                && !excluded[i]
                                && (preemption_on || offer_meta[i].claimed_rank.is_none())
                        };
                        outcome.stats.full_scans += 1;
                        let best = if self.config.threads > 1 {
                            self.engine.best_match_parallel(
                                &request.ad,
                                &offer_ads,
                                self.config.threads,
                                eligible,
                            )
                        } else {
                            self.engine.best_match(&request.ad, &offer_ads, eligible)
                        };
                        match best {
                            None => break None,
                            Some(c) => match offer_meta[c.index].claimed_rank {
                                None => break Some((c, None)),
                                Some(current) => {
                                    if preemption_on && c.offer_rank > current + margin {
                                        let displaced = offer_meta[c.index].remote_owner.clone();
                                        break Some((c, Some(displaced.unwrap_or_default())));
                                    }
                                    excluded[c.index] = true;
                                }
                            },
                        }
                    }
                };

                match chosen {
                    None => unmatched_reqs.push(req_idx),
                    Some((c, preempts)) => {
                        taken[c.index] = true;
                        let offer = &offers[c.index];
                        if preempts.is_some() {
                            outcome.stats.preemptions += 1;
                        }
                        served_users.insert(user.clone(), true);
                        if self.config.charge_per_match > 0.0 {
                            self.priorities
                                .charge(user, self.config.charge_per_match, now);
                        }
                        outcome.matches.push(MatchRecord {
                            request_name: request.name.clone(),
                            owner: user.clone(),
                            request_ad: request.ad.clone(),
                            customer_contact: request.contact.clone(),
                            offer_name: offer.name.clone(),
                            offer_ad: offer.ad.clone(),
                            provider_contact: offer.contact.clone(),
                            ticket: offer.ticket,
                            request_rank: c.request_rank,
                            offer_rank: c.offer_rank,
                            preempts,
                            trace: request.trace,
                        });
                    }
                }
            }
            if !progress {
                break;
            }
        }

        outcome.stats.matches = outcome.matches.len();
        outcome.stats.unmatched_requests = unmatched_reqs.len();
        outcome.stats.users_served = served_users.len();
        self.cycles_run += 1;
        outcome.cycle = self.cycles_run;

        if self.config.attribution && !unmatched_reqs.is_empty() {
            self.attribute_rejections(
                &mut outcome,
                &requests,
                &offer_ads,
                &offer_meta,
                &taken,
                clustering.as_ref().map(|c| c.cluster_of.as_slice()),
                &unmatched_reqs,
            );
        }
        if self.config.flocking && !unmatched_reqs.is_empty() {
            collect_unmatched_clusters(
                &mut outcome,
                &requests,
                clustering.as_ref().map(|c| c.cluster_of.as_slice()),
                &unmatched_reqs,
            );
        }
        outcome
    }

    /// The incremental sharded cycle: per-shard caches (claim metadata,
    /// external refs, offers) and per-(cluster, shard) candidate lists
    /// persist across cycles; only shards whose store version moved (or
    /// whose earliest lease lapsed) are recomputed, and cluster lists are
    /// rescanned only against those shards. Candidate merge order is the
    /// intrinsic (rank, rank, seq) total order, so the grants are
    /// byte-identical to [`Negotiator::negotiate_full`]'s for any shard
    /// count — the equivalence proptests in `tests/proptests.rs` hold the
    /// two paths to that.
    fn negotiate_incremental(&mut self, store: &AdStore, now: Timestamp) -> CycleOutcome {
        let threads = self.config.threads.max(1);
        let preemption_on = self.config.preemption;
        let margin = self.config.preemption_rank_margin;
        let cycle = self.cycles_run + 1;
        let requests = Self::eligible_requests(store, now);

        let mut outcome = CycleOutcome::default();
        outcome.stats.requests_considered = requests.len();

        let engine = &self.engine;
        let num_shards = store.num_shards();
        let IncrementalCache {
            shards,
            clusters,
            epoch,
        } = &mut self.cache;
        if shards.len() != num_shards {
            // First cycle, or the store resharded: nothing carries over.
            shards.clear();
            shards.resize_with(num_shards, || None);
            clusters.clear();
        }
        let dirty: Vec<usize> = (0..num_shards)
            .filter(|&s| {
                !shards[s]
                    .as_ref()
                    .is_some_and(|c| c.valid(store.shard_version(s), now))
            })
            .collect();
        let clean_shards = num_shards - dirty.len();
        // Rebuild the dirty shards' caches, fanning out across workers —
        // shards are shared-nothing, so builders share only the store
        // (read-only here).
        let rebuilt: Vec<(usize, ShardCache)> = if threads == 1 || dirty.len() < 2 {
            dirty
                .iter()
                .map(|&s| (s, shard_cache_build(engine, store, s, now)))
                .collect()
        } else {
            let workers = threads.min(dirty.len());
            let mut locals: Vec<Vec<(usize, ShardCache)>> = Vec::new();
            locals.resize_with(workers, Vec::new);
            crossbeam::scope(|scope| {
                for (t, slot) in locals.iter_mut().enumerate() {
                    let dirty = &dirty;
                    scope.spawn(move |_| {
                        for &s in dirty.iter().skip(t).step_by(workers) {
                            slot.push((s, shard_cache_build(engine, store, s, now)));
                        }
                    });
                }
            })
            .expect("shard cache worker panicked");
            locals.into_iter().flatten().collect()
        };
        for (s, mut built) in rebuilt {
            *epoch += 1;
            built.epoch = *epoch;
            outcome.stats.dirty_resources += built.offers.len();
            shards[s] = Some(built);
        }
        let shard_caches: Vec<&ShardCache> = shards
            .iter()
            .map(|o| o.as_ref().expect("all shards cached after rebuild"))
            .collect();

        // Global offer indexing: shard s's offer i is `bases[s] + i` in the
        // virtual concatenation — the frame `taken` lives in.
        let mut bases = Vec::with_capacity(num_shards);
        let mut total_offers = 0usize;
        for c in &shard_caches {
            bases.push(total_offers);
            total_offers += c.offers.len();
        }
        outcome.stats.offers_considered = total_offers;
        let metas: Vec<&[OfferMeta]> = shard_caches.iter().map(|c| c.meta.as_slice()).collect();

        // Pool-wide signature seed set: union of the per-shard cached
        // external-ref sets. Sound across cycles: a clean shard's offers
        // still contribute their reads, so any attribute relevant to a
        // cached list is still folded into today's signatures.
        let mut external: BTreeSet<Arc<str>> = BTreeSet::new();
        for c in &shard_caches {
            for name in &c.external {
                external.insert(name.clone());
            }
        }

        // Cluster the requests, keeping each cluster's signature string:
        // the signature is the cross-cycle key for its candidate lists.
        let mut sig_ids: HashMap<String, usize> = HashMap::new();
        let mut cluster_sig: Vec<String> = Vec::new();
        let mut cluster_of: Vec<usize> = Vec::with_capacity(requests.len());
        for r in &requests {
            let sig = request_signature(&engine.conventions, &r.ad, &external);
            if let Some(&id) = sig_ids.get(&sig) {
                cluster_of.push(id);
            } else {
                let id = cluster_sig.len();
                sig_ids.insert(sig.clone(), id);
                cluster_sig.push(sig);
                cluster_of.push(id);
            }
        }
        outcome.stats.clusters_formed = cluster_sig.len();

        let mut by_owner: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            let owner = match r.ad.eval_attr(ATTR_OWNER, &engine.policy) {
                Value::Str(s) => s.to_string(),
                _ => "<unknown>".to_string(),
            };
            by_owner.entry(owner).or_default().push(i);
        }
        let users = self
            .priorities
            .order_users(by_owner.keys().map(|s| s.as_str()), now);

        let mut match_lists: Vec<Option<ShardedMatchList>> =
            (0..cluster_sig.len()).map(|_| None).collect();
        let mut taken = vec![false; total_offers];
        let mut cursor: HashMap<&str, usize> = HashMap::new();
        let mut served_users: HashMap<String, bool> = HashMap::new();
        let mut unmatched_reqs: Vec<usize> = Vec::new();

        // Fairness rounds, exactly as on the full path; only the match
        // source differs.
        loop {
            let mut progress = false;
            outcome.stats.rounds += 1;
            for user in &users {
                let Some(queue) = by_owner.get(user.as_str()) else {
                    continue;
                };
                let pos = cursor.entry(user.as_str()).or_insert(0);
                if *pos >= queue.len() {
                    continue;
                }
                let req_idx = queue[*pos];
                *pos += 1;
                progress = true;

                let request = &requests[req_idx];
                let cid = cluster_of[req_idx];
                if match_lists[cid].is_none() {
                    // First member of the class this cycle: assemble the
                    // per-shard lists, rescanning only shards whose cached
                    // list is stale.
                    let entry =
                        clusters
                            .entry(cluster_sig[cid].clone())
                            .or_insert_with(|| ClusterCache {
                                lists: Vec::new(),
                                last_used: 0,
                            });
                    if entry.lists.len() != num_shards {
                        entry.lists.clear();
                        entry.lists.resize_with(num_shards, || None);
                    }
                    entry.last_used = cycle;
                    let need: Vec<usize> = (0..num_shards)
                        .filter(|&s| match &entry.lists[s] {
                            Some((e, _)) => *e != shard_caches[s].epoch,
                            None => true,
                        })
                        .collect();
                    outcome.stats.shards_skipped += num_shards - need.len();
                    outcome.stats.shards_scanned += need.len();
                    if need.len() == num_shards {
                        outcome.stats.full_scans += 1;
                    }
                    for (s, list) in scan_shards(engine, &request.ad, &shard_caches, &need, threads)
                    {
                        entry.lists[s] = Some((shard_caches[s].epoch, list));
                    }
                    match_lists[cid] = Some(ShardedMatchList {
                        lists: entry
                            .lists
                            .iter()
                            .map(|o| o.as_ref().expect("scanned above").1.clone())
                            .collect(),
                        cursors: vec![0; num_shards],
                    });
                } else {
                    outcome.stats.matchlist_hits += 1;
                }
                let chosen = match_lists[cid].as_mut().expect("built above").pop_next(
                    &taken,
                    &bases,
                    &metas,
                    preemption_on,
                    margin,
                );

                match chosen {
                    None => unmatched_reqs.push(req_idx),
                    Some((s, c, preempts)) => {
                        taken[bases[s] + c.index] = true;
                        let offer = &shard_caches[s].offers[c.index];
                        if preempts.is_some() {
                            outcome.stats.preemptions += 1;
                        }
                        served_users.insert(user.clone(), true);
                        if self.config.charge_per_match > 0.0 {
                            self.priorities
                                .charge(user, self.config.charge_per_match, now);
                        }
                        outcome.matches.push(MatchRecord {
                            request_name: request.name.clone(),
                            owner: user.clone(),
                            request_ad: request.ad.clone(),
                            customer_contact: request.contact.clone(),
                            offer_name: offer.name.clone(),
                            offer_ad: offer.ad.clone(),
                            provider_contact: offer.contact.clone(),
                            ticket: offer.ticket,
                            request_rank: c.request_rank,
                            offer_rank: c.offer_rank,
                            preempts,
                            trace: request.trace,
                        });
                    }
                }
            }
            if !progress {
                break;
            }
        }

        // Evict clusters no request has hashed to for a while, so the
        // cache tracks the live workload instead of growing monotonically.
        clusters.retain(|_, e| e.last_used + CLUSTER_CACHE_TTL_CYCLES >= cycle);

        outcome.stats.matches = outcome.matches.len();
        outcome.stats.unmatched_requests = unmatched_reqs.len();
        outcome.stats.users_served = served_users.len();
        outcome.stats.incremental_cycles =
            usize::from(clean_shards > 0 || outcome.stats.shards_skipped > 0);
        self.cycles_run += 1;
        outcome.cycle = self.cycles_run;

        if self.config.attribution && !unmatched_reqs.is_empty() {
            // Attribution wants the flat pool view; materialize it from
            // the shard caches (cheap Arc clones) so the shared post-pass
            // serves both paths.
            let offer_ads: Vec<Arc<ClassAd>> = shard_caches
                .iter()
                .flat_map(|c| c.ads.iter().cloned())
                .collect();
            let offer_meta: Vec<OfferMeta> = shard_caches
                .iter()
                .flat_map(|c| c.meta.iter().cloned())
                .collect();
            self.attribute_rejections(
                &mut outcome,
                &requests,
                &offer_ads,
                &offer_meta,
                &taken,
                Some(&cluster_of),
                &unmatched_reqs,
            );
        }
        if self.config.flocking && !unmatched_reqs.is_empty() {
            collect_unmatched_clusters(&mut outcome, &requests, Some(&cluster_of), &unmatched_reqs);
        }
        outcome
    }

    /// Classify every (cluster, offer) pairing that left the cluster with
    /// unmatched requests. One traced scan per unmatched cluster — matched
    /// clusters and the whole pass are skipped when attribution is off, so
    /// the hot path pays nothing.
    #[allow(clippy::too_many_arguments)]
    fn attribute_rejections(
        &self,
        outcome: &mut CycleOutcome,
        requests: &[StoredAd],
        offer_ads: &[Arc<ClassAd>],
        offer_meta: &[OfferMeta],
        taken: &[bool],
        cluster_of: Option<&[usize]>,
        unmatched_reqs: &[usize],
    ) {
        let preemption_on = self.config.preemption;
        let margin = self.config.preemption_rank_margin;
        let unmatched_by_cluster = group_unmatched_by_cluster(cluster_of, unmatched_reqs);

        for (cid, members) in unmatched_by_cluster {
            // Signatures make match verdicts and reject reasons cluster-
            // invariant, so the first unmatched member speaks for all.
            let rep = &requests[members[0]];
            let mut table = RejectionTable::default();
            for (oi, offer) in offer_ads.iter().enumerate() {
                match self.engine.score(&rep.ad, offer, oi) {
                    None => {
                        let trace = traced_symmetric_match(
                            &rep.ad,
                            offer,
                            &self.engine.policy,
                            &self.engine.conventions,
                        );
                        // `score` returned None, so the traced verdict is
                        // false and a reason is present; the fallback only
                        // guards against the impossible.
                        table.add(trace.reason.unwrap_or(RejectReason::EvalError {
                            side: classad::RejectSide::Request,
                        }));
                    }
                    Some(c) => match offer_meta[oi].claimed_rank {
                        Some(current) if !(preemption_on && c.offer_rank > current + margin) => {
                            table.add(RejectReason::Busy);
                        }
                        _ if taken[oi] => table.add(RejectReason::LostRank),
                        // Compatible, free, and still unmatched cannot
                        // happen after a completed rounds loop; leave such
                        // a pairing unclassified rather than invent a
                        // reason.
                        _ => {}
                    },
                }
            }
            outcome.stats.rejected_pairings += table.total() as usize;
            outcome.stats.reject_req_false += table.count_kind("RequirementsFalse") as usize;
            outcome.stats.reject_undefined += table.count_kind("UndefinedAttr") as usize;
            outcome.stats.reject_error += table.count_kind("EvalError") as usize;
            outcome.stats.reject_busy += table.count_kind("Busy") as usize;
            outcome.stats.reject_lost_rank += table.count_kind("LostRank") as usize;
            let constraint = self
                .engine
                .conventions
                .constraint_attr_of(&rep.ad)
                .and_then(|a| rep.ad.get(a))
                .map(|e| e.to_string());
            let names: Vec<String> = members
                .iter()
                .take(ClusterRejections::MAX_NAMES)
                .map(|&ri| requests[ri].name.clone())
                .collect();
            outcome.rejections.push(ClusterRejections {
                cluster: cid,
                more_requests: members.len().saturating_sub(names.len()),
                requests: names,
                constraint,
                table,
            });
        }
    }
}

/// Unmatched request indices per cluster, in request order, sorted by
/// cluster id. With autoclustering off every request is its own singleton
/// cluster. Shared by attribution and flocking so both see the same
/// clusters and the same first-member representative.
fn group_unmatched_by_cluster(
    cluster_of: Option<&[usize]>,
    unmatched_reqs: &[usize],
) -> Vec<(usize, Vec<usize>)> {
    let mut unmatched_by_cluster: Vec<(usize, Vec<usize>)> = Vec::new();
    for &ri in unmatched_reqs {
        let cid = cluster_of.map_or(ri, |c| c[ri]);
        match unmatched_by_cluster.iter_mut().find(|(c, _)| *c == cid) {
            Some((_, members)) => members.push(ri),
            None => unmatched_by_cluster.push((cid, vec![ri])),
        }
    }
    // `unmatched_reqs` arrives in fair-share round order (priority-ordered
    // users interleaved), not request order; restore request order so the
    // first member — the representative — is the seq-lowest one.
    for (_, members) in &mut unmatched_by_cluster {
        members.sort_unstable();
    }
    unmatched_by_cluster.sort_by_key(|(cid, _)| *cid);
    unmatched_by_cluster
}

/// Populate [`CycleOutcome::unmatched_clusters`] with one representative
/// per unmatched cluster (flocking's forwarding unit).
fn collect_unmatched_clusters(
    outcome: &mut CycleOutcome,
    requests: &[StoredAd],
    cluster_of: Option<&[usize]>,
    unmatched_reqs: &[usize],
) {
    for (cid, members) in group_unmatched_by_cluster(cluster_of, unmatched_reqs) {
        let rep = &requests[members[0]];
        outcome.unmatched_clusters.push(UnmatchedCluster {
            cluster: cid,
            rep_name: rep.name.clone(),
            rep_ad: rep.ad.clone(),
            customer_contact: rep.contact.clone(),
            trace: rep.trace,
            members: members.len(),
        });
    }
}

/// Evaluate an offer's claim metadata (see [`OfferMeta`]): whether it
/// advertises `State == "Claimed"`, at what rank it values its claimant,
/// and who that claimant is.
fn offer_meta_of(engine: &MatchEngine, ad: &ClassAd) -> OfferMeta {
    let state = ad.eval_attr(ATTR_STATE, &engine.policy);
    let claimed = matches!(&state, Value::Str(s) if &**s == STATE_CLAIMED);
    if claimed {
        OfferMeta {
            claimed_rank: Some(
                ad.eval_attr(ATTR_CURRENT_RANK, &engine.policy)
                    .as_f64()
                    .unwrap_or(0.0),
            ),
            remote_owner: match ad.eval_attr(ATTR_REMOTE_OWNER, &engine.policy) {
                Value::Str(s) => Some(s.to_string()),
                _ => None,
            },
        }
    } else {
        OfferMeta::default()
    }
}

/// Build one provider shard's cycle cache from the store: live, non-daemon
/// offers in slot order, plus everything derived from them. The caller
/// stamps the epoch.
fn shard_cache_build(
    engine: &MatchEngine,
    store: &AdStore,
    shard: usize,
    now: Timestamp,
) -> ShardCache {
    let version = store.shard_version(shard);
    let offers: Vec<StoredAd> = store
        .shard_ads(shard)
        .iter()
        .filter(|a| a.expires_at > now && !condor_obs::is_daemon_ad(&a.ad))
        .cloned()
        .collect();
    let min_expiry = offers
        .iter()
        .map(|a| a.expires_at)
        .min()
        .unwrap_or(u64::MAX);
    let ads: Vec<Arc<ClassAd>> = offers.iter().map(|o| o.ad.clone()).collect();
    let ties: Vec<u64> = offers.iter().map(|o| o.seq).collect();
    let meta: Vec<OfferMeta> = ads.iter().map(|ad| offer_meta_of(engine, ad)).collect();
    let external = offer_external_refs(&engine.conventions, &ads);
    ShardCache {
        version,
        epoch: 0,
        min_expiry,
        offers,
        ads,
        ties,
        meta,
        external,
    }
}

/// Scan `request` against the listed shards' cached offers, returning one
/// sorted candidate list per shard (tie-keyed by ad seq). Scans fan out
/// across worker threads; shards are shared-nothing, so workers share only
/// the request.
fn scan_shards(
    engine: &MatchEngine,
    request: &ClassAd,
    shard_caches: &[&ShardCache],
    need: &[usize],
    threads: usize,
) -> Vec<(usize, Arc<Vec<Candidate>>)> {
    let scan_one = |s: usize| {
        let cache = shard_caches[s];
        let list = engine.scored_candidates_keyed(request, &cache.ads, &cache.ties);
        (s, Arc::new(list))
    };
    if threads == 1 || need.len() < 2 {
        return need.iter().map(|&s| scan_one(s)).collect();
    }
    let workers = threads.min(need.len());
    let mut locals: Vec<Vec<(usize, Arc<Vec<Candidate>>)>> = Vec::new();
    locals.resize_with(workers, Vec::new);
    crossbeam::scope(|scope| {
        for (t, slot) in locals.iter_mut().enumerate() {
            let scan_one = &scan_one;
            scope.spawn(move |_| {
                for &s in need.iter().skip(t).step_by(workers) {
                    slot.push(scan_one(s));
                }
            });
        }
    })
    .expect("shard scan worker panicked");
    locals.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Advertisement, AdvertisingProtocol};
    use classad::parse_classad;

    fn proto() -> AdvertisingProtocol {
        AdvertisingProtocol::default()
    }

    fn machine_ad(name: &str, mips: i64) -> Advertisement {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Machine"; Mips = {mips};
                State = "Unclaimed";
                Constraint = other.Type == "Job"; Rank = 0 ]"#
        ))
        .unwrap();
        Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: format!("{name}:9614"),
            ticket: Some(Ticket::from_raw(name.len() as u128)),
            expires_at: 10_000,
        }
    }

    fn claimed_machine_ad(name: &str, remote_owner: &str, current_rank: f64) -> Advertisement {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Machine"; Mips = 100;
                State = "Claimed"; RemoteOwner = "{remote_owner}";
                CurrentRank = {current_rank};
                Constraint = other.Type == "Job";
                Rank = other.JobPrio ]"#
        ))
        .unwrap();
        Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: format!("{name}:9614"),
            ticket: None,
            expires_at: 10_000,
        }
    }

    fn job_ad(name: &str, owner: &str) -> Advertisement {
        job_ad_with(name, owner, "")
    }

    fn job_ad_with(name: &str, owner: &str, extra: &str) -> Advertisement {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Job"; Owner = "{owner}"; {extra}
                Constraint = other.Type == "Machine"; Rank = other.Mips ]"#
        ))
        .unwrap();
        Advertisement {
            kind: EntityKind::Customer,
            ad,
            contact: format!("{owner}-ca:1"),
            ticket: None,
            expires_at: 10_000,
        }
    }

    fn store_with(ads: Vec<Advertisement>) -> AdStore {
        let mut store = AdStore::new();
        for a in ads {
            store.advertise(a, 0, &proto()).unwrap();
        }
        store
    }

    #[test]
    fn single_job_gets_best_machine() {
        let store = store_with(vec![
            machine_ad("slow", 10),
            machine_ad("fast", 104),
            job_ad("j1", "raman"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.matches[0].offer_name, "fast");
        assert_eq!(out.matches[0].request_rank, 104.0);
        assert_eq!(out.stats.unmatched_requests, 0);
    }

    #[test]
    fn each_offer_granted_once_per_cycle() {
        let store = store_with(vec![
            machine_ad("m1", 50),
            job_ad("j1", "alice"),
            job_ad("j2", "alice"),
            job_ad("j3", "alice"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.stats.unmatched_requests, 2);
    }

    #[test]
    fn round_robin_across_users_within_cycle() {
        // Two machines, two users with two jobs each: each user must get
        // exactly one machine even though alice's jobs sort first.
        let store = store_with(vec![
            machine_ad("m1", 50),
            machine_ad("m2", 60),
            job_ad("a1", "alice"),
            job_ad("a2", "alice"),
            job_ad("b1", "bob"),
            job_ad("b2", "bob"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 2);
        let mut owners: Vec<&str> = out.matches.iter().map(|m| m.owner.as_str()).collect();
        owners.sort();
        assert_eq!(owners, vec!["alice", "bob"]);
        assert_eq!(out.stats.users_served, 2);
    }

    #[test]
    fn priority_order_decides_who_gets_scarce_resource() {
        let store = store_with(vec![
            machine_ad("only", 50),
            job_ad("a1", "heavy"),
            job_ad("b1", "light"),
        ]);
        let mut neg = Negotiator::default();
        neg.priorities.charge("heavy", 100_000.0, 0);
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.matches[0].owner, "light");
    }

    #[test]
    fn fifo_within_user() {
        let store = store_with(vec![
            machine_ad("m1", 50),
            job_ad("first", "alice"),
            job_ad("second", "alice"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.matches[0].request_name, "first");
    }

    #[test]
    fn preemption_when_offer_prefers_new_request() {
        let store = store_with(vec![
            claimed_machine_ad("busy", "olduser", 5.0),
            job_ad_with("hot", "newuser", "JobPrio = 10;"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.stats.preemptions, 1);
        assert_eq!(out.matches[0].preempts.as_deref(), Some("olduser"));
    }

    #[test]
    fn no_preemption_when_rank_not_higher() {
        let store = store_with(vec![
            claimed_machine_ad("busy", "olduser", 5.0),
            job_ad_with("cold", "newuser", "JobPrio = 5;"), // equal, not higher
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 0);
        assert_eq!(out.stats.unmatched_requests, 1);
    }

    #[test]
    fn preemption_disabled_by_config() {
        let store = store_with(vec![
            claimed_machine_ad("busy", "olduser", 5.0),
            job_ad_with("hot", "newuser", "JobPrio = 10;"),
        ]);
        let mut neg = Negotiator::new(NegotiatorConfig {
            preemption: false,
            ..Default::default()
        });
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 0);
    }

    #[test]
    fn preemption_retry_falls_back_to_unclaimed() {
        // Best-ranked machine is claimed and non-preemptible; the job must
        // fall back to the unclaimed slower machine.
        let store = store_with(vec![
            claimed_machine_ad("busy", "olduser", 50.0), // Mips 100 but won't preempt
            machine_ad("free", 10),
            job_ad_with("j", "alice", "JobPrio = 1;"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.matches[0].offer_name, "free");
    }

    #[test]
    fn charge_per_match_feeds_priorities() {
        let store = store_with(vec![
            machine_ad("m1", 50),
            machine_ad("m2", 50),
            job_ad("a1", "alice"),
        ]);
        let mut neg = Negotiator::new(NegotiatorConfig {
            charge_per_match: 300.0,
            ..Default::default()
        });
        assert_eq!(neg.priorities.usage("alice", 0), 0.0);
        neg.negotiate(&store, 0);
        assert_eq!(neg.priorities.usage("alice", 0), 300.0);
    }

    #[test]
    fn parallel_negotiation_matches_serial() {
        let mut ads = vec![];
        for i in 0..40 {
            ads.push(machine_ad(&format!("m{i}"), (i * 13) % 97));
        }
        for i in 0..20 {
            ads.push(job_ad(
                &format!("j{i}"),
                if i % 2 == 0 { "alice" } else { "bob" },
            ));
        }
        let store = store_with(ads);
        let mut serial = Negotiator::default();
        let mut parallel = Negotiator::new(NegotiatorConfig {
            threads: 4,
            ..Default::default()
        });
        let a = serial.negotiate(&store, 0);
        let b = parallel.negotiate(&store, 0);
        assert_eq!(a.stats, b.stats);
        let names_a: Vec<(&str, &str)> = a
            .matches
            .iter()
            .map(|m| (m.request_name.as_str(), m.offer_name.as_str()))
            .collect();
        let names_b: Vec<(&str, &str)> = b
            .matches
            .iter()
            .map(|m| (m.request_name.as_str(), m.offer_name.as_str()))
            .collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn autocluster_shares_one_scan_per_equivalence_class() {
        let mut ads = vec![
            machine_ad("m1", 50),
            machine_ad("m2", 60),
            machine_ad("m3", 70),
        ];
        for i in 0..5 {
            ads.push(job_ad(&format!("j{i}"), "alice"));
        }
        let store = store_with(ads);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(
            out.stats.clusters_formed, 1,
            "identical jobs form one cluster"
        );
        assert_eq!(
            out.stats.full_scans, 1,
            "one scan builds the shared match list"
        );
        assert_eq!(out.stats.matchlist_hits, 4, "remaining jobs reuse the list");
        assert_eq!(out.stats.matches, 3);
        assert_eq!(out.stats.unmatched_requests, 2);
    }

    #[test]
    fn oracle_path_counts_scans_and_forms_no_clusters() {
        let store = store_with(vec![
            machine_ad("m1", 50),
            job_ad("j1", "alice"),
            job_ad("j2", "alice"),
        ]);
        let mut neg = Negotiator::new(NegotiatorConfig {
            autocluster: false,
            ..Default::default()
        });
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.clusters_formed, 0);
        assert_eq!(out.stats.matchlist_hits, 0);
        assert_eq!(out.stats.full_scans, 2, "one scan per request");
    }

    #[test]
    fn autocluster_matches_oracle_on_mixed_pool() {
        let mut ads = vec![];
        for i in 0..12 {
            ads.push(machine_ad(&format!("m{i}"), (i * 13) % 97));
        }
        ads.push(claimed_machine_ad("busy-lo", "olduser", 2.0));
        ads.push(claimed_machine_ad("busy-hi", "olduser", 50.0));
        for i in 0..9 {
            let owner = ["alice", "bob", "carol"][i % 3];
            ads.push(job_ad_with(
                &format!("j{i}"),
                owner,
                &format!("JobPrio = {};", i),
            ));
        }
        let store = store_with(ads);
        let mut fast = Negotiator::default();
        let mut oracle = Negotiator::new(NegotiatorConfig {
            autocluster: false,
            ..Default::default()
        });
        let a = fast.negotiate(&store, 0);
        let b = oracle.negotiate(&store, 0);
        let key = |o: &CycleOutcome| {
            o.matches
                .iter()
                .map(|m| {
                    (
                        m.request_name.clone(),
                        m.offer_name.clone(),
                        m.request_rank.to_bits(),
                        m.offer_rank.to_bits(),
                        m.preempts.clone(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.stats.matches, b.stats.matches);
        assert_eq!(a.stats.preemptions, b.stats.preemptions);
        assert_eq!(a.stats.unmatched_requests, b.stats.unmatched_requests);
        assert_eq!(a.stats.users_served, b.stats.users_served);
        assert!(a.stats.full_scans < b.stats.full_scans);
    }

    #[test]
    fn attribution_classifies_unmatchable_requests() {
        let ad = parse_classad(
            r#"[ Name = "never"; Type = "Job"; Owner = "alice";
                Constraint = other.Type == "Machine" && other.Mips >= 1000;
                Rank = 0 ]"#,
        )
        .unwrap();
        let mut store = store_with(vec![machine_ad("m1", 50), machine_ad("m2", 60)]);
        store
            .advertise(
                Advertisement {
                    kind: EntityKind::Customer,
                    ad,
                    contact: "alice-ca:1".into(),
                    ticket: None,
                    expires_at: 10_000,
                },
                0,
                &proto(),
            )
            .unwrap();
        let mut neg = Negotiator::new(NegotiatorConfig {
            attribution: true,
            ..Default::default()
        });
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.cycle, 1);
        assert_eq!(out.stats.matches, 0);
        assert_eq!(out.stats.unmatched_requests, 1);
        assert_eq!(out.rejections.len(), 1);
        let cr = &out.rejections[0];
        assert_eq!(cr.requests, vec!["never".to_string()]);
        assert_eq!(cr.table.total(), 2, "both machines classified");
        assert_eq!(out.stats.rejected_pairings, 2);
        assert_eq!(out.stats.reject_req_false, 2);
        let encoded = cr.encode();
        assert!(
            encoded.contains("ReqFalse(request): other.Mips >= 1000"),
            "{encoded}"
        );
        assert!(encoded.starts_with("c0[never]: "), "{encoded}");
    }

    #[test]
    fn attribution_counts_busy_and_lost_rank() {
        let store = store_with(vec![
            claimed_machine_ad("busy", "olduser", 50.0), // unpreemptible for JobPrio 1
            machine_ad("free", 10),
            job_ad_with("j1", "alice", "JobPrio = 1;"),
            job_ad_with("j2", "bob", "JobPrio = 1;"),
        ]);
        let mut neg = Negotiator::new(NegotiatorConfig {
            attribution: true,
            ..Default::default()
        });
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1, "one job takes the free machine");
        assert_eq!(out.stats.unmatched_requests, 1);
        assert_eq!(out.rejections.len(), 1);
        let table = &out.rejections[0].table;
        assert_eq!(table.count_kind("Busy"), 1);
        assert_eq!(table.count_kind("LostRank"), 1);
        assert_eq!(out.stats.reject_busy, 1);
        assert_eq!(out.stats.reject_lost_rank, 1);
    }

    #[test]
    fn attribution_never_changes_match_outcomes() {
        let mut ads = vec![];
        for i in 0..10 {
            ads.push(machine_ad(&format!("m{i}"), (i * 13) % 97));
        }
        ads.push(claimed_machine_ad("busy", "olduser", 50.0));
        for i in 0..8 {
            let owner = ["alice", "bob"][i % 2];
            ads.push(job_ad_with(
                &format!("j{i}"),
                owner,
                &format!("JobPrio = {};", i),
            ));
        }
        let store = store_with(ads);
        let mut plain = Negotiator::default();
        let mut attributed = Negotiator::new(NegotiatorConfig {
            attribution: true,
            ..Default::default()
        });
        let a = plain.negotiate(&store, 0);
        let b = attributed.negotiate(&store, 0);
        let key = |o: &CycleOutcome| {
            o.matches
                .iter()
                .map(|m| (m.request_name.clone(), m.offer_name.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.stats.matches, b.stats.matches);
        assert_eq!(a.stats.unmatched_requests, b.stats.unmatched_requests);
        assert_eq!(a.stats.rejected_pairings, 0, "off by default");
    }

    #[test]
    fn attribution_oracle_path_uses_singleton_clusters() {
        let store = store_with(vec![
            machine_ad("m1", 50),
            job_ad("j1", "alice"),
            job_ad("j2", "alice"),
        ]);
        let mut neg = Negotiator::new(NegotiatorConfig {
            autocluster: false,
            attribution: true,
            ..Default::default()
        });
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.rejections.len(), 1, "the unmatched job's singleton");
        assert_eq!(out.rejections[0].table.count_kind("LostRank"), 1);
    }

    #[test]
    fn rejection_table_bounds_cardinality() {
        let mut table = RejectionTable::default();
        for i in 0..20 {
            table.add(RejectReason::RequirementsFalse {
                side: classad::RejectSide::Offer,
                clause: format!("clause_{i}"),
            });
        }
        table.add(RejectReason::Busy);
        assert_eq!(table.total(), 21);
        assert_eq!(table.ranked().len(), 8);
        assert_eq!(table.overflow(), 13);
        assert!(table.encode().contains("+overflow=13"));
    }

    #[test]
    fn notifications_relay_ticket_to_customer_only() {
        let store = store_with(vec![machine_ad("m", 50), job_ad("j", "alice")]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        let (to_customer, to_provider) = out.matches[0].notifications();
        assert!(to_customer.ticket.is_some());
        assert!(to_provider.ticket.is_none());
        assert_eq!(to_customer.peer_contact, "m:9614");
        assert_eq!(to_provider.peer_contact, "alice-ca:1");
        assert_eq!(to_customer.peer_ad, *out.matches[0].offer_ad);
    }

    #[test]
    fn empty_store_yields_empty_cycle() {
        let store = AdStore::new();
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 0);
        assert_eq!(out.stats.requests_considered, 0);
    }
}
